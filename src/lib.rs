//! DoPE reproduction — umbrella crate.
//!
//! This crate re-exports the whole DoPE stack so examples and integration
//! tests can use one dependency. The real code lives in the workspace
//! crates:
//!
//! * [`dope_core`] — the DoPE API: tasks, descriptors, configurations,
//!   goals, the mechanism interface;
//! * [`dope_runtime`] — the live executive and worker pool;
//! * [`dope_mechanisms`] — WQT-H, WQ-Linear, TBF/TB, FDP, SEDA, TPC,
//!   Proportional, Oracle;
//! * [`dope_platform`] — topology, power model, feature registry;
//! * [`dope_workload`] — arrival processes, work queues, statistics;
//! * [`dope_sim`] — the discrete-event evaluation testbed;
//! * [`dope_apps`] — the six benchmark applications.

pub use dope_apps as apps;
pub use dope_core as core;
pub use dope_mechanisms as mechanisms;
pub use dope_platform as platform;
pub use dope_runtime as runtime;
pub use dope_sim as sim;
pub use dope_workload as workload;
