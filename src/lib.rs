//! DoPE reproduction — umbrella crate.
//!
//! This crate re-exports the whole DoPE stack so examples and integration
//! tests can use one dependency. The real code lives in the workspace
//! crates:
//!
//! * [`dope_core`] — the DoPE API: tasks, descriptors, configurations,
//!   goals, the mechanism interface;
//! * [`dope_runtime`] — the live executive and worker pool;
//! * [`dope_mechanisms`] — WQT-H, WQ-Linear, TBF/TB, FDP, SEDA, TPC,
//!   Proportional, Oracle;
//! * [`dope_platform`] — topology, power model, feature registry;
//! * [`dope_workload`] — arrival processes, work queues, statistics;
//! * [`dope_sim`] — the discrete-event evaluation testbed;
//! * [`dope_apps`] — the six benchmark applications;
//! * [`dope_trace`] — the flight recorder: structured executive events,
//!   the JSONL codec, deterministic replay, and the timeline CLI;
//! * [`dope_lint`] — the workspace static analyzer: seven `DL0xx` passes
//!   enforcing the cross-crate contracts the compiler cannot see;
//! * [`dope_bench`] — the figure/table harness and the perf gate
//!   (`BENCH_perf.json` microbench reports and baseline diffing).
//!
//! The prose documentation under `docs/` is embedded below (see
//! [`docs`]) so that every example in the book compiles and runs as a
//! doctest of this crate.

pub use dope_apps as apps;
pub use dope_bench as bench;
pub use dope_core as core;
pub use dope_lint as lint;
pub use dope_mechanisms as mechanisms;
pub use dope_platform as platform;
pub use dope_runtime as runtime;
pub use dope_sim as sim;
pub use dope_trace as trace;
pub use dope_workload as workload;

/// The documentation book, embedded verbatim from `docs/`.
///
/// Each sub-module is one markdown file; embedding them here makes
/// `rustdoc` render the book next to the API docs **and** compiles and
/// runs every Rust code block in the book as a doctest, so the prose
/// cannot drift from the implementation.
pub mod docs {
    /// `docs/README.md`: the book index — one line per chapter and
    /// reading paths by task.
    #[doc = include_str!("../docs/README.md")]
    pub mod index {}

    /// `docs/architecture.md`: how the flight recorder is built.
    #[doc = include_str!("../docs/architecture.md")]
    pub mod architecture {}

    /// `docs/event-schema.md`: the versioned JSONL trace contract.
    #[doc = include_str!("../docs/event-schema.md")]
    pub mod event_schema {}

    /// `docs/operator-guide.md`: capturing and reading traces.
    #[doc = include_str!("../docs/operator-guide.md")]
    pub mod operator_guide {}

    /// `docs/overload.md`: admission control — the four policies, the
    /// shedding gate, `ShedAware`, and the overload observability
    /// surface.
    #[doc = include_str!("../docs/overload.md")]
    pub mod overload {}

    /// `docs/performance.md`: the sharded monitor record path, its
    /// memory-ordering argument, and the perf-gate workflow.
    #[doc = include_str!("../docs/performance.md")]
    pub mod performance {}

    /// `docs/static-analysis.md`: the `dope-lint` DL catalogue, waiver
    /// syntax, exit codes, and the lock-order manifest.
    #[doc = include_str!("../docs/static-analysis.md")]
    pub mod static_analysis {}
}
