//! The paper's running example: an online video-transcoding service.
//!
//! Videos arrive on a work queue; each can be transcoded sequentially or
//! with intra-video parallelism. The administrator asks for minimum
//! response time; DoPE drives the WQ-Linear mechanism, which widens the
//! inner DoP when the queue is short (latency mode) and narrows it when
//! the queue grows (throughput mode).
//!
//! Run with: `cargo run --release --example video_service`

use dope_apps::transcode::{self, VideoParams};
use dope_core::Goal;
use dope_mechanisms::WqLinear;
use dope_runtime::Dope;
use std::thread;
use std::time::Duration;

fn main() {
    let (service, descriptor) = transcode::live_service();
    let goal = Goal::MinResponseTime { threads: 4 };
    println!("goal: {goal}");

    let dope = Dope::builder(goal)
        .mechanism(Box::new(WqLinear::new(1, 4, 8.0)))
        .control_period(Duration::from_millis(20))
        .queue_probe(service.queue_probe())
        .launch(descriptor)
        .expect("launch");

    // Two traffic phases: a light trickle, then a burst.
    let params = VideoParams {
        frames: 4,
        width: 32,
        height: 32,
    };
    let queue = service.queue.clone();
    let producer = thread::spawn(move || {
        for id in 0..12u64 {
            let _ = queue.enqueue(transcode::make_video(id, params));
            thread::sleep(Duration::from_millis(40)); // light load
        }
        for id in 12..60u64 {
            let _ = queue.enqueue(transcode::make_video(id, params)); // burst
        }
        queue.close();
    });
    producer.join().expect("producer");
    let report = dope.wait().expect("service drains");

    let response = service.stats.response();
    println!(
        "transcoded {} videos; mean response {:.1} ms, p95 {:.1} ms",
        response.count(),
        response.mean().unwrap_or(0.0) * 1e3,
        response.percentile(0.95).unwrap_or(0.0) * 1e3,
    );
    println!("reconfigurations: {}", report.reconfigurations);
    for (t, config) in &report.config_history {
        println!("  t={t:>6.2}s  {config}");
    }
    assert_eq!(response.count(), 60);
}
