//! The paper's running example: an online video-transcoding service.
//!
//! Videos arrive on a work queue; each can be transcoded sequentially or
//! with intra-video parallelism. The administrator asks for minimum
//! response time; DoPE drives the WQ-Linear mechanism, which widens the
//! inner DoP when the queue is short (latency mode) and narrows it when
//! the queue grows (throughput mode).
//!
//! While the service runs, its live telemetry is served in Prometheus
//! text format on an ephemeral localhost port (the example scrapes
//! itself once, curl-style, and prints a few series).
//!
//! Run with: `cargo run --release --example video_service`

use dope_apps::transcode::{self, VideoParams};
use dope_core::Goal;
use dope_mechanisms::WqLinear;
use dope_metrics::{names, scrape, MetricsRegistry, MetricsServer};
use dope_runtime::Dope;
use std::thread;
use std::time::Duration;

fn main() {
    let (service, descriptor) = transcode::live_service();
    let goal = Goal::MinResponseTime { threads: 4 };
    println!("goal: {goal}");

    // Live metrics: one registry shared by the executive and a scrape
    // endpoint (port 0 = ephemeral; use e.g. "127.0.0.1:9184" to pin).
    let registry = MetricsRegistry::new();
    let server = MetricsServer::serve("127.0.0.1:0", registry.clone()).expect("metrics endpoint");
    println!("metrics: http://{}/metrics", server.local_addr());

    let dope = Dope::builder(goal)
        .mechanism(Box::new(WqLinear::new(1, 4, 8.0)))
        .control_period(Duration::from_millis(20))
        .queue_probe(service.queue_probe())
        .metrics(registry.clone())
        .launch(descriptor)
        .expect("launch");

    // Two traffic phases: a light trickle, then a burst.
    let params = VideoParams {
        frames: 4,
        width: 32,
        height: 32,
    };
    let queue = service.queue.clone();
    let producer = thread::spawn(move || {
        for id in 0..12u64 {
            let _ = queue.enqueue(transcode::make_video(id, params));
            thread::sleep(Duration::from_millis(40)); // light load
        }
        for id in 12..60u64 {
            let _ = queue.enqueue(transcode::make_video(id, params)); // burst
        }
        queue.close();
    });
    producer.join().expect("producer");

    // Scrape our own endpoint while the service is still live — exactly
    // what `curl http://.../metrics` would return.
    let monitor = dope.monitor();
    let _ = monitor.snapshot();
    let scraped = scrape(&server.local_addr().to_string()).expect("self-scrape");
    let exec_count = format!("{}_count", names::TASK_EXEC_SECONDS);
    println!("\n-- live scrape (excerpt) --");
    for line in scraped.lines().filter(|l| {
        l.starts_with(&exec_count)
            || l.starts_with(names::RECONFIGURE_EPOCHS_TOTAL)
            || l.starts_with(names::MONITORING_OVERHEAD_RATIO)
            || l.starts_with(names::POOL_THREADS)
    }) {
        println!("  {line}");
    }

    let report = dope.wait().expect("service drains");

    let response = service.stats.response();
    println!(
        "\ntranscoded {} videos; mean response {:.1} ms, p95 {:.1} ms (±3.1%)",
        response.count(),
        response.mean().unwrap_or(0.0) * 1e3,
        response.percentile(0.95).unwrap_or(0.0) * 1e3,
    );
    println!(
        "monitoring overhead: {:.3}% of execution",
        monitor.monitoring_overhead_ratio() * 100.0
    );
    println!("reconfigurations: {}", report.reconfigurations);
    for (t, config) in &report.config_history {
        println!("  t={t:>6.2}s  {config}");
    }
    server.shutdown();
    assert_eq!(response.count(), 60);
    assert!(
        scraped.contains(names::TASK_EXEC_SECONDS) && scraped.contains("le="),
        "scrape must include exec-latency histogram buckets"
    );
}
