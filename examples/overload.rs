//! Overload control, live: a shedding front door under a 10x storm.
//!
//! A two-stage service — `admit` drains an `AdmissionQueue` gated by
//! `Shed { high_water }` into an internal work queue, `serve` burns CPU
//! per request — while a producer offers far more work than the service
//! can absorb. The gate drops the excess with a counted verdict —
//! without ever taking the queue lock — so the requests that *are*
//! admitted see bounded queueing. The run records a flight-recorder
//! trace carrying `AdmissionDecision` events, and the mechanism is
//! wrapped in `ShedAware`, which vetoes shrink proposals while the gate
//! is dropping (shedding makes the queue *look* short; see
//! `docs/overload.md`).
//!
//! Run with: `cargo run --release --example overload -- [TRACE_PATH]`
//! then inspect the capture:
//!
//! ```text
//! dope-trace stats   overload-trace.jsonl
//! dope-trace explain overload-trace.jsonl
//! ```

use dope_core::{
    body_fn, AdmissionPolicy, Goal, QueueStats, TaskBody, TaskCx, TaskKind, TaskSpec, TaskStatus,
    WorkerSlot,
};
use dope_mechanisms::{Proportional, ShedAware};
use dope_runtime::Dope;
use dope_trace::Recorder;
use dope_workload::{AdmissionQueue, DequeueOutcome, WorkQueue};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn spin(micros: u64) {
    let t0 = Instant::now();
    while t0.elapsed() < Duration::from_micros(micros) {
        std::hint::black_box(0u64);
    }
}

fn main() {
    let trace_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "overload-trace.jsonl".to_string());

    // The bounded front door: occupancy at or above the watermark sheds.
    let gate: AdmissionQueue<u64> = AdmissionQueue::new(AdmissionPolicy::Shed { high_water: 64 });
    println!("admission: {}", gate.policy());

    // The internal queue between the admit and serve stages.
    let mid: WorkQueue<u64> = WorkQueue::new();
    let served = Arc::new(AtomicU64::new(0));

    // The service is a nest so the mechanism sees a pipeline: `admit`
    // (sequential front door) feeding `serve` (parallel workers).
    let service = {
        let gate_outer = gate.clone();
        let mid_outer = mid.clone();
        let served_outer = Arc::clone(&served);
        let gate_load = gate.clone();
        TaskSpec::nest("service", TaskKind::Par, move |_replica: u32| {
            let admit = {
                let gate_factory = gate_outer.clone();
                let mid = mid_outer.clone();
                TaskSpec::leaf("admit", TaskKind::Seq, move |_slot: WorkerSlot| {
                    let gate = gate_factory.clone();
                    let mid = mid.clone();
                    struct Admit {
                        gate: AdmissionQueue<u64>,
                        mid: WorkQueue<u64>,
                    }
                    impl TaskBody for Admit {
                        fn invoke(&mut self, cx: &mut dyn TaskCx) -> TaskStatus {
                            cx.begin();
                            let out = self.gate.take(Duration::from_millis(2));
                            let status = match out {
                                dope_workload::DequeueOutcome::Item(i) => {
                                    let _ = self.mid.enqueue(i);
                                    TaskStatus::Executing
                                }
                                dope_workload::DequeueOutcome::Drained => TaskStatus::Finished,
                                dope_workload::DequeueOutcome::TimedOut => {
                                    if cx.directive().wants_suspend() {
                                        TaskStatus::Suspended
                                    } else {
                                        TaskStatus::Executing
                                    }
                                }
                            };
                            cx.end();
                            status
                        }
                        fn fini(&mut self, status: TaskStatus) {
                            if status == TaskStatus::Finished {
                                self.mid.close();
                            }
                        }
                    }
                    Box::new(Admit { gate, mid }) as Box<dyn TaskBody>
                })
            };
            let serve = {
                let mid_factory = mid_outer.clone();
                let mid_load = mid_outer.clone();
                let served = Arc::clone(&served_outer);
                TaskSpec::leaf("serve", TaskKind::Par, move |_slot: WorkerSlot| {
                    let mid = mid_factory.clone();
                    let served = Arc::clone(&served);
                    Box::new(body_fn(move |cx: &mut dyn TaskCx| {
                        cx.begin();
                        let out = mid.dequeue_timeout(Duration::from_millis(2));
                        let status = match out {
                            DequeueOutcome::Item(_) => {
                                spin(200); // ~5k requests/s per replica, tops
                                served.fetch_add(1, Ordering::Relaxed);
                                TaskStatus::Executing
                            }
                            DequeueOutcome::Drained => TaskStatus::Finished,
                            DequeueOutcome::TimedOut => {
                                if cx.directive().wants_suspend() {
                                    TaskStatus::Suspended
                                } else {
                                    TaskStatus::Executing
                                }
                            }
                        };
                        cx.end();
                        status
                    })) as Box<dyn TaskBody>
                })
                .with_load(move || mid_load.occupancy())
            };
            vec![admit, serve]
        })
        .with_max_extent(1)
        .with_load(move || gate_load.len() as f64)
    };

    let recorder = Recorder::bounded(65_536);
    let queue_gate = gate.clone();
    let queue_mid = mid.clone();
    let queue_served = Arc::clone(&served);
    let dope = Dope::builder(Goal::MaxThroughput { threads: 4 })
        // ShedAware: while the gate drops, a short queue is evidence of
        // shedding, not idle capacity — shrink proposals are vetoed.
        .mechanism(Box::new(ShedAware::new(Proportional::new())))
        .control_period(Duration::from_millis(10))
        .queue_probe(move || QueueStats {
            occupancy: queue_mid.occupancy(),
            arrival_rate: 0.0,
            enqueued: queue_gate.stats().admitted,
            completed: queue_served.load(Ordering::Relaxed),
        })
        .admission(gate.policy())
        .admission_probe(gate.stats_probe())
        .recorder(recorder.clone())
        .launch(vec![service])
        .expect("launch");

    // The storm: bursts far faster than the service can drain. Shed
    // verdicts return immediately (atomics only), so the producer never
    // slows down — exactly the open-loop overload the gate exists for.
    for burst in 0..20u64 {
        for i in 0..1000 {
            let _ = gate.offer(burst * 1000 + i);
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    // Let a few pressured control periods elapse, then drain out.
    std::thread::sleep(Duration::from_millis(20));
    gate.close();
    let report = dope.wait().expect("drain");

    let stats = gate.stats();
    println!(
        "offered {}, admitted {}, shed {} ({:.1}% of offers)",
        stats.offered,
        stats.admitted,
        stats.shed(),
        stats.shed_fraction() * 100.0
    );
    println!(
        "mean queue delay of served requests: {:.3} ms",
        stats.mean_queue_delay_secs * 1e3
    );
    println!(
        "served {}, reconfigurations {}",
        served.load(Ordering::Relaxed),
        report.reconfigurations
    );
    assert_eq!(
        stats.offered,
        stats.admitted + stats.shed_high_water,
        "admission conservation"
    );
    assert!(stats.shed() > 0, "a 10x storm against high_water=64 sheds");
    assert_eq!(
        served.load(Ordering::Relaxed),
        stats.admitted,
        "every admitted request is served"
    );

    std::fs::write(&trace_path, dope_trace::to_jsonl(&recorder.records())).expect("write trace");
    println!("trace: {trace_path}");
    println!("  dope-trace stats   {trace_path}");
    println!("  dope-trace explain {trace_path}");
}
