//! Quickstart: declare a pipeline once, let DoPE pick the parallelism.
//!
//! A three-stage pipeline (produce -> transform -> consume) is declared
//! with *no* thread counts. The executive runs it under a "max throughput
//! with 4 threads" goal, using the paper's Figure 10 proportional
//! mechanism to discover that the heavy middle stage deserves the spare
//! workers.
//!
//! Run with: `cargo run --example quickstart`

use dope_core::{body_fn, Goal, TaskBody, TaskCx, TaskKind, TaskSpec, TaskStatus, WorkerSlot};
use dope_mechanisms::Proportional;
use dope_runtime::Dope;
use dope_workload::{DequeueOutcome, WorkQueue};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn spin(micros: u64) {
    let t0 = Instant::now();
    while t0.elapsed() < Duration::from_micros(micros) {
        std::hint::black_box(0u64);
    }
}

fn main() {
    const ITEMS: u64 = 400;

    // Queues connecting the stages; the inlet is pre-filled (batch mode).
    let inlet: WorkQueue<u64> = WorkQueue::new();
    let mid: WorkQueue<u64> = WorkQueue::new();
    for i in 0..ITEMS {
        inlet.enqueue(i).expect("inlet open");
    }
    inlet.close();
    let consumed = Arc::new(AtomicU64::new(0));

    // Stage 1: produce (sequential). Light work; closes `mid` when done.
    let produce = {
        let inlet_factory = inlet.clone();
        let inlet_load = inlet.clone();
        let mid = mid.clone();
        TaskSpec::leaf("produce", TaskKind::Seq, move |_slot: WorkerSlot| {
            let inlet = inlet_factory.clone();
            let mid = mid.clone();
            struct Produce {
                inlet: WorkQueue<u64>,
                mid: WorkQueue<u64>,
            }
            impl TaskBody for Produce {
                fn invoke(&mut self, cx: &mut dyn TaskCx) -> TaskStatus {
                    cx.begin();
                    let out = self.inlet.dequeue_timeout(Duration::from_millis(2));
                    let status = match out {
                        DequeueOutcome::Item(i) => {
                            spin(30);
                            let _ = self.mid.enqueue(i);
                            TaskStatus::Executing
                        }
                        DequeueOutcome::Drained => TaskStatus::Finished,
                        DequeueOutcome::TimedOut => TaskStatus::Executing,
                    };
                    cx.end();
                    status
                }
                fn fini(&mut self, _status: TaskStatus) {
                    self.mid.close();
                }
            }
            Box::new(Produce { inlet, mid }) as Box<dyn TaskBody>
        })
        .with_load(move || inlet_load.occupancy())
    };

    // Stage 2: transform (parallel) — 10x the work of the endpoints.
    let transform = {
        let mid_factory = mid.clone();
        let mid_load = mid.clone();
        let consumed = Arc::clone(&consumed);
        TaskSpec::leaf("transform", TaskKind::Par, move |_slot: WorkerSlot| {
            let mid = mid_factory.clone();
            let consumed = Arc::clone(&consumed);
            Box::new(body_fn(move |cx: &mut dyn TaskCx| {
                cx.begin();
                let out = mid.dequeue_timeout(Duration::from_millis(2));
                let status = match out {
                    DequeueOutcome::Item(_) => {
                        spin(300);
                        consumed.fetch_add(1, Ordering::Relaxed);
                        TaskStatus::Executing
                    }
                    DequeueOutcome::Drained => TaskStatus::Finished,
                    DequeueOutcome::TimedOut => TaskStatus::Executing,
                };
                cx.end();
                status
            })) as Box<dyn TaskBody>
        })
        .with_load(move || mid_load.occupancy())
    };

    // Declare the parallelism once; extents come from the mechanism.
    let goal = Goal::MaxThroughput { threads: 4 };
    println!("goal: {goal}");
    let dope = Dope::builder(goal)
        .mechanism(Box::new(Proportional::new()))
        .control_period(Duration::from_millis(25))
        .launch(vec![produce, transform])
        .expect("launch");
    let report = dope.wait().expect("run to completion");

    println!(
        "processed {} items in {:?}",
        consumed.load(Ordering::Relaxed),
        report.elapsed
    );
    println!("reconfigurations: {}", report.reconfigurations);
    println!("final configuration: {}", report.final_config);
    assert_eq!(consumed.load(Ordering::Relaxed), ITEMS);
}
