//! Throughput maximization under a power budget (paper §7.3 / §8.2.3).
//!
//! The administrator specifies "max throughput with 24 threads at 90% of
//! peak power". DoPE's TPC controller ramps the degree of parallelism
//! until the (slow, AP7892-rate) power meter reads the budget, then
//! explores same-size configurations for the best throughput. This
//! example runs on the simulated 24-context machine so the power ramp is
//! reproducible anywhere.
//!
//! At the end the run's power and throughput are published as gauges in a
//! [`MetricsRegistry`] and dumped once in Prometheus text format — the
//! one-shot (`curl`-free) counterpart to the live endpoint in
//! `examples/video_service.rs`.
//!
//! Run with: `cargo run --release --example power_capped`

use dope_core::{Goal, Resources};
use dope_mechanisms::Tpc;
use dope_metrics::{names, MetricsRegistry};
use dope_platform::PowerModel;
use dope_sim::pipeline::{run_pipeline, PipelineParams, PowerSim, Source};

fn main() {
    let model = dope_apps::ferret::sim_model();
    let power_model = PowerModel::default();
    let target = 0.9 * power_model.peak_power();
    let goal = Goal::MaxThroughputUnderPower {
        threads: 24,
        watts: target,
    };
    println!(
        "goal: {goal} (idle {:.0} W, peak {:.0} W)",
        power_model.idle_watts(),
        power_model.peak_power()
    );

    let mut tpc = Tpc::default();
    let outcome = run_pipeline(
        &model,
        &Source::Saturated,
        &mut tpc,
        Resources::threads(goal.threads()).with_power_budget(target),
        &PipelineParams {
            control_period_secs: 1.0,
            horizon_secs: 300.0,
            power: Some(PowerSim {
                model: power_model,
                ..PowerSim::default()
            }),
            ..PipelineParams::default()
        },
    );

    println!("\n  t(s)   power(W)   throughput(q/s)");
    let thr: std::collections::BTreeMap<u64, f64> = outcome
        .throughput_series
        .points()
        .iter()
        .map(|&(t, v)| (t as u64, v))
        .collect();
    for &(t, p) in outcome.power_series.points() {
        let ti = t as u64;
        if ti.is_multiple_of(20) {
            println!(
                "{ti:>6} {p:>10.1} {:>14.1}",
                thr.get(&ti).copied().unwrap_or(0.0)
            );
        }
    }
    let stable_power = outcome
        .power_series
        .mean_after(outcome.horizon_secs * 0.5)
        .unwrap_or(0.0);
    let stable_throughput = outcome.stable_throughput(outcome.horizon_secs * 0.5);
    println!(
        "\nstable power {stable_power:.1} W (target {target:.0} W), stable throughput {stable_throughput:.1} queries/s",
    );

    // One-shot metrics dump: publish the run's stable operating point as
    // gauges and render the registry as Prometheus text.
    let registry = MetricsRegistry::new();
    registry
        .gauge_with_labels(
            names::POWER_WATTS,
            "Most recent platform power reading in watts.",
            &[("app", "ferret"), ("mechanism", "TPC")],
        )
        .set(stable_power);
    registry
        .gauge_with_labels(
            names::PIPELINE_THROUGHPUT,
            "Stable pipeline throughput in queries per second.",
            &[("app", "ferret"), ("mechanism", "TPC")],
        )
        .set(stable_throughput);
    let dump = registry.render();
    println!("\n-- metrics dump --");
    for line in dump.lines().filter(|l| !l.starts_with('#')) {
        println!("  {line}");
    }

    assert!(stable_power < target + 10.0, "controller respects the cap");
    assert!(
        dump.contains(names::POWER_WATTS) && dump.contains(names::PIPELINE_THROUGHPUT),
        "dump must carry the power and throughput gauges"
    );
}
