//! The ferret image search engine under a throughput goal.
//!
//! A six-stage pipeline (load, segment, extract, index, rank, out) over a
//! feature-vector corpus. The administrator asks for maximum throughput;
//! DoPE drives TBF, which balances the stage extents by their measured
//! execution times — and, if the pipeline is heavily unbalanced, switches
//! to the developer-registered fused task.
//!
//! Run with: `cargo run --release --example image_search`

use dope_apps::ferret;
use dope_apps::kernels::search::Corpus;
use dope_core::Goal;
use dope_mechanisms::Tbf;
use dope_runtime::Dope;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let corpus = Arc::new(Corpus::synthetic(6000, 7));
    let (pipe, descriptor) = ferret::live_pipeline(Arc::clone(&corpus));

    const QUERIES: u64 = 2000;
    ferret::submit_queries(&pipe, QUERIES);
    pipe.source.close();

    let goal = Goal::MaxThroughput { threads: 6 };
    println!("goal: {goal} over a corpus of {} vectors", corpus.len());

    let dope = Dope::builder(goal)
        .mechanism(Box::new(Tbf::new()))
        .control_period(Duration::from_millis(50))
        .queue_probe(pipe.queue_probe())
        .launch(descriptor)
        .expect("launch");
    let report = dope.wait().expect("batch completes");

    let elapsed = report.elapsed.as_secs_f64();
    println!(
        "answered {} queries in {:.2}s ({:.0} queries/s)",
        pipe.stats.completed(),
        elapsed,
        pipe.stats.completed() as f64 / elapsed
    );
    println!("reconfigurations: {}", report.reconfigurations);
    println!("final configuration: {}", report.final_config);
    assert_eq!(pipe.stats.completed(), QUERIES);
}
