//! Offline shim for `crossbeam`.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` with the
//! multi-producer **multi-consumer** semantics the worker pool relies on
//! (std's `mpsc::Receiver` is single-consumer, so it cannot be used
//! directly).

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is drained
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel. Clonable: clones share
    /// the queue (each message is delivered to exactly one receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Sender").finish_non_exhaustive()
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Receiver").finish_non_exhaustive()
        }
    }

    /// Creates an unbounded MPMC channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Sends a message, never blocking.
        ///
        /// # Errors
        ///
        /// This shim keeps the queue alive as long as any endpoint exists,
        /// so `send` only fails if every `Receiver` *and* the queue are
        /// gone — which cannot be observed through safe use; the `Result`
        /// mirrors the crossbeam signature.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            state.queue.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut state = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            state.senders += 1;
            drop(state);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking until one arrives.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] once the channel is empty and every
        /// sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Receives a message without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] if no message is queued,
        /// [`TryRecvError::Disconnected`] if additionally all senders are
        /// gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            match state.queue.pop_front() {
                Some(value) => Ok(value),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError};
    use std::thread;

    #[test]
    fn fifo_single_consumer() {
        let (tx, rx) = unbounded();
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(rx.recv(), Ok(0));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn multi_consumer_drains_everything() {
        let (tx, rx) = unbounded();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut n = 0u32;
                    while rx.recv().is_ok() {
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        drop(rx);
        let total: u32 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn cloned_sender_keeps_channel_open() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(7).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }
}
