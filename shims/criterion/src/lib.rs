//! Offline shim for `criterion`.
//!
//! Provides `Criterion::bench_function`, `Bencher::iter`,
//! [`criterion_group!`] and [`criterion_main!`]. Each benchmark closure
//! runs for a short fixed budget and a one-line mean is printed; there is
//! no statistical analysis. This keeps `cargo bench` (and `cargo test`,
//! which builds and runs `harness = false` bench targets) working in an
//! environment without crates.io.

use std::time::{Duration, Instant};

/// Measurement driver handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    total: Duration,
}

impl Bencher {
    /// Times repeated invocations of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up invocation, then a short fixed measurement budget.
        std::hint::black_box(routine());
        let budget = Duration::from_millis(20);
        let start = Instant::now();
        let mut iterations = 0u64;
        while start.elapsed() < budget && iterations < 1_000_000 {
            std::hint::black_box(routine());
            iterations += 1;
        }
        self.iterations = iterations.max(1);
        self.total = start.elapsed();
    }
}

/// Top-level benchmark registry (shim of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs `routine` as the benchmark `name`, printing a one-line mean.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iterations: 0,
            total: Duration::ZERO,
        };
        routine(&mut bencher);
        let mean_ns = bencher.total.as_nanos() as f64 / bencher.iterations.max(1) as f64;
        println!(
            "bench {name:<40} {mean_ns:>14.1} ns/iter ({} iters)",
            bencher.iterations
        );
        self
    }
}

/// Re-export point used by some criterion idioms.
#[must_use]
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a benchmark group: a function invoking each benchmark fn.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut hits = 0u64;
        c.bench_function("trivial", |b| b.iter(|| hits = hits.wrapping_add(1)));
        assert!(hits > 0);
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(7), 7);
    }
}
