//! Offline shim for `serde_derive`: the derive macros expand to nothing.
//!
//! Nothing in this workspace performs serde-driven serialization (the
//! `dope-verify` CLI ships its own small JSON codec), so the derives only
//! need to exist, not to generate code.

use proc_macro::TokenStream;

/// No-op replacement for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
