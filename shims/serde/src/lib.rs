//! Offline shim for `serde`.
//!
//! Re-exports the no-op `Serialize`/`Deserialize` derive macros so that
//! `#[derive(Serialize, Deserialize)]` and `use serde::{Deserialize,
//! Serialize}` compile unchanged in an environment without crates.io.

pub use serde_derive::{Deserialize, Serialize};
