//! Offline shim for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the `parking_lot` API used by this
//! workspace: infallible `lock`/`read`/`write` (poison is swallowed, like
//! parking_lot which has no poisoning), and a `Condvar` whose `wait`/
//! `wait_for` take `&mut MutexGuard` instead of consuming the guard.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};
use std::time::Duration;

/// A mutual exclusion primitive (parking_lot-compatible facade).
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so that `Condvar::wait` can temporarily take the inner
    // guard out while blocking; it is `Some` at all other times.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(
                self.inner
                    .lock()
                    .unwrap_or_else(sync::PoisonError::into_inner),
            ),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Result of a timed wait on a [`Condvar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable compatible with the shim [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard holds the lock");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard holds the lock");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// A reader-writer lock (parking_lot-compatible facade).
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self
                .inner
                .read()
                .unwrap_or_else(sync::PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self
                .inner
                .write()
                .unwrap_or_else(sync::PoisonError::into_inner),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            true
        });
        thread::sleep(Duration::from_millis(5));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        assert!(waiter.join().unwrap());
    }
}
