//! Offline shim for `rand` 0.8.
//!
//! Provides the subset this workspace uses: the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`], and
//! [`rngs::SmallRng`] backed by SplitMix64. The numeric streams differ
//! from upstream `rand`; the workspace relies only on determinism per
//! seed, never on exact streams.

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// The next 64 pseudo-random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 pseudo-random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw output.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::unnecessary_cast)]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with uniform sampling over ranges.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`. Panics if `low >= high`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;

    /// Uniform draw from `[low, high]`. Panics if `low > high`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (low as i128 + draw as i128) as $t
            }

            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (low as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                low + unit * (high - low)
            }

            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                low + unit * (high - low)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Argument accepted by [`Rng::gen_range`]: half-open and inclusive
/// ranges over [`SampleUniform`] types.
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl<T: SampleUniform> SampleRange for Range<T> {
    type Output = T;

    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange for RangeInclusive<T> {
    type Output = T;

    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }

    /// Draws `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "gen_ratio: zero denominator");
        assert!(numerator <= denominator, "gen_ratio: ratio above one");
        (self.next_u64() % u64::from(denominator)) < u64::from(numerator)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(4..32usize);
            assert!((4..32).contains(&v));
            let b = rng.gen_range(b'a'..=b'z');
            assert!(b.is_ascii_lowercase());
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let n: u32 = rng.gen_range(0..24);
            assert!(n < 24);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!(0..64).any(|_| rng.gen_bool(0.0)));
        assert!((0..64).all(|_| rng.gen_bool(1.0)));
    }
}
