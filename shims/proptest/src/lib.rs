//! Offline shim for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//! * [`any`] for `bool`/integers, range strategies (`1u32..64`,
//!   `0.0f64..1.0`), `prop::collection::vec`, `prop::option::of`,
//! * [`ProptestConfig`] and [`TestCaseError`].
//!
//! Cases are generated from a deterministic per-test seed (derived from
//! the test name), so failures are reproducible. Unlike upstream proptest
//! there is **no shrinking**: the failing inputs are reported verbatim.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 generator driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded deterministically from the test name.
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform usize in `[low, high)`.
    pub fn usize_in(&mut self, low: usize, high: usize) -> usize {
        assert!(low < high, "empty size range");
        low + (self.next_u64() as usize) % (high - low)
    }
}

/// Why a generated test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case failed an assertion: the test as a whole fails.
    Fail(String),
    /// The case was rejected by `prop_assume!`: it is skipped.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    #[must_use]
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection with the given message.
    #[must_use]
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "test case failed: {msg}"),
            TestCaseError::Reject(msg) => write!(f, "test case rejected: {msg}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Execution parameters of a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
    /// Maximum rejected cases (via `prop_assume!`) before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// A generator of values for one test argument.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "anything" strategy (see [`any`]).
pub trait Arbitrary: Sized + Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::unnecessary_cast)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: any representable value.
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty strategy range");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (*self.start() as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[allow(clippy::unnecessary_cast)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_range_strategy_float!(f32, f64);

/// Strategy combinators matching proptest's `prop::` namespace.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Number-of-elements specification for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        low: usize,
        high: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                low: exact,
                high: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            SizeRange {
                low: range.start,
                high: range.end,
            }
        }
    }

    /// Strategy generating `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.low + 1 >= self.size.high {
                self.size.low
            } else {
                rng.usize_in(self.size.low, self.size.high)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `prop::option`: strategies over `Option`.
pub mod option {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;

    /// Strategy generating `Option`s of an inner strategy's values.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `None` about a quarter of the time, `Some` otherwise
    /// (matching upstream's default 75% `Some` probability).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// The `prop::` namespace as re-exported by the prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

/// Everything a proptest-based test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a proptest case, failing the case (not
/// panicking immediately) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Rejects the current case (it is skipped, not failed) unless the
/// precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}

/// Declares property-based tests.
///
/// Supports the upstream surface used in this workspace: an optional
/// leading `#![proptest_config(expr)]`, then one or more
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)+),
                        $(&$arg,)+
                    );
                    #[allow(clippy::redundant_closure_call)]
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            assert!(
                                rejected <= config.max_global_rejects,
                                "proptest `{}`: too many rejected cases ({rejected})",
                                stringify!($name),
                            );
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest `{}` failed after {} passing case(s): {}\n  inputs: {}",
                                stringify!($name),
                                accepted,
                                msg,
                                inputs,
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, f in 0.5f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn exact_vec_size(v in prop::collection::vec(0u32..10, 4)) {
            prop_assert_eq!(v.len(), 4);
        }

        #[test]
        fn option_of_produces_both(xs in prop::collection::vec(prop::option::of(0u32..5), 64)) {
            prop_assert!(xs.iter().any(Option::is_some));
            prop_assert!(xs.iter().any(Option::is_none));
        }

        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_override_applies(_x in 0u32..10) {
            // Runs exactly 7 cases; nothing to assert beyond completion.
        }
    }

    #[test]
    #[should_panic(expected = "proptest `always_fails` failed")]
    fn failing_case_panics_with_inputs() {
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }

    #[test]
    fn helper_functions_can_return_testcase_error() {
        fn helper(x: u32) -> Result<(), TestCaseError> {
            prop_assert!(x < 10);
            Ok(())
        }
        proptest! {
            fn uses_helper(x in 0u32..10) {
                helper(x)?;
            }
        }
        uses_helper();
    }
}
