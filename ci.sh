#!/usr/bin/env bash
# Offline-friendly CI for the DoPE reproduction workspace.
#
# The build environment has no crates.io access; all third-party
# dependencies are in-tree shims (see shims/README.md), so everything
# below runs with the network hard-disabled.
#
# Usage: ./ci.sh [--quick]
#   --quick   skip the release build (format, lint, debug tests only)

set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true
QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

step "dope-lint --strict (workspace contract lint)"
# Findings, reasonless waivers, and blind passes (missing anchors) all
# fail the gate; accepted waivers are printed for review.
cargo run -q --offline -p dope-lint --bin dope-lint -- --strict .

step "dope-lint --json round-trips through the strict codec"
cargo run -q --offline -p dope-lint --bin dope-lint -- --json . \
  | cargo run -q --offline -p dope-lint --bin dope-lint -- --parse-report -

if [[ "$QUICK" -eq 0 ]]; then
  step "cargo build --release"
  cargo build --release --offline
fi

step "cargo test -q"
cargo test -q --offline

step "cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline --quiet

step "cargo test --doc"
cargo test -q --doc --workspace --offline

if [[ "$QUICK" -eq 0 ]]; then
  step "metrics smoke: live scrape + overhead regression"
  # A tiny live run that serves and scrapes its own Prometheus endpoint
  # and asserts the monitoring-overhead ratio stays under the ceiling.
  cargo test -q --release --offline --test metrics_smoke

  step "metrics smoke: dope-trace stats on a fresh recording"
  TRACE_TMP="$(mktemp -d)"
  trap 'rm -rf "$TRACE_TMP"' EXIT
  cargo run -q --release --offline -p dope-trace --bin dope-trace -- \
    record "$TRACE_TMP/smoke.jsonl"
  cargo run -q --release --offline -p dope-trace --bin dope-trace -- \
    stats "$TRACE_TMP/smoke.jsonl" | grep -q "finished:"
  cargo run -q --release --offline -p dope-trace --bin dope-trace -- \
    replay "$TRACE_TMP/smoke.jsonl"

  step "fault smoke: panic injection under every failure policy (release)"
  # The supervision layer must hold with release-build optimizations:
  # panicking replicas are contained, accounted, and handled per policy.
  cargo test -q --release --offline --test failure_injection

  step "fault smoke: failure racing a partial drain (release)"
  # The nastiest interleaving the delta path adds: a replica detonates
  # while a partial drain is in flight. The accepted target must be
  # retired as superseded and the failure policy's full drain must win.
  # (The suite above already covers it; this filtered run makes the
  # interleaving visible by name in the CI log.)
  cargo test -q --release --offline --test failure_injection \
    failure_during_partial_drain_supersedes_the_target
  cargo test -q --release --offline --test partial_reconfig

  step "fault smoke: dope-trace record -> stats round trip with TaskFailed"
  # The record CLI cannot inject panics, so a fixture trace carrying
  # TaskFailed events checks the consumer half: stats must count the
  # failures per path and the timeline must render them.
  FAULT_TRACE="$TRACE_TMP/faults.jsonl"
  printf '%s\n' \
    '{"v": 1, "seq": 0, "t": 0.1, "kind": "FeatureRead", "feature": "SystemPower", "value": 612.5}' \
    '{"v": 1, "seq": 1, "t": 0.5, "kind": "TaskFailed", "path": "0.1", "reason": "worker panicked: boom", "policy": "restart"}' \
    '{"v": 1, "seq": 2, "t": 0.9, "kind": "TaskFailed", "path": "0.1", "reason": "worker panicked: boom again", "policy": "restart"}' \
    '{"v": 1, "seq": 3, "t": 1.5, "kind": "Finished", "completed": 48, "reconfigurations": 1, "dropped_events": 0}' \
    > "$FAULT_TRACE"
  cargo run -q --release --offline -p dope-trace --bin dope-trace -- \
    stats "$FAULT_TRACE" | grep -q "2 failed replica(s)"
  cargo run -q --release --offline -p dope-trace --bin dope-trace -- \
    timeline "$FAULT_TRACE" | grep -q "FAILED"

  step "explain smoke: traced fig11 run -> decision audit (text + strict JSON)"
  # A short traced fig11 config must yield a non-empty decision audit:
  # the recording carries DecisionTraced events, `explain` renders them,
  # and `explain --json` re-emits strict JSONL that parses back through
  # the codec (piping it into a second `explain -` proves exactly that —
  # a loose re-encoding would be rejected on the way back in).
  FIG11_TRACE="$TRACE_TMP/fig11.jsonl"
  cargo run -q --release --offline -p dope-bench --bin fig11 -- \
    --quick "--trace=$FIG11_TRACE" > /dev/null
  cargo run -q --release --offline -p dope-trace --bin dope-trace -- \
    explain "$FIG11_TRACE" > "$TRACE_TMP/audit.txt"
  grep -q "decision audit:" "$TRACE_TMP/audit.txt"
  cargo run -q --release --offline -p dope-trace --bin dope-trace -- \
    explain "$FIG11_TRACE" --json > "$TRACE_TMP/decisions.jsonl"
  cargo run -q --release --offline -p dope-trace --bin dope-trace -- \
    explain "$TRACE_TMP/decisions.jsonl" > "$TRACE_TMP/audit-rt.txt"
  grep -q "decision audit:" "$TRACE_TMP/audit-rt.txt"

  step "overload smoke: shedding gate storm -> admission stats -> decision audit"
  # The live overload example (docs/overload.md) storms a Shed-gated
  # two-stage service, asserting conservation and a non-zero shed count
  # in-process; the trace it writes must carry AdmissionDecision events
  # (stats renders the admission section with the gate's totals) and a
  # non-empty decision audit from the ShedAware-wrapped mechanism.
  OVERLOAD_TRACE="$TRACE_TMP/overload.jsonl"
  cargo run -q --release --offline --example overload -- "$OVERLOAD_TRACE" > /dev/null
  cargo run -q --release --offline -p dope-trace --bin dope-trace -- \
    stats "$OVERLOAD_TRACE" > "$TRACE_TMP/overload-stats.txt"
  grep -q "admission:" "$TRACE_TMP/overload-stats.txt"
  grep -q "totals: 20000 offered" "$TRACE_TMP/overload-stats.txt"
  cargo run -q --release --offline -p dope-trace --bin dope-trace -- \
    explain "$OVERLOAD_TRACE" | grep -q "decision audit:"
  cargo test -q --release --offline --test admission_overload

  step "perf smoke: record-path / snapshot / reconfigure / fig11 gates"
  # Reduced-configuration run of the perf gate (docs/performance.md).
  # The binary itself enforces the in-run invariant (sharded record path
  # beats the in-process mutex reference) and diffs against the
  # checked-in quick-mode baseline. The threshold is deliberately loose:
  # shared CI machines jitter, and the gate is for gross regressions (a
  # lock back on the hot path), not scheduler noise.
  PERF_OUT="$TRACE_TMP/BENCH_perf.json"
  cargo run -q --release --offline -p dope-bench --bin perf -- \
    --quick --out="$PERF_OUT" \
    --compare=results/perf-baseline.json --threshold=2.0
  # The emitted report must survive the workspace's strict JSON codec
  # and carry the expected schema tag — and so must the baseline itself.
  cargo run -q --release --offline -p dope-bench --bin perf -- --check="$PERF_OUT"
  cargo run -q --release --offline -p dope-bench --bin perf -- \
    --check=results/perf-baseline.json
fi

step "ci.sh: all checks passed"
