#!/usr/bin/env bash
# Offline-friendly CI for the DoPE reproduction workspace.
#
# The build environment has no crates.io access; all third-party
# dependencies are in-tree shims (see shims/README.md), so everything
# below runs with the network hard-disabled.
#
# Usage: ./ci.sh [--quick]
#   --quick   skip the release build (format, lint, debug tests only)

set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true
QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

if [[ "$QUICK" -eq 0 ]]; then
  step "cargo build --release"
  cargo build --release --offline
fi

step "cargo test -q"
cargo test -q --offline

step "cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline --quiet

step "cargo test --doc"
cargo test -q --doc --workspace --offline

if [[ "$QUICK" -eq 0 ]]; then
  step "metrics smoke: live scrape + overhead regression"
  # A tiny live run that serves and scrapes its own Prometheus endpoint
  # and asserts the monitoring-overhead ratio stays under the ceiling.
  cargo test -q --release --offline --test metrics_smoke

  step "metrics smoke: dope-trace stats on a fresh recording"
  TRACE_TMP="$(mktemp -d)"
  trap 'rm -rf "$TRACE_TMP"' EXIT
  cargo run -q --release --offline -p dope-trace --bin dope-trace -- \
    record "$TRACE_TMP/smoke.jsonl"
  cargo run -q --release --offline -p dope-trace --bin dope-trace -- \
    stats "$TRACE_TMP/smoke.jsonl" | grep -q "finished:"
  cargo run -q --release --offline -p dope-trace --bin dope-trace -- \
    replay "$TRACE_TMP/smoke.jsonl"
fi

step "ci.sh: all checks passed"
