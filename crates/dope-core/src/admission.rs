//! Admission control: what happens at the front door past saturation.
//!
//! The executive tunes the degree of parallelism *inside* the program,
//! but an open workload past saturation will grow any unbounded queue
//! (and every latency percentile with it) no matter how well the stages
//! are balanced. An [`AdmissionPolicy`] bounds the workload/runtime
//! boundary: the generator *offers* requests, and the gate decides per
//! request whether to admit, block, or shed. Admission pressure is then
//! surfaced to mechanisms as [`AdmissionStats`] inside every
//! [`MonitorSnapshot`](crate::MonitorSnapshot), so shed-aware decisions
//! can steer for goodput instead of chasing an unserviceable backlog.
//!
//! # Example
//!
//! ```
//! use dope_core::admission::AdmissionPolicy;
//!
//! let policy = AdmissionPolicy::Shed { high_water: 64 };
//! assert_eq!(policy.kind(), "shed");
//! assert!(policy.validate().is_ok());
//! assert!(AdmissionPolicy::Shed { high_water: 0 }.validate().is_err());
//! ```

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};

/// How the front door treats offered requests when the system is full.
///
/// Selected per run via the runtime builder (or
/// `SystemParams::admission` in the simulator). `Open` is the historical
/// behaviour: every offer is admitted and queues are unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum AdmissionPolicy {
    /// Admit everything; queues are unbounded (the pre-admission
    /// behaviour, and the default).
    #[default]
    Open,
    /// Closed-loop backpressure: an offer blocks the producer until
    /// queue occupancy drops below `capacity`. No request is lost; the
    /// *arrival process* is throttled instead.
    Block {
        /// Maximum queue occupancy before offers block.
        capacity: u32,
    },
    /// Load shedding: an offer made while occupancy is at or above
    /// `high_water` is dropped immediately with a counted verdict. The
    /// producer never blocks; admitted requests see bounded queueing.
    Shed {
        /// Occupancy at or above which offers are shed.
        high_water: u32,
    },
    /// Deadline-aware shedding: offers are always enqueued, but a
    /// request whose queue delay already exceeds `budget_secs` when a
    /// worker would pick it up is dropped instead of served — serving
    /// it would waste capacity on an answer nobody is waiting for.
    Deadline {
        /// Per-request latency budget in seconds, measured from offer
        /// to dispatch.
        budget_secs: f64,
    },
}

impl AdmissionPolicy {
    /// The stable lowercase tag this policy serializes and logs under.
    #[must_use]
    pub fn kind(self) -> &'static str {
        match self {
            AdmissionPolicy::Open => "open",
            AdmissionPolicy::Block { .. } => "block",
            AdmissionPolicy::Shed { .. } => "shed",
            AdmissionPolicy::Deadline { .. } => "deadline",
        }
    }

    /// Validates the policy's parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::AdmissionPolicy`] (diagnostic `DV017`) for a
    /// zero `capacity` or `high_water` (the gate would admit nothing)
    /// or a non-positive / non-finite `budget_secs` (every request
    /// would miss its deadline on arrival).
    pub fn validate(self) -> Result<()> {
        match self {
            AdmissionPolicy::Open => Ok(()),
            AdmissionPolicy::Block { capacity: 0 } => Err(Error::AdmissionPolicy {
                detail: "Block admission with capacity 0 would admit nothing".to_string(),
            }),
            AdmissionPolicy::Shed { high_water: 0 } => Err(Error::AdmissionPolicy {
                detail: "Shed admission with high_water 0 would shed everything".to_string(),
            }),
            AdmissionPolicy::Deadline { budget_secs }
                if !budget_secs.is_finite() || budget_secs <= 0.0 =>
            {
                Err(Error::AdmissionPolicy {
                    detail: format!(
                        "Deadline admission budget must be positive and finite, got {budget_secs}"
                    ),
                })
            }
            _ => Ok(()),
        }
    }
}

impl std::fmt::Display for AdmissionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionPolicy::Open => f.write_str("open"),
            AdmissionPolicy::Block { capacity } => write!(f, "block(capacity={capacity})"),
            AdmissionPolicy::Shed { high_water } => write!(f, "shed(high_water={high_water})"),
            AdmissionPolicy::Deadline { budget_secs } => {
                write!(f, "deadline(budget={budget_secs}s)")
            }
        }
    }
}

/// Admission-gate counters, as surfaced in a
/// [`MonitorSnapshot`](crate::MonitorSnapshot).
///
/// All counters are cumulative since launch, so mechanisms (and the
/// flight recorder) can difference successive snapshots to see pressure
/// within a control period. An all-zero value means "no admission gate
/// installed" — the additive-schema default for pre-admission traces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct AdmissionStats {
    /// Requests the workload offered to the gate.
    pub offered: u64,
    /// Offers admitted into the queue.
    pub admitted: u64,
    /// Offers shed because occupancy was at or above the high watermark.
    pub shed_high_water: u64,
    /// Admitted requests dropped at dispatch because their queue delay
    /// exceeded the deadline budget.
    pub shed_deadline: u64,
    /// Mean queue delay (offer to dispatch) of requests dispatched so
    /// far, in seconds. `0.0` when nothing has been dispatched.
    pub mean_queue_delay_secs: f64,
}

impl AdmissionStats {
    /// Total requests dropped by the gate, across all reasons.
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.shed_high_water + self.shed_deadline
    }

    /// Fraction of offers shed, in `[0, 1]` (`0.0` before any offer).
    #[must_use]
    pub fn shed_fraction(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed() as f64 / self.offered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable() {
        assert_eq!(AdmissionPolicy::Open.kind(), "open");
        assert_eq!(AdmissionPolicy::Block { capacity: 8 }.kind(), "block");
        assert_eq!(AdmissionPolicy::Shed { high_water: 8 }.kind(), "shed");
        assert_eq!(
            AdmissionPolicy::Deadline { budget_secs: 0.5 }.kind(),
            "deadline"
        );
    }

    #[test]
    fn default_is_open() {
        assert_eq!(AdmissionPolicy::default(), AdmissionPolicy::Open);
    }

    #[test]
    fn validation_accepts_sane_parameters() {
        assert!(AdmissionPolicy::Open.validate().is_ok());
        assert!(AdmissionPolicy::Block { capacity: 1 }.validate().is_ok());
        assert!(AdmissionPolicy::Shed { high_water: 64 }.validate().is_ok());
        assert!(AdmissionPolicy::Deadline { budget_secs: 0.25 }
            .validate()
            .is_ok());
    }

    #[test]
    fn validation_rejects_degenerate_parameters() {
        for bad in [
            AdmissionPolicy::Block { capacity: 0 },
            AdmissionPolicy::Shed { high_water: 0 },
            AdmissionPolicy::Deadline { budget_secs: 0.0 },
            AdmissionPolicy::Deadline { budget_secs: -1.0 },
            AdmissionPolicy::Deadline {
                budget_secs: f64::NAN,
            },
        ] {
            let err = bad.validate().unwrap_err();
            assert_eq!(err.code().to_string(), "DV017", "{bad:?}");
        }
    }

    #[test]
    fn display_names_the_parameters() {
        assert_eq!(
            AdmissionPolicy::Shed { high_water: 64 }.to_string(),
            "shed(high_water=64)"
        );
        assert_eq!(
            AdmissionPolicy::Block { capacity: 32 }.to_string(),
            "block(capacity=32)"
        );
        assert_eq!(AdmissionPolicy::Open.to_string(), "open");
    }

    #[test]
    fn stats_totals_and_fractions() {
        let stats = AdmissionStats {
            offered: 100,
            admitted: 80,
            shed_high_water: 15,
            shed_deadline: 5,
            mean_queue_delay_secs: 0.01,
        };
        assert_eq!(stats.shed(), 20);
        assert!((stats.shed_fraction() - 0.2).abs() < 1e-12);
        assert_eq!(AdmissionStats::default().shed_fraction(), 0.0);
    }
}
