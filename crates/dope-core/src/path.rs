//! Paths addressing tasks in a configured loop nest.

use serde::{Deserialize, Serialize};
use std::str::FromStr;

/// Address of a task in the configured parallelism tree.
///
/// A path is a sequence of child indices: the first element selects a task
/// in the root parallelism descriptor, each following element selects a
/// child within the chosen nested descriptor. Replicas of a task share a
/// path — monitoring data is aggregated across replicas.
///
/// # Example
///
/// ```
/// use dope_core::TaskPath;
///
/// let transform: TaskPath = "0.1".parse().unwrap();
/// assert_eq!(transform.depth(), 2);
/// assert_eq!(transform.parent(), Some("0".parse().unwrap()));
/// assert_eq!(transform.to_string(), "0.1");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct TaskPath(Vec<u16>);

impl TaskPath {
    /// The empty path, addressing the root descriptor itself.
    #[must_use]
    pub fn root() -> Self {
        TaskPath(Vec::new())
    }

    /// Path addressing the `index`-th task of the root descriptor.
    #[must_use]
    pub fn root_child(index: u16) -> Self {
        TaskPath(vec![index])
    }

    /// Creates a path from raw indices.
    #[must_use]
    pub fn from_indices<I: IntoIterator<Item = u16>>(indices: I) -> Self {
        TaskPath(indices.into_iter().collect())
    }

    /// Returns this path extended by one child index.
    #[must_use]
    pub fn child(&self, index: u16) -> Self {
        let mut v = self.0.clone();
        v.push(index);
        TaskPath(v)
    }

    /// The parent path, or `None` for the root.
    #[must_use]
    pub fn parent(&self) -> Option<Self> {
        if self.0.is_empty() {
            None
        } else {
            Some(TaskPath(self.0[..self.0.len() - 1].to_vec()))
        }
    }

    /// Number of components (nesting depth). The root has depth zero.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` for the root path.
    #[must_use]
    pub fn is_root(&self) -> bool {
        self.0.is_empty()
    }

    /// The last component, or `None` for the root.
    #[must_use]
    pub fn leaf_index(&self) -> Option<u16> {
        self.0.last().copied()
    }

    /// Iterates over the component indices.
    pub fn indices(&self) -> impl Iterator<Item = u16> + '_ {
        self.0.iter().copied()
    }

    /// Returns `true` if `self` is a (non-strict) prefix of `other`.
    #[must_use]
    pub fn is_prefix_of(&self, other: &TaskPath) -> bool {
        other.0.len() >= self.0.len() && other.0[..self.0.len()] == self.0[..]
    }
}

impl std::fmt::Display for TaskPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0.is_empty() {
            return f.write_str("<root>");
        }
        let mut first = true;
        for i in &self.0 {
            if !first {
                f.write_str(".")?;
            }
            write!(f, "{i}")?;
            first = false;
        }
        Ok(())
    }
}

/// Error returned when parsing a [`TaskPath`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePathError(String);

impl std::fmt::Display for ParsePathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid task path: {}", self.0)
    }
}

impl std::error::Error for ParsePathError {}

impl FromStr for TaskPath {
    type Err = ParsePathError;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        if s.is_empty() || s == "<root>" {
            return Ok(TaskPath::root());
        }
        let mut v = Vec::new();
        for part in s.split('.') {
            let idx: u16 = part.parse().map_err(|_| ParsePathError(s.to_string()))?;
            v.push(idx);
        }
        Ok(TaskPath(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["0", "0.1", "3.2.1", "12.0"] {
            let p: TaskPath = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn root_parses_from_empty() {
        let p: TaskPath = "".parse().unwrap();
        assert!(p.is_root());
        assert_eq!(p.to_string(), "<root>");
    }

    #[test]
    fn parent_and_child_are_inverse() {
        let p: TaskPath = "1.2.3".parse().unwrap();
        assert_eq!(p.parent().unwrap().child(3), p);
    }

    #[test]
    fn prefix_checks() {
        let outer: TaskPath = "0".parse().unwrap();
        let inner: TaskPath = "0.1".parse().unwrap();
        assert!(outer.is_prefix_of(&inner));
        assert!(!inner.is_prefix_of(&outer));
        assert!(TaskPath::root().is_prefix_of(&outer));
        assert!(outer.is_prefix_of(&outer));
    }

    #[test]
    fn invalid_parse_reports_error() {
        let err = "0.x".parse::<TaskPath>().unwrap_err();
        assert!(err.to_string().contains("0.x"));
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a: TaskPath = "0.1".parse().unwrap();
        let b: TaskPath = "0.2".parse().unwrap();
        let c: TaskPath = "1".parse().unwrap();
        assert!(a < b);
        assert!(b < c);
    }
}
