//! Decision audit: what a mechanism saw, weighed, chose — and why.
//!
//! Mechanisms make their choices from private internal state (EWMA
//! streams, hysteresis streaks, hill-climb phases), so by the time a
//! configuration lands in a trace the *reasoning* behind it is gone.
//! A [`DecisionTrace`] is the mechanism's own account of one
//! `reconfigure` call: the signals it read, the candidate actions it
//! scored, the one it chose, a stable [`Rationale`] code, and — when its
//! model supports one — a predicted throughput the executive can score
//! against the realized value one epoch later.
//!
//! The trait hook is [`crate::Mechanism::explain`]; the executive and the
//! simulator observers pick the trace up after every `reconfigure` call
//! and publish it as a `DecisionTraced` trace event plus
//! `dope_mechanism_prediction_error` / `dope_decision_rationale_total`
//! metrics.

/// Stable machine-readable reason codes for mechanism decisions.
///
/// Codes are part of the trace contract (`docs/event-schema.md`): they
/// may be added, never renamed or removed. Each code names the dominant
/// clause of the mechanism's decision logic, not the outcome — two
/// different configurations can share a rationale, and a "hold" (no
/// proposal) carries one too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rationale {
    /// Work-queue occupancy mapped through the linear width law (Eq. 2).
    OccupancyLinear,
    /// A width change is pending until it persists past the hysteresis
    /// window.
    HysteresisPending,
    /// Occupancy crossed the sequential/parallel threshold for long
    /// enough to flip the mode.
    ThresholdCrossed,
    /// The occupancy landed in a configured oracle table row.
    OracleLookup,
    /// Extents rebalanced proportionally to measured stage service times.
    ThroughputBalance,
    /// Stage imbalance exceeded the fusion threshold; switching to the
    /// fused pipeline alternative.
    ImbalanceFusion,
    /// A stage queue rose above its high watermark.
    QueueAboveHighWater,
    /// A stage queue fell below its low watermark.
    QueueBelowLowWater,
    /// Hill climber probing a neighbouring configuration.
    HillClimbProbe,
    /// The probed configuration beat the baseline; keeping it.
    KeepBetterMove,
    /// The probed configuration lost to the baseline; reverting.
    RevertWorseMove,
    /// The search converged; holding the current configuration.
    Converged,
    /// The power budget binds: capping or shedding parallelism.
    PowerCapBinding,
    /// Power headroom exists: growing within the budget.
    PowerHeadroomGrow,
    /// The power signal has not refreshed since the last decision;
    /// holding rather than acting on stale data.
    PowerSignalStale,
    /// Waiting out a settle tick after a reconfiguration.
    SettleWait,
    /// A static mechanism restoring its pinned configuration.
    Pinned,
    /// The admission gate is shedding offers; steering capacity toward
    /// goodput for the admitted requests rather than chasing an
    /// unserviceable backlog.
    AdmissionShedding,
    /// No clause fired; holding the current configuration.
    Hold,
}

impl Rationale {
    /// Every rationale code, for docs/tests cross-checks.
    pub const ALL: [Rationale; 19] = [
        Rationale::OccupancyLinear,
        Rationale::HysteresisPending,
        Rationale::ThresholdCrossed,
        Rationale::OracleLookup,
        Rationale::ThroughputBalance,
        Rationale::ImbalanceFusion,
        Rationale::QueueAboveHighWater,
        Rationale::QueueBelowLowWater,
        Rationale::HillClimbProbe,
        Rationale::KeepBetterMove,
        Rationale::RevertWorseMove,
        Rationale::Converged,
        Rationale::PowerCapBinding,
        Rationale::PowerHeadroomGrow,
        Rationale::PowerSignalStale,
        Rationale::SettleWait,
        Rationale::Pinned,
        Rationale::AdmissionShedding,
        Rationale::Hold,
    ];

    /// The stable code this rationale serializes under.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            Rationale::OccupancyLinear => "OccupancyLinear",
            Rationale::HysteresisPending => "HysteresisPending",
            Rationale::ThresholdCrossed => "ThresholdCrossed",
            Rationale::OracleLookup => "OracleLookup",
            Rationale::ThroughputBalance => "ThroughputBalance",
            Rationale::ImbalanceFusion => "ImbalanceFusion",
            Rationale::QueueAboveHighWater => "QueueAboveHighWater",
            Rationale::QueueBelowLowWater => "QueueBelowLowWater",
            Rationale::HillClimbProbe => "HillClimbProbe",
            Rationale::KeepBetterMove => "KeepBetterMove",
            Rationale::RevertWorseMove => "RevertWorseMove",
            Rationale::Converged => "Converged",
            Rationale::PowerCapBinding => "PowerCapBinding",
            Rationale::PowerHeadroomGrow => "PowerHeadroomGrow",
            Rationale::PowerSignalStale => "PowerSignalStale",
            Rationale::SettleWait => "SettleWait",
            Rationale::Pinned => "Pinned",
            Rationale::AdmissionShedding => "AdmissionShedding",
            Rationale::Hold => "Hold",
        }
    }

    /// Parses a stable code back into a rationale.
    #[must_use]
    pub fn from_code(code: &str) -> Option<Rationale> {
        Rationale::ALL.into_iter().find(|r| r.code() == code)
    }
}

impl std::fmt::Display for Rationale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// One candidate action a mechanism weighed before choosing.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionCandidate {
    /// Human-readable action label, e.g. `"width=6"` or
    /// `"grow 0.2 -> 5"`. Stable enough to grep, not a wire format.
    pub action: String,
    /// The mechanism's internal score for this candidate (higher is
    /// better unless the mechanism documents otherwise).
    pub score: f64,
    /// Predicted steady-state throughput (items/sec) under this
    /// candidate, or `None` when the mechanism has no model for it.
    pub predicted_throughput: Option<f64>,
}

impl DecisionCandidate {
    /// A candidate with an action label and score, no throughput model.
    #[must_use]
    pub fn new(action: impl Into<String>, score: f64) -> Self {
        DecisionCandidate {
            action: action.into(),
            score,
            predicted_throughput: None,
        }
    }

    /// Attaches a predicted throughput.
    #[must_use]
    pub fn predicting(mut self, throughput: f64) -> Self {
        self.predicted_throughput = Some(throughput);
        self
    }
}

/// A mechanism's account of its most recent `reconfigure` call.
///
/// Built by the mechanism from its real internal state and returned by
/// [`crate::Mechanism::explain`]. The executive attaches it to the
/// decision loop as a `DecisionTraced` trace event and scores
/// `predicted_throughput` against the realized throughput one epoch
/// later.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTrace {
    /// The dominant clause of the decision logic.
    pub rationale: Rationale,
    /// Named signals the mechanism actually read from the snapshot
    /// (occupancy, per-stage loads, power, ...), in read order.
    pub observed: Vec<(String, f64)>,
    /// The candidate actions weighed, with scores.
    pub candidates: Vec<DecisionCandidate>,
    /// Label of the chosen action (matches a candidate's `action` when
    /// candidates are listed; `"hold"` for no-change decisions).
    pub chosen: String,
    /// Predicted steady-state throughput (items/sec) under the chosen
    /// action, or `None` when unmodelled. This is the value the
    /// executive scores one epoch later.
    pub predicted_throughput: Option<f64>,
}

impl DecisionTrace {
    /// A trace with a rationale and chosen-action label; signals,
    /// candidates, and the prediction are filled in with the builders.
    #[must_use]
    pub fn new(rationale: Rationale, chosen: impl Into<String>) -> Self {
        DecisionTrace {
            rationale,
            observed: Vec::new(),
            candidates: Vec::new(),
            chosen: chosen.into(),
            predicted_throughput: None,
        }
    }

    /// Appends one observed signal.
    #[must_use]
    pub fn observing(mut self, signal: impl Into<String>, value: f64) -> Self {
        self.observed.push((signal.into(), value));
        self
    }

    /// Appends one weighed candidate.
    #[must_use]
    pub fn candidate(mut self, candidate: DecisionCandidate) -> Self {
        self.candidates.push(candidate);
        self
    }

    /// Sets the predicted throughput for the chosen action.
    #[must_use]
    pub fn predicting(mut self, throughput: f64) -> Self {
        self.predicted_throughput = Some(throughput);
        self
    }
}

/// The realized throughput a prediction is scored against: the
/// bottleneck (minimum) per-task throughput across tasks that actually
/// ran since the last reconfiguration.
///
/// In steady state every stage of a pipeline passes the same items, so
/// the minimum per-stage rate approximates the end-to-end rate — the
/// same quantity the balance mechanisms predict with the bottleneck law.
/// Returns `None` when no task has both invocations and a positive
/// measured throughput (nothing ran; there is nothing to score).
#[must_use]
pub fn realized_throughput(snap: &crate::metrics::MonitorSnapshot) -> Option<f64> {
    snap.tasks
        .values()
        .filter(|s| s.invocations > 0 && s.throughput > 0.0)
        .map(|s| s.throughput)
        .min_by(f64::total_cmp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{MonitorSnapshot, TaskStats};
    use crate::path::TaskPath;

    #[test]
    fn rationale_codes_round_trip_and_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for r in Rationale::ALL {
            assert!(seen.insert(r.code()), "duplicate code {}", r.code());
            assert_eq!(Rationale::from_code(r.code()), Some(r));
            assert!(r.code().chars().all(|c| c.is_ascii_alphanumeric()));
        }
        assert_eq!(Rationale::from_code("NotACode"), None);
    }

    #[test]
    fn builders_accumulate() {
        let trace = DecisionTrace::new(Rationale::OccupancyLinear, "width=6")
            .observing("queue_occupancy", 3.5)
            .candidate(DecisionCandidate::new("width=5", 0.5).predicting(40.0))
            .candidate(DecisionCandidate::new("width=6", 0.9).predicting(48.0))
            .predicting(48.0);
        assert_eq!(trace.observed.len(), 1);
        assert_eq!(trace.candidates.len(), 2);
        assert_eq!(trace.predicted_throughput, Some(48.0));
        assert_eq!(trace.candidates[1].predicted_throughput, Some(48.0));
    }

    #[test]
    fn realized_throughput_is_the_bottleneck_of_live_tasks() {
        let mut snap = MonitorSnapshot::at(1.0);
        assert_eq!(realized_throughput(&snap), None);
        for (i, (inv, tput)) in [(100, 8.0), (100, 5.0), (0, 1.0), (100, 0.0)]
            .into_iter()
            .enumerate()
        {
            snap.tasks.insert(
                TaskPath::root_child(0).child(u16::try_from(i).unwrap()),
                TaskStats {
                    invocations: inv,
                    throughput: tput,
                    ..TaskStats::default()
                },
            );
        }
        // Idle (0 invocations) and unmeasured (0 throughput) tasks are
        // excluded; the bottleneck of the live ones is 5.0.
        assert_eq!(realized_throughput(&snap), Some(5.0));
    }
}
