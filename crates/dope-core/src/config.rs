//! Parallelism configurations: the run-time choice DoPE optimizes.
//!
//! A [`Config`] assigns every task in the loop nest a *degree of
//! parallelism*: an extent (replicas for nested tasks, workers for leaf
//! tasks) and, for tasks that expose several inner descriptors, the chosen
//! alternative. The paper writes such configurations as
//! `<DoP_outer, DoP_inner> = <(3, DOALL), (8, PIPE)>`.

use crate::error::{Error, Result};
use crate::path::TaskPath;
use crate::shape::{ParKind, ProgramShape, ShapeNode};
use crate::spec::TaskKind;
use serde::{Deserialize, Serialize};

/// The chosen inner descriptor of a nested task, with child configurations.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NestConfig {
    /// Index of the chosen alternative descriptor.
    pub alternative: usize,
    /// Configuration of each task in the chosen descriptor.
    pub tasks: Vec<TaskConfig>,
}

/// Degree of parallelism assigned to one task.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TaskConfig {
    /// Task name; must match the shape during validation.
    pub name: String,
    /// Replicas (nested tasks) or concurrent workers (leaf tasks).
    pub extent: u32,
    /// Inner configuration for nested tasks; `None` for leaves.
    pub nested: Option<NestConfig>,
}

impl TaskConfig {
    /// Configuration of a leaf task with `extent` workers.
    #[must_use]
    pub fn leaf(name: impl Into<String>, extent: u32) -> Self {
        TaskConfig {
            name: name.into(),
            extent,
            nested: None,
        }
    }

    /// Configuration of a nested task: `extent` replicas, each running
    /// alternative `alternative` configured by `tasks`.
    #[must_use]
    pub fn nest(
        name: impl Into<String>,
        extent: u32,
        alternative: usize,
        tasks: Vec<TaskConfig>,
    ) -> Self {
        TaskConfig {
            name: name.into(),
            extent,
            nested: Some(NestConfig { alternative, tasks }),
        }
    }

    /// Threads this task (and its nest) occupies: extent for leaves,
    /// `extent x sum(children)` for nested tasks.
    #[must_use]
    pub fn threads(&self) -> u32 {
        match &self.nested {
            None => self.extent,
            Some(nest) => {
                let inner: u32 = nest.tasks.iter().map(TaskConfig::threads).sum();
                self.extent.saturating_mul(inner.max(1))
            }
        }
    }

    /// The parallelism kind label used in reports (`SEQ`/`DOALL`/`PIPE`).
    #[must_use]
    pub fn par_kind(&self) -> ParKind {
        match &self.nested {
            Some(nest) if nest.tasks.len() > 1 => ParKind::Pipe,
            Some(nest) => nest
                .tasks
                .first()
                .map_or(ParKind::Seq, TaskConfig::par_kind),
            None if self.extent > 1 => ParKind::DoAll,
            None => ParKind::Seq,
        }
    }

    fn fmt_into(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.nested {
            None => write!(f, "({}, {})", self.extent, self.par_kind()),
            Some(nest) => {
                write!(f, "({}, {} [", self.extent, self.par_kind())?;
                for (i, t) in nest.tasks.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{}:", t.name)?;
                    t.fmt_into(f)?;
                }
                f.write_str("])")
            }
        }
    }
}

impl std::fmt::Display for TaskConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.fmt_into(f)
    }
}

/// How two configurations differ, as computed by [`Config::diff`].
///
/// The distinction drives the runtime's two-tier reconfiguration
/// protocol: extent-only differences are candidates for a *delta*
/// reconfiguration (drain only the changed paths), while structural
/// differences always take the full-drain path of the paper protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigDiff {
    /// The configurations are equal.
    Identical,
    /// Same task tree (names, nesting, alternatives, arities), but the
    /// listed paths carry different extents. Depth-first order.
    Extents(Vec<TaskPath>),
    /// The task trees differ structurally: a name, nesting shape,
    /// chosen alternative, or level arity changed somewhere.
    Structural,
}

/// A complete parallelism configuration for a program.
///
/// # Example
///
/// ```
/// use dope_core::{Config, TaskConfig};
///
/// // Paper notation <(24, DOALL), (1, SEQ)>: 24 concurrent transcodes,
/// // each sequential inside.
/// let wide = Config::new(vec![TaskConfig::nest(
///     "transcode",
///     24,
///     0,
///     vec![TaskConfig::leaf("video", 1)],
/// )]);
/// assert_eq!(wide.total_threads(), 24);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Config {
    /// Configuration of each task in the root descriptor.
    pub tasks: Vec<TaskConfig>,
}

impl Config {
    /// Creates a configuration from root task configurations.
    #[must_use]
    pub fn new(tasks: Vec<TaskConfig>) -> Self {
        Config { tasks }
    }

    /// Total hardware threads the configuration occupies.
    #[must_use]
    pub fn total_threads(&self) -> u32 {
        self.tasks.iter().map(TaskConfig::threads).sum()
    }

    /// Resolves the task configuration at `path`.
    #[must_use]
    pub fn node(&self, path: &TaskPath) -> Option<&TaskConfig> {
        let mut indices = path.indices();
        let first = indices.next()?;
        let mut node = self.tasks.get(first as usize)?;
        for idx in indices {
            node = node.nested.as_ref()?.tasks.get(idx as usize)?;
        }
        Some(node)
    }

    /// Mutably resolves the task configuration at `path`.
    pub fn node_mut(&mut self, path: &TaskPath) -> Option<&mut TaskConfig> {
        let mut indices = path.indices();
        let first = indices.next()?;
        let mut node = self.tasks.get_mut(first as usize)?;
        for idx in indices {
            node = node.nested.as_mut()?.tasks.get_mut(idx as usize)?;
        }
        Some(node)
    }

    /// The extent assigned at `path`.
    #[must_use]
    pub fn extent_of(&self, path: &TaskPath) -> Option<u32> {
        self.node(path).map(|n| n.extent)
    }

    /// Sets the extent at `path`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownPath`] if `path` does not address a task and
    /// [`Error::ZeroExtent`] if `extent` is zero.
    pub fn set_extent(&mut self, path: &TaskPath, extent: u32) -> Result<()> {
        if extent == 0 {
            return Err(Error::ZeroExtent { path: path.clone() });
        }
        match self.node_mut(path) {
            Some(node) => {
                node.extent = extent;
                Ok(())
            }
            None => Err(Error::UnknownPath { path: path.clone() }),
        }
    }

    /// The parallelism kind label at `path`.
    #[must_use]
    pub fn kind_of(&self, path: &TaskPath) -> Option<ParKind> {
        self.node(path).map(TaskConfig::par_kind)
    }

    /// All `(path, config)` pairs in depth-first order.
    #[must_use]
    pub fn paths(&self) -> Vec<(TaskPath, &TaskConfig)> {
        fn walk<'a>(
            tasks: &'a [TaskConfig],
            prefix: &TaskPath,
            out: &mut Vec<(TaskPath, &'a TaskConfig)>,
        ) {
            for (i, t) in tasks.iter().enumerate() {
                let path = prefix.child(i as u16);
                out.push((path.clone(), t));
                if let Some(nest) = &t.nested {
                    walk(&nest.tasks, &path, out);
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.tasks, &TaskPath::root(), &mut out);
        out
    }

    /// Paths of all leaf tasks in depth-first order.
    #[must_use]
    pub fn leaf_paths(&self) -> Vec<TaskPath> {
        self.paths()
            .into_iter()
            .filter(|(_, c)| c.nested.is_none())
            .map(|(p, _)| p)
            .collect()
    }

    /// Compares this configuration against `other`.
    ///
    /// Returns [`ConfigDiff::Structural`] as soon as the task trees
    /// disagree on anything other than extents (names, nesting,
    /// alternatives, or level arity), otherwise the depth-first list of
    /// paths whose extents changed — or [`ConfigDiff::Identical`].
    #[must_use]
    pub fn diff(&self, other: &Config) -> ConfigDiff {
        fn walk(
            a: &[TaskConfig],
            b: &[TaskConfig],
            prefix: &TaskPath,
            out: &mut Vec<TaskPath>,
        ) -> bool {
            if a.len() != b.len() {
                return false;
            }
            for (i, (ta, tb)) in a.iter().zip(b).enumerate() {
                let path = prefix.child(i as u16);
                if ta.name != tb.name {
                    return false;
                }
                if ta.extent != tb.extent {
                    out.push(path.clone());
                }
                match (&ta.nested, &tb.nested) {
                    (None, None) => {}
                    (Some(na), Some(nb)) => {
                        if na.alternative != nb.alternative
                            || !walk(&na.tasks, &nb.tasks, &path, out)
                        {
                            return false;
                        }
                    }
                    _ => return false,
                }
            }
            true
        }
        let mut changed = Vec::new();
        if !walk(&self.tasks, &other.tasks, &TaskPath::root(), &mut changed) {
            return ConfigDiff::Structural;
        }
        if changed.is_empty() {
            ConfigDiff::Identical
        } else {
            ConfigDiff::Extents(changed)
        }
    }

    /// The changed-path set of a *delta-eligible* transition from this
    /// configuration to `other`, or `None` when the transition must take
    /// the full-drain path.
    ///
    /// A transition is delta-eligible when the diff is extents-only
    /// **and** every changed path is a top-level leaf task: nested
    /// replicas are instantiated as a unit (`TaskFactory::make_nest`),
    /// so changing anything inside a nest means rebuilding the replica —
    /// a full drain. Centralizing the rule here keeps the live executive
    /// and the simulator's trace observer agreeing on which epochs are
    /// partial.
    #[must_use]
    pub fn delta_paths(&self, other: &Config) -> Option<Vec<TaskPath>> {
        match self.diff(other) {
            ConfigDiff::Extents(changed) => {
                let top_level_leaf = |path: &TaskPath| {
                    path.depth() == 1
                        && self.node(path).is_some_and(|n| n.nested.is_none())
                        && other.node(path).is_some_and(|n| n.nested.is_none())
                };
                changed.iter().all(top_level_leaf).then_some(changed)
            }
            ConfigDiff::Identical | ConfigDiff::Structural => None,
        }
    }

    /// Validates the configuration against a program shape and a thread
    /// budget.
    ///
    /// # Errors
    ///
    /// * [`Error::ShapeMismatch`] — names, arities, or nesting differ;
    /// * [`Error::ZeroExtent`] — a task has extent zero;
    /// * [`Error::SequentialExtent`] — a `SEQ` task has extent above one;
    /// * [`Error::UnknownAlternative`] — a nest picks a missing descriptor;
    /// * [`Error::BudgetExceeded`] — total threads exceed `budget`.
    pub fn validate(&self, shape: &ProgramShape, budget: u32) -> Result<()> {
        validate_level(&self.tasks, &shape.tasks, &TaskPath::root())?;
        let required = self.total_threads();
        if required > budget {
            return Err(Error::BudgetExceeded {
                required,
                available: budget,
            });
        }
        Ok(())
    }

    /// The all-sequential configuration for a shape: every extent one,
    /// first alternatives.
    #[must_use]
    pub fn single_threaded(shape: &ProgramShape) -> Self {
        fn build(nodes: &[ShapeNode]) -> Vec<TaskConfig> {
            nodes
                .iter()
                .map(|n| {
                    if n.is_leaf() {
                        TaskConfig::leaf(n.name.clone(), 1)
                    } else {
                        TaskConfig::nest(n.name.clone(), 1, 0, build(&n.alternatives[0]))
                    }
                })
                .collect()
        }
        Config::new(build(&shape.tasks))
    }

    /// The paper's *Pthreads-Baseline* static distribution: one thread per
    /// sequential task, the remaining budget split evenly across parallel
    /// tasks ("a static even distribution of available hardware threads
    /// across all the parallel tasks after assigning a single thread to
    /// each sequential task", §8.2.2).
    ///
    /// Nested tasks keep extent one and distribute their budget inside.
    #[must_use]
    pub fn even(shape: &ProgramShape, threads: u32) -> Self {
        fn build(nodes: &[ShapeNode], budget: u32) -> Vec<TaskConfig> {
            let seq_count = nodes
                .iter()
                .filter(|n| n.is_leaf() && n.kind == TaskKind::Seq)
                .count() as u32;
            let par_count = (nodes.len() as u32).saturating_sub(seq_count).max(1);
            let spare = budget.saturating_sub(seq_count);
            let per_par = (spare / par_count).max(1);
            let mut extra = spare.saturating_sub(per_par * par_count);
            nodes
                .iter()
                .map(|n| {
                    if n.is_leaf() {
                        let extent = match n.kind {
                            TaskKind::Seq => 1,
                            TaskKind::Par => {
                                let mut e = per_par;
                                if extra > 0 {
                                    e += 1;
                                    extra -= 1;
                                }
                                n.max_extent.map_or(e, |m| e.min(m)).max(1)
                            }
                        };
                        TaskConfig::leaf(n.name.clone(), extent)
                    } else {
                        let share = if n.kind == TaskKind::Par {
                            let mut e = per_par;
                            if extra > 0 {
                                e += 1;
                                extra -= 1;
                            }
                            e
                        } else {
                            1
                        };
                        TaskConfig::nest(n.name.clone(), 1, 0, build(&n.alternatives[0], share))
                    }
                })
                .collect()
        }
        Config::new(build(&shape.tasks, threads.max(1)))
    }
}

fn validate_level(tasks: &[TaskConfig], nodes: &[ShapeNode], prefix: &TaskPath) -> Result<()> {
    if tasks.len() != nodes.len() {
        return Err(Error::ShapeMismatch {
            path: prefix.clone(),
            detail: format!(
                "descriptor has {} tasks but configuration has {}",
                nodes.len(),
                tasks.len()
            ),
        });
    }
    for (i, (task, node)) in tasks.iter().zip(nodes).enumerate() {
        let path = prefix.child(i as u16);
        if task.name != node.name {
            return Err(Error::ShapeMismatch {
                path,
                detail: format!("expected task `{}`, found `{}`", node.name, task.name),
            });
        }
        if task.extent == 0 {
            return Err(Error::ZeroExtent { path });
        }
        if node.kind == TaskKind::Seq && task.extent > 1 {
            return Err(Error::SequentialExtent {
                path,
                extent: task.extent,
            });
        }
        if let Some(max) = node.max_extent {
            if task.extent > max {
                return Err(Error::ShapeMismatch {
                    path,
                    detail: format!("extent {} exceeds declared cap {max}", task.extent),
                });
            }
        }
        match (&task.nested, node.is_leaf()) {
            (None, true) => {}
            (Some(nest), false) => {
                let Some(alt) = node.alternatives.get(nest.alternative) else {
                    return Err(Error::UnknownAlternative {
                        path,
                        requested: nest.alternative,
                        available: node.alternatives.len(),
                    });
                };
                validate_level(&nest.tasks, alt, &path)?;
            }
            (Some(_), true) => {
                return Err(Error::ShapeMismatch {
                    path,
                    detail: "configuration nests a leaf task".to_string(),
                });
            }
            (None, false) => {
                return Err(Error::ShapeMismatch {
                    path,
                    detail: "configuration treats a nested task as a leaf".to_string(),
                });
            }
        }
    }
    Ok(())
}

impl std::fmt::Display for Config {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("<")?;
        for (i, t) in self.tasks.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{}:", t.name)?;
            t.fmt_into(f)?;
        }
        f.write_str(">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transcode_shape() -> ProgramShape {
        ProgramShape::new(vec![ShapeNode::nest(
            "transcode",
            TaskKind::Par,
            vec![
                ShapeNode::leaf("read", TaskKind::Seq),
                ShapeNode::leaf("transform", TaskKind::Par).with_max_extent(16),
                ShapeNode::leaf("write", TaskKind::Seq),
            ],
        )])
    }

    fn transcode_config(outer: u32, transform: u32) -> Config {
        Config::new(vec![TaskConfig::nest(
            "transcode",
            outer,
            0,
            vec![
                TaskConfig::leaf("read", 1),
                TaskConfig::leaf("transform", transform),
                TaskConfig::leaf("write", 1),
            ],
        )])
    }

    #[test]
    fn thread_accounting_multiplies_replicas() {
        let config = transcode_config(3, 6);
        assert_eq!(config.total_threads(), 3 * (1 + 6 + 1));
    }

    #[test]
    fn node_resolution_and_extent_edit() {
        let mut config = transcode_config(2, 4);
        let path: TaskPath = "0.1".parse().unwrap();
        assert_eq!(config.extent_of(&path), Some(4));
        config.set_extent(&path, 8).unwrap();
        assert_eq!(config.extent_of(&path), Some(8));
        assert_eq!(config.total_threads(), 2 * 10);
    }

    #[test]
    fn set_extent_rejects_zero_and_unknown() {
        let mut config = transcode_config(1, 1);
        let path: TaskPath = "0.1".parse().unwrap();
        assert!(matches!(
            config.set_extent(&path, 0),
            Err(Error::ZeroExtent { .. })
        ));
        let ghost: TaskPath = "0.9".parse().unwrap();
        assert!(matches!(
            config.set_extent(&ghost, 2),
            Err(Error::UnknownPath { .. })
        ));
    }

    #[test]
    fn par_kind_classification() {
        let config = transcode_config(3, 6);
        assert_eq!(config.kind_of(&"0".parse().unwrap()), Some(ParKind::Pipe));
        assert_eq!(config.kind_of(&"0.0".parse().unwrap()), Some(ParKind::Seq));
        assert_eq!(
            config.kind_of(&"0.1".parse().unwrap()),
            Some(ParKind::DoAll)
        );
    }

    #[test]
    fn validate_accepts_good_config() {
        let shape = transcode_shape();
        transcode_config(3, 6).validate(&shape, 24).unwrap();
    }

    #[test]
    fn validate_rejects_budget_overrun() {
        let shape = transcode_shape();
        let err = transcode_config(4, 8).validate(&shape, 24).unwrap_err();
        assert!(matches!(
            err,
            Error::BudgetExceeded {
                required: 40,
                available: 24
            }
        ));
    }

    #[test]
    fn validate_rejects_parallel_sequential_task() {
        let shape = transcode_shape();
        let config = Config::new(vec![TaskConfig::nest(
            "transcode",
            1,
            0,
            vec![
                TaskConfig::leaf("read", 2),
                TaskConfig::leaf("transform", 1),
                TaskConfig::leaf("write", 1),
            ],
        )]);
        assert!(matches!(
            config.validate(&shape, 24),
            Err(Error::SequentialExtent { extent: 2, .. })
        ));
    }

    #[test]
    fn validate_rejects_wrong_name() {
        let shape = transcode_shape();
        let mut config = transcode_config(1, 1);
        config.tasks[0].name = "transmogrify".into();
        assert!(matches!(
            config.validate(&shape, 24),
            Err(Error::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn validate_rejects_extent_above_cap() {
        let shape = transcode_shape();
        let config = transcode_config(1, 17);
        assert!(matches!(
            config.validate(&shape, 64),
            Err(Error::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn validate_rejects_missing_alternative() {
        let shape = transcode_shape();
        let mut config = transcode_config(1, 1);
        config.tasks[0].nested.as_mut().unwrap().alternative = 3;
        assert!(matches!(
            config.validate(&shape, 24),
            Err(Error::UnknownAlternative { requested: 3, .. })
        ));
    }

    #[test]
    fn single_threaded_uses_one_everywhere() {
        let shape = transcode_shape();
        let config = Config::single_threaded(&shape);
        assert_eq!(config.total_threads(), 3);
        config.validate(&shape, 3).unwrap();
    }

    #[test]
    fn even_distribution_respects_seq_tasks() {
        let shape = ProgramShape::new(vec![
            ShapeNode::leaf("load", TaskKind::Seq),
            ShapeNode::leaf("seg", TaskKind::Par),
            ShapeNode::leaf("extract", TaskKind::Par),
            ShapeNode::leaf("out", TaskKind::Seq),
        ]);
        let config = Config::even(&shape, 24);
        assert_eq!(config.extent_of(&"0".parse().unwrap()), Some(1));
        assert_eq!(config.extent_of(&"3".parse().unwrap()), Some(1));
        let seg = config.extent_of(&"1".parse().unwrap()).unwrap();
        let extract = config.extent_of(&"2".parse().unwrap()).unwrap();
        assert_eq!(seg + extract, 22);
        assert!(seg.abs_diff(extract) <= 1);
        config.validate(&shape, 24).unwrap();
    }

    #[test]
    fn paths_enumerates_depth_first() {
        let config = transcode_config(1, 1);
        let paths: Vec<String> = config.paths().iter().map(|(p, _)| p.to_string()).collect();
        assert_eq!(paths, vec!["0", "0.0", "0.1", "0.2"]);
        let leaves: Vec<String> = config.leaf_paths().iter().map(|p| p.to_string()).collect();
        assert_eq!(leaves, vec!["0.0", "0.1", "0.2"]);
    }

    #[test]
    fn diff_identical_configs() {
        let a = transcode_config(2, 4);
        assert_eq!(a.diff(&a.clone()), ConfigDiff::Identical);
        assert_eq!(a.delta_paths(&a.clone()), None);
    }

    #[test]
    fn diff_reports_changed_extent_paths_depth_first() {
        let a = transcode_config(2, 4);
        let mut b = a.clone();
        b.set_extent(&"0".parse().unwrap(), 3).unwrap();
        b.set_extent(&"0.1".parse().unwrap(), 8).unwrap();
        let ConfigDiff::Extents(paths) = a.diff(&b) else {
            panic!("extents-only change misclassified");
        };
        let paths: Vec<String> = paths.iter().map(ToString::to_string).collect();
        assert_eq!(paths, vec!["0", "0.1"]);
    }

    #[test]
    fn diff_flags_structural_changes() {
        let a = transcode_config(1, 1);
        let mut renamed = a.clone();
        renamed.tasks[0].name = "transmogrify".into();
        assert_eq!(a.diff(&renamed), ConfigDiff::Structural);

        let mut realt = a.clone();
        realt.tasks[0].nested.as_mut().unwrap().alternative = 1;
        assert_eq!(a.diff(&realt), ConfigDiff::Structural);

        let mut fewer = a.clone();
        fewer.tasks[0].nested.as_mut().unwrap().tasks.pop();
        assert_eq!(a.diff(&fewer), ConfigDiff::Structural);

        let flat = Config::new(vec![TaskConfig::leaf("transcode", 1)]);
        assert_eq!(a.diff(&flat), ConfigDiff::Structural);
    }

    #[test]
    fn delta_paths_accepts_only_top_level_leaf_changes() {
        // Flat pipeline of top-level leaves: any extent nudge is a delta.
        let flat = Config::new(vec![
            TaskConfig::leaf("read", 1),
            TaskConfig::leaf("work", 4),
            TaskConfig::leaf("write", 1),
        ]);
        let mut widened = flat.clone();
        widened.set_extent(&"1".parse().unwrap(), 6).unwrap();
        let delta = flat.delta_paths(&widened).expect("top-level leaf change");
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].to_string(), "1");

        // The same extent change inside a nest is not delta-eligible:
        // nested replicas relaunch as a unit.
        let nested = transcode_config(2, 4);
        let mut inner = nested.clone();
        inner.set_extent(&"0.1".parse().unwrap(), 8).unwrap();
        assert_eq!(
            nested.diff(&inner),
            ConfigDiff::Extents(vec!["0.1".parse().unwrap()])
        );
        assert_eq!(nested.delta_paths(&inner), None);

        // Nor is changing a top-level *nest*'s replica count.
        let mut outer = nested.clone();
        outer.set_extent(&"0".parse().unwrap(), 3).unwrap();
        assert_eq!(nested.delta_paths(&outer), None);

        // Structural changes never qualify.
        assert_eq!(flat.delta_paths(&nested), None);
    }

    #[test]
    fn display_mentions_kinds_and_extents() {
        let config = transcode_config(3, 6);
        let s = config.to_string();
        assert!(s.contains("3"), "{s}");
        assert!(s.contains("PIPE"), "{s}");
        assert!(s.contains("DOALL"), "{s}");
    }
}
