//! Core types of the DoPE API.
//!
//! DoPE (the *Degree of Parallelism Executive*, Raman et al., PLDI 2011)
//! separates the concern of **exposing** parallelism from the concern of
//! **optimizing** it. This crate defines the vocabulary shared by the three
//! agents the paper identifies:
//!
//! * the **application developer** declares the parallelism structure of a
//!   program once, as a tree of [`TaskSpec`]s whose behaviour is given by
//!   [`TaskBody`] implementations (the paper's *functors*);
//! * the **mechanism developer** implements [`Mechanism`]s that map a
//!   [`MonitorSnapshot`] of run-time facts to a new parallelism
//!   [`Config`]uration;
//! * the **administrator** states a performance [`Goal`] together with
//!   [`Resources`] constraints (threads, watts).
//!
//! The actual executors live elsewhere: `dope-runtime` runs task trees on a
//! real thread pool, while `dope-sim` replays the same mechanisms inside a
//! discrete-event model of a larger machine. Both speak the types defined
//! here, so a mechanism cannot tell which world it is driving.
//!
//! # Example
//!
//! Declaring the two-level video-transcoding loop nest from the paper's
//! running example (outer loop over videos, inner three-stage pipeline):
//!
//! ```
//! use dope_core::{Config, ParKind, TaskConfig};
//!
//! // <DoP_outer, DoP_inner> = <(3, DOALL), (8, PIPE)>: three concurrent
//! // transcodes, each an 8-thread pipeline (1 read + 6 transform + 1 write).
//! let config = Config::new(vec![TaskConfig::nest(
//!     "transcode",
//!     3,
//!     0,
//!     vec![
//!         TaskConfig::leaf("read", 1),
//!         TaskConfig::leaf("transform", 6),
//!         TaskConfig::leaf("write", 1),
//!     ],
//! )]);
//! assert_eq!(config.total_threads(), 24);
//! assert_eq!(config.kind_of(&"0".parse().unwrap()), Some(ParKind::Pipe));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admission;
pub mod config;
pub mod decision;
pub mod diag;
pub mod error;
pub mod ewma;
pub mod failure;
pub mod goal;
pub mod json;
pub mod mechanism;
pub mod metrics;
pub mod nest;
pub mod path;
pub mod shape;
pub mod spec;
pub mod status;
pub mod task;

pub use admission::{AdmissionPolicy, AdmissionStats};
pub use config::{Config, ConfigDiff, NestConfig, TaskConfig};
pub use decision::{realized_throughput, DecisionCandidate, DecisionTrace, Rationale};
pub use diag::{DiagCode, Diagnostic, Severity};
pub use error::{Error, Result};
pub use ewma::Ewma;
pub use failure::{FailurePolicy, FailureVerdict, TaskOutcome};
pub use goal::Goal;
pub use mechanism::{Mechanism, Resources, StaticMechanism};
pub use metrics::{MonitorSnapshot, QueueStats, TaskStats};
pub use path::TaskPath;
pub use shape::{ParKind, ProgramShape, ShapeNode};
pub use spec::{BodyFactory, NestFactory, TaskKind, TaskSpec, Work, WorkerSlot};
pub use status::{Directive, TaskStatus};
pub use task::{body_fn, FnBody, TaskBody, TaskCx};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::{
        body_fn, AdmissionPolicy, AdmissionStats, Config, DecisionTrace, Directive, FailurePolicy,
        FailureVerdict, Goal, Mechanism, MonitorSnapshot, ParKind, ProgramShape, Rationale,
        Resources, ShapeNode, TaskBody, TaskConfig, TaskCx, TaskKind, TaskOutcome, TaskPath,
        TaskSpec, TaskStats, TaskStatus, Work, WorkerSlot,
    };
}
