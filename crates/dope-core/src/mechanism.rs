//! The mechanism interface: how parallelism gets adapted.
//!
//! A *mechanism* is "an optimization routine that takes an objective
//! function ..., a set of constraints ..., and determines the optimal
//! parallelism configuration" (paper §4). Every mechanism implements
//! [`Mechanism::reconfigure`], the Rust rendering of the paper's
//! `Mechanism::reconfigureParallelism(pd, nthreads)` (Figure 10).

use crate::config::Config;
use crate::decision::{DecisionTrace, Rationale};
use crate::metrics::MonitorSnapshot;
use crate::shape::ProgramShape;

/// The administrator's resource constraints handed to a mechanism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Resources {
    /// Maximum hardware threads the configuration may occupy.
    pub threads: u32,
    /// Power budget in watts, if the goal constrains power.
    pub power_budget_watts: Option<f64>,
    /// Peak power the platform can draw, if known (lets controllers express
    /// budgets as a fraction of peak).
    pub peak_power_watts: Option<f64>,
}

impl Resources {
    /// Constraints with a thread budget only.
    #[must_use]
    pub fn threads(threads: u32) -> Self {
        Resources {
            threads,
            power_budget_watts: None,
            peak_power_watts: None,
        }
    }

    /// Adds a power budget.
    #[must_use]
    pub fn with_power_budget(mut self, watts: f64) -> Self {
        self.power_budget_watts = Some(watts);
        self
    }

    /// Adds the platform's peak power.
    #[must_use]
    pub fn with_peak_power(mut self, watts: f64) -> Self {
        self.peak_power_watts = Some(watts);
        self
    }
}

/// Logic that adapts a parallelism configuration to meet a performance
/// goal.
///
/// Mechanisms are driven identically by the live executive
/// (`dope-runtime`) and by the evaluation simulator (`dope-sim`); they see
/// only monitoring snapshots and configurations and cannot observe which
/// world they run in.
///
/// # Example
///
/// A mechanism that pins everything to one thread:
///
/// ```
/// use dope_core::{Config, Mechanism, MonitorSnapshot, ProgramShape, Resources};
///
/// #[derive(Debug)]
/// struct AllSequential;
///
/// impl Mechanism for AllSequential {
///     fn name(&self) -> &'static str {
///         "all-sequential"
///     }
///
///     fn reconfigure(
///         &mut self,
///         _snap: &MonitorSnapshot,
///         current: &Config,
///         shape: &ProgramShape,
///         _res: &Resources,
///     ) -> Option<Config> {
///         let sequential = Config::single_threaded(shape);
///         (sequential != *current).then_some(sequential)
///     }
/// }
/// ```
pub trait Mechanism: Send {
    /// A short identifier for reports (e.g. `"WQT-H"`, `"TBF"`).
    fn name(&self) -> &'static str;

    /// Proposes a new configuration, or `None` to keep the current one.
    ///
    /// Implementations must return configurations that validate against
    /// `shape` within `res.threads`; the executive rejects (and logs)
    /// configurations that do not.
    fn reconfigure(
        &mut self,
        snap: &MonitorSnapshot,
        current: &Config,
        shape: &ProgramShape,
        res: &Resources,
    ) -> Option<Config>;

    /// Called by the executive when a proposed configuration has been
    /// applied (after the suspend/relaunch protocol completed).
    ///
    /// Stateful mechanisms (hill climbers, controllers) use this to commit
    /// their search state.
    fn applied(&mut self, config: &Config) {
        let _ = config;
    }

    /// The initial configuration the mechanism wants to start from, or
    /// `None` to accept the executive's default (an even static split).
    fn initial(&mut self, shape: &ProgramShape, res: &Resources) -> Option<Config> {
        let _ = (shape, res);
        None
    }

    /// The mechanism's account of its most recent [`reconfigure`]
    /// call — what it observed, what candidates it weighed, what it
    /// chose and why (see [`DecisionTrace`]).
    ///
    /// The default returns `None` (no audit trail). Mechanisms that
    /// implement it rebuild the trace on every `reconfigure` call,
    /// including "hold" decisions where no configuration was proposed;
    /// the executive records whatever this returns as a `DecisionTraced`
    /// trace event and scores `predicted_throughput` one epoch later.
    ///
    /// [`reconfigure`]: Mechanism::reconfigure
    fn explain(&self) -> Option<DecisionTrace> {
        None
    }
}

/// A mechanism that never reconfigures: a fixed static parallelization.
///
/// Used for the paper's static baselines (`Pthreads-Baseline`, static
/// `<DoP_outer, DoP_inner>` points).
///
/// # Example
///
/// ```
/// use dope_core::{Config, StaticMechanism, TaskConfig};
///
/// let config = Config::new(vec![TaskConfig::leaf("stage", 4)]);
/// let mech = StaticMechanism::new(config);
/// assert_eq!(dope_core::Mechanism::name(&mech), "Static");
/// ```
#[derive(Debug, Clone)]
pub struct StaticMechanism {
    config: Config,
    name: &'static str,
    last_decision: Option<DecisionTrace>,
}

impl StaticMechanism {
    /// A static mechanism pinned to `config`.
    #[must_use]
    pub fn new(config: Config) -> Self {
        StaticMechanism {
            config,
            name: "Static",
            last_decision: None,
        }
    }

    /// Overrides the reported name (e.g. `"Pthreads-Baseline"`).
    #[must_use]
    pub fn named(mut self, name: &'static str) -> Self {
        self.name = name;
        self
    }

    /// The pinned configuration.
    #[must_use]
    pub fn config(&self) -> &Config {
        &self.config
    }
}

impl Mechanism for StaticMechanism {
    fn name(&self) -> &'static str {
        self.name
    }

    fn reconfigure(
        &mut self,
        _snap: &MonitorSnapshot,
        current: &Config,
        _shape: &ProgramShape,
        _res: &Resources,
    ) -> Option<Config> {
        let drifted = *current != self.config;
        let chosen = if drifted { "restore-pinned" } else { "hold" };
        self.last_decision = Some(
            DecisionTrace::new(Rationale::Pinned, chosen)
                .observing("pinned_threads", f64::from(self.config.total_threads())),
        );
        drifted.then(|| self.config.clone())
    }

    fn initial(&mut self, _shape: &ProgramShape, _res: &Resources) -> Option<Config> {
        Some(self.config.clone())
    }

    fn explain(&self) -> Option<DecisionTrace> {
        self.last_decision.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TaskConfig;

    #[test]
    fn static_mechanism_proposes_only_changes() {
        let pinned = Config::new(vec![TaskConfig::leaf("t", 4)]);
        let mut mech = StaticMechanism::new(pinned.clone());
        let shape = ProgramShape::new(vec![]);
        let res = Resources::threads(8);
        let snap = MonitorSnapshot::at(0.0);

        let other = Config::new(vec![TaskConfig::leaf("t", 2)]);
        assert_eq!(
            mech.reconfigure(&snap, &other, &shape, &res),
            Some(pinned.clone())
        );
        assert_eq!(mech.reconfigure(&snap, &pinned, &shape, &res), None);
        assert_eq!(mech.initial(&shape, &res), Some(pinned));
    }

    #[test]
    fn resources_builders() {
        let res = Resources::threads(24)
            .with_power_budget(600.0)
            .with_peak_power(700.0);
        assert_eq!(res.threads, 24);
        assert_eq!(res.power_budget_watts, Some(600.0));
        assert_eq!(res.peak_power_watts, Some(700.0));
    }

    #[test]
    fn named_mechanism_reports_alias() {
        let mech = StaticMechanism::new(Config::default()).named("Pthreads-Baseline");
        assert_eq!(mech.name(), "Pthreads-Baseline");
    }

    #[test]
    fn mechanism_is_object_safe() {
        let mech: Box<dyn Mechanism> = Box::new(StaticMechanism::new(Config::default()));
        assert_eq!(mech.name(), "Static");
        // The default explain() hook is callable through the vtable.
        assert_eq!(mech.explain(), None);
    }

    #[test]
    fn static_mechanism_explains_both_hold_and_restore() {
        let pinned = Config::new(vec![TaskConfig::leaf("t", 4)]);
        let mut mech = StaticMechanism::new(pinned.clone());
        let shape = ProgramShape::new(vec![]);
        let res = Resources::threads(8);
        let snap = MonitorSnapshot::at(0.0);

        assert_eq!(mech.explain(), None, "no decision before reconfigure");
        let other = Config::new(vec![TaskConfig::leaf("t", 2)]);
        mech.reconfigure(&snap, &other, &shape, &res);
        let trace = mech.explain().expect("restore decision is explained");
        assert_eq!(trace.rationale, Rationale::Pinned);
        assert_eq!(trace.chosen, "restore-pinned");

        mech.reconfigure(&snap, &pinned, &shape, &res);
        let trace = mech.explain().expect("hold decision is explained");
        assert_eq!(trace.chosen, "hold");
    }
}
