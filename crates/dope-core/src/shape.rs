//! Structural view of a program's parallelism, used by mechanisms.
//!
//! Mechanisms must reason about the loop nest (which tasks exist, which are
//! parallel, what alternatives a nest offers) without instantiating bodies.
//! [`ProgramShape`] is that structural view, derived once from the
//! application's [`TaskSpec`] tree.

use crate::path::TaskPath;
use crate::spec::{TaskKind, TaskSpec, Work};
use serde::{Deserialize, Serialize};

/// How a configured task exploits parallelism, for reporting.
///
/// The paper writes configurations as `<(24, DOALL), (1, SEQ)>` or
/// `(8, PIPE)`; this enum provides those labels. The classification is
/// structural: a parallel leaf is DOALL, a nest with more than one child is
/// a pipeline, and anything with extent 1 and no parallel inner structure
/// is sequential.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParKind {
    /// Sequential execution.
    Seq,
    /// Data-parallel execution of independent iterations.
    DoAll,
    /// Pipeline-parallel execution of interacting stages.
    Pipe,
}

impl std::fmt::Display for ParKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ParKind::Seq => "SEQ",
            ParKind::DoAll => "DOALL",
            ParKind::Pipe => "PIPE",
        })
    }
}

/// Structural description of one task in the loop nest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShapeNode {
    /// Task name, unique within its descriptor.
    pub name: String,
    /// Whether the task may run with extent greater than one.
    pub kind: TaskKind,
    /// Cap on the extent a mechanism may assign, if declared.
    pub max_extent: Option<u32>,
    /// Alternative inner descriptors; empty for leaf tasks.
    pub alternatives: Vec<Vec<ShapeNode>>,
}

impl ShapeNode {
    /// A leaf node (no nested parallelism).
    #[must_use]
    pub fn leaf(name: impl Into<String>, kind: TaskKind) -> Self {
        ShapeNode {
            name: name.into(),
            kind,
            max_extent: None,
            alternatives: Vec::new(),
        }
    }

    /// A node with one nested descriptor.
    #[must_use]
    pub fn nest(name: impl Into<String>, kind: TaskKind, children: Vec<ShapeNode>) -> Self {
        ShapeNode {
            name: name.into(),
            kind,
            max_extent: None,
            alternatives: vec![children],
        }
    }

    /// Sets the extent cap.
    #[must_use]
    pub fn with_max_extent(mut self, max_extent: u32) -> Self {
        self.max_extent = Some(max_extent.max(1));
        self
    }

    /// `true` if the node has no nested descriptors.
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        self.alternatives.is_empty()
    }

    /// Derives the structural node of a [`TaskSpec`].
    ///
    /// Nested descriptors are instantiated once (replica 0) to observe
    /// their structure; per-replica instantiations at run time must match.
    #[must_use]
    pub fn of_spec(spec: &TaskSpec) -> Self {
        let alternatives = match spec.work() {
            Work::Leaf(_) => Vec::new(),
            Work::Nest(alts) => alts
                .iter()
                .map(|alt| alt.make_nest(0).iter().map(ShapeNode::of_spec).collect())
                .collect(),
        };
        ShapeNode {
            name: spec.name().to_string(),
            kind: spec.kind(),
            max_extent: spec.max_extent(),
            alternatives,
        }
    }
}

/// Structural description of the whole program: the root descriptor.
///
/// # Example
///
/// ```
/// use dope_core::{ProgramShape, ShapeNode, TaskKind};
///
/// let shape = ProgramShape::new(vec![ShapeNode::nest(
///     "transcode",
///     TaskKind::Par,
///     vec![
///         ShapeNode::leaf("read", TaskKind::Seq),
///         ShapeNode::leaf("transform", TaskKind::Par),
///         ShapeNode::leaf("write", TaskKind::Seq),
///     ],
/// )]);
/// let transform = shape.node(&"0.1".parse().unwrap()).unwrap();
/// assert_eq!(transform.name, "transform");
/// assert_eq!(shape.leaf_paths().len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgramShape {
    /// The tasks of the root parallelism descriptor.
    pub tasks: Vec<ShapeNode>,
}

impl ProgramShape {
    /// Creates a shape from root-descriptor nodes.
    #[must_use]
    pub fn new(tasks: Vec<ShapeNode>) -> Self {
        ProgramShape { tasks }
    }

    /// Derives the shape of a root descriptor of [`TaskSpec`]s.
    #[must_use]
    pub fn of_specs(specs: &[TaskSpec]) -> Self {
        ProgramShape {
            tasks: specs.iter().map(ShapeNode::of_spec).collect(),
        }
    }

    /// Resolves the node at `path`, following *first* alternatives.
    ///
    /// Mechanisms that choose non-default alternatives should resolve
    /// against the [`Config`](crate::Config) instead; this accessor is for
    /// structural queries that do not depend on the chosen alternative.
    #[must_use]
    pub fn node(&self, path: &TaskPath) -> Option<&ShapeNode> {
        self.node_in_alt(path, &|_| 0)
    }

    /// Resolves the node at `path`, with `alt_of(path)` supplying the
    /// chosen alternative for every nest node along the way.
    #[must_use]
    pub fn node_in_alt(
        &self,
        path: &TaskPath,
        alt_of: &dyn Fn(&TaskPath) -> usize,
    ) -> Option<&ShapeNode> {
        let mut indices = path.indices();
        let first = indices.next()?;
        let mut node = self.tasks.get(first as usize)?;
        let mut prefix = TaskPath::root_child(first);
        for idx in indices {
            let alt = alt_of(&prefix);
            node = node.alternatives.get(alt)?.get(idx as usize)?;
            prefix = prefix.child(idx);
        }
        Some(node)
    }

    /// Paths of all leaf tasks, following first alternatives, in
    /// depth-first order.
    #[must_use]
    pub fn leaf_paths(&self) -> Vec<TaskPath> {
        fn walk(nodes: &[ShapeNode], prefix: &TaskPath, out: &mut Vec<TaskPath>) {
            for (i, node) in nodes.iter().enumerate() {
                let path = prefix.child(i as u16);
                if node.is_leaf() {
                    out.push(path);
                } else {
                    walk(&node.alternatives[0], &path, out);
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.tasks, &TaskPath::root(), &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkerSlot;
    use crate::status::TaskStatus;
    use crate::task::{body_fn, TaskBody};

    fn pipeline_shape() -> ProgramShape {
        ProgramShape::new(vec![ShapeNode::nest(
            "outer",
            TaskKind::Par,
            vec![
                ShapeNode::leaf("read", TaskKind::Seq),
                ShapeNode::leaf("transform", TaskKind::Par).with_max_extent(8),
                ShapeNode::leaf("write", TaskKind::Seq),
            ],
        )])
    }

    #[test]
    fn node_resolution() {
        let shape = pipeline_shape();
        assert_eq!(shape.node(&"0".parse().unwrap()).unwrap().name, "outer");
        assert_eq!(shape.node(&"0.0".parse().unwrap()).unwrap().name, "read");
        assert_eq!(
            shape.node(&"0.1".parse().unwrap()).unwrap().max_extent,
            Some(8)
        );
        assert!(shape.node(&"0.3".parse().unwrap()).is_none());
        assert!(shape.node(&"1".parse().unwrap()).is_none());
    }

    #[test]
    fn leaf_paths_are_depth_first() {
        let shape = pipeline_shape();
        let paths: Vec<String> = shape.leaf_paths().iter().map(|p| p.to_string()).collect();
        assert_eq!(paths, vec!["0.0", "0.1", "0.2"]);
    }

    #[test]
    fn shape_of_specs_matches_structure() {
        let spec = TaskSpec::nest("outer", TaskKind::Par, |_replica: u32| {
            vec![TaskSpec::leaf("stage", TaskKind::Par, |_s: WorkerSlot| {
                Box::new(body_fn(|_| TaskStatus::Finished)) as Box<dyn TaskBody>
            })
            .with_max_extent(4)]
        });
        let shape = ProgramShape::of_specs(&[spec]);
        assert_eq!(shape.tasks.len(), 1);
        assert_eq!(shape.tasks[0].alternatives.len(), 1);
        let inner = &shape.tasks[0].alternatives[0][0];
        assert_eq!(inner.name, "stage");
        assert_eq!(inner.max_extent, Some(4));
    }

    #[test]
    fn parkind_display() {
        assert_eq!(ParKind::Seq.to_string(), "SEQ");
        assert_eq!(ParKind::DoAll.to_string(), "DOALL");
        assert_eq!(ParKind::Pipe.to_string(), "PIPE");
    }

    #[test]
    fn node_in_alt_follows_choice() {
        let shape = ProgramShape::new(vec![ShapeNode {
            name: "outer".into(),
            kind: TaskKind::Par,
            max_extent: None,
            alternatives: vec![
                vec![ShapeNode::leaf("split", TaskKind::Par)],
                vec![ShapeNode::leaf("fused", TaskKind::Par)],
            ],
        }]);
        let p: TaskPath = "0.0".parse().unwrap();
        let in_alt1 = shape.node_in_alt(&p, &|_| 1).unwrap();
        assert_eq!(in_alt1.name, "fused");
        let in_alt0 = shape.node_in_alt(&p, &|_| 0).unwrap();
        assert_eq!(in_alt0.name, "split");
    }
}
