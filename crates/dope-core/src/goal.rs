//! Performance goals the administrator specifies.

use serde::{Deserialize, Serialize};

/// A performance goal: an objective plus resource constraints (paper §4).
///
/// The administrator states the goal; DoPE picks a default mechanism for it
/// (`dope_mechanisms::for_goal`) and drives the application to meet it —
/// "a human need not select a particular mechanism to use from among many"
/// (§7).
///
/// # Example
///
/// ```
/// use dope_core::Goal;
///
/// let goal = Goal::MaxThroughputUnderPower {
///     threads: 24,
///     watts: 600.0,
/// };
/// assert_eq!(goal.threads(), 24);
/// assert_eq!(goal.power_budget_watts(), Some(600.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Goal {
    /// Minimize the average response time of user requests with at most
    /// `threads` hardware threads (paper §7.1).
    MinResponseTime {
        /// Hardware-thread budget.
        threads: u32,
    },
    /// Maximize application throughput with at most `threads` hardware
    /// threads (paper §7.2).
    MaxThroughput {
        /// Hardware-thread budget.
        threads: u32,
    },
    /// Maximize throughput with at most `threads` hardware threads while
    /// keeping system power at or below `watts` (paper §7.3).
    MaxThroughputUnderPower {
        /// Hardware-thread budget.
        threads: u32,
        /// Peak system power target, in watts.
        watts: f64,
    },
}

impl Goal {
    /// The hardware-thread budget of the goal.
    #[must_use]
    pub fn threads(&self) -> u32 {
        match *self {
            Goal::MinResponseTime { threads }
            | Goal::MaxThroughput { threads }
            | Goal::MaxThroughputUnderPower { threads, .. } => threads,
        }
    }

    /// The power budget, if the goal constrains power.
    #[must_use]
    pub fn power_budget_watts(&self) -> Option<f64> {
        match *self {
            Goal::MaxThroughputUnderPower { watts, .. } => Some(watts),
            _ => None,
        }
    }
}

impl std::fmt::Display for Goal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Goal::MinResponseTime { threads } => {
                write!(f, "min response time with {threads} threads")
            }
            Goal::MaxThroughput { threads } => {
                write!(f, "max throughput with {threads} threads")
            }
            Goal::MaxThroughputUnderPower { threads, watts } => {
                write!(f, "max throughput with {threads} threads, {watts} W")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_accessor_covers_all_goals() {
        assert_eq!(Goal::MinResponseTime { threads: 8 }.threads(), 8);
        assert_eq!(Goal::MaxThroughput { threads: 24 }.threads(), 24);
        assert_eq!(
            Goal::MaxThroughputUnderPower {
                threads: 24,
                watts: 600.0
            }
            .threads(),
            24
        );
    }

    #[test]
    fn only_power_goal_has_budget() {
        assert_eq!(
            Goal::MinResponseTime { threads: 8 }.power_budget_watts(),
            None
        );
        assert_eq!(
            Goal::MaxThroughputUnderPower {
                threads: 8,
                watts: 450.0
            }
            .power_budget_watts(),
            Some(450.0)
        );
    }

    #[test]
    fn display_mentions_constraints() {
        let s = Goal::MaxThroughputUnderPower {
            threads: 24,
            watts: 600.0,
        }
        .to_string();
        assert!(s.contains("24"));
        assert!(s.contains("600"));
    }
}
