//! Task failure containment: outcomes, policies, and verdicts.
//!
//! The DoPE executive owns every task in the nest, so a panicking
//! [`TaskBody`](crate::TaskBody) must never silently shrink the worker
//! pool or let a run report success after losing work. This module
//! defines the vocabulary the supervision layer speaks:
//!
//! * [`TaskOutcome`] — what a supervised worker reports back on its
//!   done-channel: either a normal terminal [`TaskStatus`], or a
//!   captured panic payload.
//! * [`FailurePolicy`] — what the executive does when a replica fails:
//!   abort the run, restart the replica, or degrade its degree of
//!   parallelism and keep going.
//! * [`FailureVerdict`] — the honest summary a
//!   `RunReport` carries: did the run stay clean, recover via
//!   restarts, finish degraded, or lose work outright?
//!
//! # Example
//!
//! ```
//! use dope_core::{FailurePolicy, TaskOutcome, TaskStatus};
//! use std::time::Duration;
//!
//! let policy = FailurePolicy::Restart {
//!     max_retries: 3,
//!     backoff: Duration::from_millis(10),
//! };
//! assert_eq!(policy.kind(), "restart");
//!
//! let ok = TaskOutcome::Completed(TaskStatus::Finished);
//! assert!(!ok.is_failure());
//! let bad = TaskOutcome::Failed { reason: "index out of bounds".into() };
//! assert!(bad.is_failure());
//! ```

use std::fmt;
use std::time::Duration;

use crate::status::TaskStatus;

/// The result a supervised worker reports when it leaves an epoch.
///
/// [`TaskStatus`] stays a small `Copy` enum for the hot reporting path;
/// `TaskOutcome` is the richer, owning type carried once per worker per
/// epoch over the done-channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskOutcome {
    /// The body ran to a normal terminal status (finished or suspended
    /// for reconfiguration).
    Completed(TaskStatus),
    /// The body panicked; `reason` is the downcast panic payload (or a
    /// placeholder when the payload was not a string).
    Failed {
        /// Human-readable panic payload.
        reason: String,
    },
}

impl TaskOutcome {
    /// `true` if this outcome represents a failed (panicked) body.
    #[must_use]
    pub fn is_failure(&self) -> bool {
        matches!(self, TaskOutcome::Failed { .. })
    }

    /// The terminal status, if the body completed normally.
    #[must_use]
    pub fn status(&self) -> Option<TaskStatus> {
        match self {
            TaskOutcome::Completed(status) => Some(*status),
            TaskOutcome::Failed { .. } => None,
        }
    }
}

impl fmt::Display for TaskOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskOutcome::Completed(status) => write!(f, "{status}"),
            TaskOutcome::Failed { reason } => write!(f, "FAILED({reason})"),
        }
    }
}

/// What the executive does when a task replica fails mid-run.
///
/// The policy is chosen by the administrator at build time (see
/// `DopeBuilder::failure_policy` in `dope-runtime`) and reported back
/// in the run's trace (`TaskFailed` events carry the policy that
/// handled them) and metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum FailurePolicy {
    /// Fail fast: stop the run and return
    /// [`Error::TaskFailed`](crate::Error::TaskFailed) carrying the
    /// panic message. This is the default — losing work silently is
    /// never acceptable, so the conservative policy surfaces it loudly.
    #[default]
    Abort,
    /// Re-instantiate the failed replica in the next epoch, up to
    /// `max_retries` restarts per run, sleeping `backoff` before each
    /// relaunch. If the budget is exhausted the run aborts as under
    /// [`FailurePolicy::Abort`].
    Restart {
        /// Maximum restarts across the whole run (not per replica).
        max_retries: u32,
        /// Delay before each restart relaunch.
        backoff: Duration,
    },
    /// Drop the failed replica's degree of parallelism and continue:
    /// the next epoch runs with the failed task's extent reduced by the
    /// number of lost replicas (validated through `Config::validate`
    /// and the debug verify gate). If a task loses *all* its replicas
    /// the run aborts — a pipeline with a missing stage cannot make
    /// progress.
    Degrade,
}

impl FailurePolicy {
    /// Stable lowercase tag for traces and metrics labels:
    /// `"abort"`, `"restart"`, or `"degrade"`.
    #[must_use]
    pub fn kind(self) -> &'static str {
        match self {
            FailurePolicy::Abort => "abort",
            FailurePolicy::Restart { .. } => "restart",
            FailurePolicy::Degrade => "degrade",
        }
    }
}

impl fmt::Display for FailurePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailurePolicy::Abort | FailurePolicy::Degrade => f.write_str(self.kind()),
            FailurePolicy::Restart {
                max_retries,
                backoff,
            } => write!(
                f,
                "restart(max_retries={max_retries}, backoff={:.3}s)",
                backoff.as_secs_f64()
            ),
        }
    }
}

/// The failure-handling summary of a finished run.
///
/// Ordered by severity: a verdict only moves "up" (a run that degraded
/// and later restarted reports the worst thing that happened to it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum FailureVerdict {
    /// No task failed.
    #[default]
    Clean,
    /// At least one replica failed and was successfully restarted; all
    /// work was retained.
    Recovered,
    /// At least one replica failed and the run continued at reduced
    /// degree of parallelism.
    Degraded,
    /// Work was lost: a worker vanished without reporting, or the run
    /// aborted with statuses outstanding. A report carrying this
    /// verdict must not be read as clean success.
    LostWork,
}

impl FailureVerdict {
    /// Stable lowercase tag: `"clean"`, `"recovered"`, `"degraded"`,
    /// or `"lost-work"`.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            FailureVerdict::Clean => "clean",
            FailureVerdict::Recovered => "recovered",
            FailureVerdict::Degraded => "degraded",
            FailureVerdict::LostWork => "lost-work",
        }
    }

    /// Merges another verdict in, keeping the more severe of the two.
    #[must_use]
    pub fn worsen(self, other: FailureVerdict) -> FailureVerdict {
        self.max(other)
    }
}

impl fmt::Display for FailureVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_classifies_and_displays() {
        let ok = TaskOutcome::Completed(TaskStatus::Finished);
        assert!(!ok.is_failure());
        assert_eq!(ok.status(), Some(TaskStatus::Finished));
        assert_eq!(ok.to_string(), "FINISHED");

        let bad = TaskOutcome::Failed {
            reason: "boom".into(),
        };
        assert!(bad.is_failure());
        assert_eq!(bad.status(), None);
        assert_eq!(bad.to_string(), "FAILED(boom)");
    }

    #[test]
    fn policy_default_is_abort_and_kinds_are_stable() {
        assert_eq!(FailurePolicy::default(), FailurePolicy::Abort);
        assert_eq!(FailurePolicy::Abort.kind(), "abort");
        assert_eq!(
            FailurePolicy::Restart {
                max_retries: 2,
                backoff: Duration::ZERO
            }
            .kind(),
            "restart"
        );
        assert_eq!(FailurePolicy::Degrade.kind(), "degrade");
    }

    #[test]
    fn policy_display_mentions_parameters() {
        let p = FailurePolicy::Restart {
            max_retries: 3,
            backoff: Duration::from_millis(250),
        };
        let text = p.to_string();
        assert!(text.contains("max_retries=3"), "{text}");
        assert!(text.contains("0.250"), "{text}");
        assert_eq!(FailurePolicy::Degrade.to_string(), "degrade");
    }

    #[test]
    fn verdicts_order_by_severity_and_worsen_monotonically() {
        assert!(FailureVerdict::Clean < FailureVerdict::Recovered);
        assert!(FailureVerdict::Recovered < FailureVerdict::Degraded);
        assert!(FailureVerdict::Degraded < FailureVerdict::LostWork);
        assert_eq!(FailureVerdict::default(), FailureVerdict::Clean);
        assert_eq!(
            FailureVerdict::Recovered.worsen(FailureVerdict::Clean),
            FailureVerdict::Recovered
        );
        assert_eq!(
            FailureVerdict::Recovered.worsen(FailureVerdict::LostWork),
            FailureVerdict::LostWork
        );
        assert_eq!(FailureVerdict::LostWork.as_str(), "lost-work");
    }
}
