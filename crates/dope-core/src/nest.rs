//! Helpers for two-level loop nests (transaction-serving applications).
//!
//! The paper's response-time applications share one structure: an outer
//! loop over user transactions whose body can itself be parallelized — a
//! pipeline (x264, bzip) or a DOALL loop (swaptions, gimp). Configurations
//! of such nests are written `<DoP_outer, DoP_inner>`.
//!
//! Mechanisms like WQT-H and WQ-Linear think in terms of a single knob:
//! the *inner extent* `d`. This module maps that knob onto full
//! [`Config`] trees:
//!
//! * `d == 1` selects the *sequential-transaction* alternative when the
//!   nest declares one (the paper's `(1, SEQ)`), so a transaction occupies
//!   one context instead of an idle pipeline;
//! * `d > 1` selects the parallel descriptor, assigns `d` to every
//!   parallel leaf (clamped to its declared cap), and gives the outer loop
//!   `threads / width` replicas.

use crate::config::{Config, TaskConfig};
use crate::path::TaskPath;
use crate::shape::{ProgramShape, ShapeNode};
use crate::spec::TaskKind;

/// Description of a two-level nest found inside a program shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwoLevelNest {
    /// Path of the outer (transaction) task.
    pub outer: TaskPath,
    /// Index of the parallel-descriptor alternative.
    pub parallel_alt: usize,
    /// Index of the sequential-transaction alternative, if declared.
    pub sequential_alt: Option<usize>,
}

/// Finds the outermost nested task in a shape, classifying its
/// alternatives.
///
/// The *sequential* alternative is one whose descriptor is a single
/// sequential leaf; the *parallel* alternative is the first other one.
/// Returns `None` if the shape has no nested task.
#[must_use]
pub fn find_two_level(shape: &ProgramShape) -> Option<TwoLevelNest> {
    for (i, node) in shape.tasks.iter().enumerate() {
        if node.is_leaf() {
            continue;
        }
        let path = TaskPath::root_child(i as u16);
        let mut sequential_alt = None;
        let mut parallel_alt = None;
        for (a, alt) in node.alternatives.iter().enumerate() {
            let is_seq = alt.len() == 1 && alt[0].is_leaf() && alt[0].kind == TaskKind::Seq;
            if is_seq && sequential_alt.is_none() {
                sequential_alt = Some(a);
            } else if parallel_alt.is_none() {
                parallel_alt = Some(a);
            }
        }
        let parallel_alt = parallel_alt.or(sequential_alt)?;
        return Some(TwoLevelNest {
            outer: path,
            parallel_alt,
            sequential_alt,
        });
    }
    None
}

/// Threads one transaction occupies when the inner loop runs with extent
/// `d`: the sum of inner leaf extents (1 for the sequential alternative).
#[must_use]
pub fn width_for(shape: &ProgramShape, nest: &TwoLevelNest, d: u32) -> u32 {
    if d <= 1 && nest.sequential_alt.is_some() {
        return 1;
    }
    let node = shape
        .node(&nest.outer)
        .expect("nest path resolves in its own shape");
    let alt = &node.alternatives[nest.parallel_alt];
    alt.iter().map(|n| leaf_width(n, d)).sum::<u32>().max(1)
}

fn leaf_width(node: &ShapeNode, d: u32) -> u32 {
    if node.is_leaf() {
        match node.kind {
            TaskKind::Seq => 1,
            TaskKind::Par => node.max_extent.map_or(d, |m| d.min(m)).max(1),
        }
    } else {
        // Nested deeper than two levels: give the subtree one replica of
        // its first alternative at the same inner extent.
        node.alternatives[0]
            .iter()
            .map(|n| leaf_width(n, d))
            .sum::<u32>()
            .max(1)
    }
}

/// Builds the `<threads / width(d), d>` configuration for inner extent
/// `d`.
///
/// The outer extent is `max(1, threads / width)`; parallel leaves get `d`
/// clamped to their caps; sequential leaves get 1.
#[must_use]
pub fn config_for_inner_extent(
    shape: &ProgramShape,
    nest: &TwoLevelNest,
    threads: u32,
    d: u32,
) -> Config {
    let d = d.max(1);
    if d <= 1 {
        if let Some(alt) = nest.sequential_alt {
            return build_with_alt(shape, nest, threads, d, alt);
        }
    }
    build_parallel_config(shape, nest, threads, d)
}

/// Builds the parallel-descriptor configuration with parallel leaves at
/// extent `d`, never collapsing to the sequential alternative.
fn build_parallel_config(
    shape: &ProgramShape,
    nest: &TwoLevelNest,
    threads: u32,
    d: u32,
) -> Config {
    build_with_alt(shape, nest, threads, d.max(1), nest.parallel_alt)
}

fn build_with_alt(
    shape: &ProgramShape,
    nest: &TwoLevelNest,
    threads: u32,
    d: u32,
    alt_idx: usize,
) -> Config {
    let node = shape
        .node(&nest.outer)
        .expect("nest path resolves in its own shape");
    let alt = &node.alternatives[alt_idx];
    let width: u32 = alt.iter().map(|n| leaf_width(n, d)).sum::<u32>().max(1);
    let outer_extent = (threads / width).max(1);
    let tasks = shape
        .tasks
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let path = TaskPath::root_child(i as u16);
            if path == nest.outer {
                let children = alt.iter().map(|c| child_config(c, d)).collect();
                TaskConfig::nest(n.name.clone(), outer_extent, alt_idx, children)
            } else {
                default_config(n)
            }
        })
        .collect();
    Config::new(tasks)
}

fn child_config(node: &ShapeNode, d: u32) -> TaskConfig {
    if node.is_leaf() {
        let extent = match node.kind {
            TaskKind::Seq => 1,
            TaskKind::Par => node.max_extent.map_or(d, |m| d.min(m)).max(1),
        };
        TaskConfig::leaf(node.name.clone(), extent)
    } else {
        TaskConfig::nest(
            node.name.clone(),
            1,
            0,
            node.alternatives[0]
                .iter()
                .map(|n| child_config(n, d))
                .collect(),
        )
    }
}

fn default_config(node: &ShapeNode) -> TaskConfig {
    if node.is_leaf() {
        TaskConfig::leaf(node.name.clone(), 1)
    } else {
        TaskConfig::nest(
            node.name.clone(),
            1,
            0,
            node.alternatives[0].iter().map(default_config).collect(),
        )
    }
}

/// Number of sequential leaves in the parallel alternative of a nest.
#[must_use]
pub fn seq_leaves(shape: &ProgramShape, nest: &TwoLevelNest) -> u32 {
    let node = shape
        .node(&nest.outer)
        .expect("nest path resolves in its own shape");
    node.alternatives[nest.parallel_alt]
        .iter()
        .filter(|n| n.is_leaf() && n.kind == TaskKind::Seq)
        .count() as u32
}

/// Builds the configuration whose transactions occupy `width` threads —
/// the paper's inner *DoP extent* knob.
///
/// Widths below the parallel alternative's minimum (`seq_leaves + 1`)
/// clamp to the sequential alternative when one is declared; sequential
/// inner leaves get one thread each and the parallel leaves share the
/// remainder.
///
/// If `threads` is smaller than the parallel descriptor's minimal
/// footprint (`seq_leaves + 1`) *and* the nest declares no sequential
/// alternative, no feasible configuration exists: the returned
/// configuration then exceeds the budget and fails
/// [`Config::validate`] — callers (the executive, the simulator) validate
/// and reject it.
#[must_use]
pub fn config_for_width(
    shape: &ProgramShape,
    nest: &TwoLevelNest,
    threads: u32,
    width: u32,
) -> Config {
    let s = seq_leaves(shape, nest);
    // A transaction can never occupy more threads than the budget.
    let width = width.min(threads.max(1));
    if width <= s || width <= 1 {
        return config_for_inner_extent(shape, nest, threads, 1);
    }
    // Note d == 1 here still selects the *parallel* descriptor (e.g. the
    // paper's "unhelpful" `(3, PIPE)` that WQ-Linear can produce): the
    // transaction occupies `s + 1` threads.
    let d = width.saturating_sub(s).max(1);
    build_parallel_config(shape, nest, threads, d)
}

/// Reads the transaction width (inner DoP extent) out of a configuration.
#[must_use]
pub fn width_of(config: &Config, nest: &TwoLevelNest) -> u32 {
    let Some(outer) = config.node(&nest.outer) else {
        return 1;
    };
    let Some(inner) = &outer.nested else {
        return 1;
    };
    if Some(inner.alternative) == nest.sequential_alt {
        return 1;
    }
    inner
        .tasks
        .iter()
        .map(TaskConfig::threads)
        .sum::<u32>()
        .max(1)
}

/// Reads the inner extent `d` back out of a configuration.
///
/// Returns 1 when the sequential alternative is selected; otherwise the
/// maximum extent over the parallel leaves of the chosen descriptor.
#[must_use]
pub fn inner_extent_of(config: &Config, nest: &TwoLevelNest) -> u32 {
    let Some(outer) = config.node(&nest.outer) else {
        return 1;
    };
    let Some(inner) = &outer.nested else {
        return 1;
    };
    if Some(inner.alternative) == nest.sequential_alt {
        return 1;
    }
    inner
        .tasks
        .iter()
        .map(|t| match &t.nested {
            None => t.extent,
            Some(n) => n.tasks.iter().map(|c| c.extent).max().unwrap_or(1),
        })
        .max()
        .unwrap_or(1)
}

/// The outer extent (concurrent transactions) of a configuration.
#[must_use]
pub fn outer_extent_of(config: &Config, nest: &TwoLevelNest) -> u32 {
    config.extent_of(&nest.outer).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// x264-like shape: pipeline alternative + sequential alternative.
    fn transcode_shape() -> ProgramShape {
        ProgramShape::new(vec![ShapeNode {
            name: "transcode".into(),
            kind: TaskKind::Par,
            max_extent: None,
            alternatives: vec![
                vec![
                    ShapeNode::leaf("read", TaskKind::Seq),
                    ShapeNode::leaf("transform", TaskKind::Par).with_max_extent(8),
                    ShapeNode::leaf("write", TaskKind::Seq),
                ],
                vec![ShapeNode::leaf("whole", TaskKind::Seq)],
            ],
        }])
    }

    /// swaptions-like shape: single DOALL alternative.
    fn doall_shape() -> ProgramShape {
        ProgramShape::new(vec![ShapeNode {
            name: "price".into(),
            kind: TaskKind::Par,
            max_extent: None,
            alternatives: vec![vec![ShapeNode::leaf("trials", TaskKind::Par)]],
        }])
    }

    #[test]
    fn finds_nest_and_alternatives() {
        let shape = transcode_shape();
        let nest = find_two_level(&shape).unwrap();
        assert_eq!(nest.outer.to_string(), "0");
        assert_eq!(nest.parallel_alt, 0);
        assert_eq!(nest.sequential_alt, Some(1));
    }

    #[test]
    fn width_uses_sequential_alternative_at_d1() {
        let shape = transcode_shape();
        let nest = find_two_level(&shape).unwrap();
        assert_eq!(width_for(&shape, &nest, 1), 1);
        assert_eq!(width_for(&shape, &nest, 6), 8); // 1 + 6 + 1
        assert_eq!(width_for(&shape, &nest, 12), 10); // transform capped at 8
    }

    #[test]
    fn doall_width_is_d() {
        let shape = doall_shape();
        let nest = find_two_level(&shape).unwrap();
        assert_eq!(nest.sequential_alt, None);
        assert_eq!(width_for(&shape, &nest, 1), 1);
        assert_eq!(width_for(&shape, &nest, 6), 6);
    }

    #[test]
    fn config_for_extent_builds_paper_configs() {
        let shape = transcode_shape();
        let nest = find_two_level(&shape).unwrap();

        // <(24, DOALL), (1, SEQ)>
        let seq = config_for_inner_extent(&shape, &nest, 24, 1);
        assert_eq!(outer_extent_of(&seq, &nest), 24);
        assert_eq!(inner_extent_of(&seq, &nest), 1);
        assert_eq!(seq.total_threads(), 24);
        seq.validate(&shape, 24).unwrap();

        // <(3, DOALL), (6, PIPE)>: width = 8, outer = 3
        let par = config_for_inner_extent(&shape, &nest, 24, 6);
        assert_eq!(outer_extent_of(&par, &nest), 3);
        assert_eq!(inner_extent_of(&par, &nest), 6);
        assert_eq!(par.total_threads(), 24);
        par.validate(&shape, 24).unwrap();
    }

    #[test]
    fn config_respects_leaf_caps() {
        let shape = transcode_shape();
        let nest = find_two_level(&shape).unwrap();
        let config = config_for_inner_extent(&shape, &nest, 64, 20);
        assert_eq!(inner_extent_of(&config, &nest), 8);
        config.validate(&shape, 64).unwrap();
    }

    #[test]
    fn width_never_exceeds_budget_leaving_zero_outer() {
        let shape = transcode_shape();
        let nest = find_two_level(&shape).unwrap();
        // Budget smaller than width: outer clamps to 1.
        let config = config_for_inner_extent(&shape, &nest, 4, 6);
        assert_eq!(outer_extent_of(&config, &nest), 1);
    }

    #[test]
    fn width_roundtrip_through_config() {
        let shape = transcode_shape();
        let nest = find_two_level(&shape).unwrap();
        for width in [1u32, 3, 4, 8] {
            let config = config_for_width(&shape, &nest, 24, width);
            assert_eq!(width_of(&config, &nest), width, "width {width}");
            config.validate(&shape, 24).unwrap();
        }
        // Width 2 is unrepresentable with two sequential endpoints: it
        // clamps to the sequential alternative.
        let clamped = config_for_width(&shape, &nest, 24, 2);
        assert_eq!(width_of(&clamped, &nest), 1);
        // Sequential alternative occupies exactly one thread per replica.
        let seq = config_for_width(&shape, &nest, 24, 1);
        assert_eq!(seq.total_threads(), 24);
    }

    #[test]
    fn seq_leaves_counts_pipeline_endpoints() {
        let shape = transcode_shape();
        let nest = find_two_level(&shape).unwrap();
        assert_eq!(seq_leaves(&shape, &nest), 2);
        let doall = doall_shape();
        let doall_nest = find_two_level(&doall).unwrap();
        assert_eq!(seq_leaves(&doall, &doall_nest), 0);
    }

    #[test]
    fn shape_without_nest_yields_none() {
        let flat = ProgramShape::new(vec![ShapeNode::leaf("only", TaskKind::Par)]);
        assert!(find_two_level(&flat).is_none());
    }
}
