//! Parallelism specifications: the paper's `Task`/`TaskDescriptor`/
//! `ParDescriptor` types (Figure 3).
//!
//! A [`TaskSpec`] declares one task of a parallelism descriptor. Its
//! [`Work`] is either a [`BodyFactory`] (a leaf whose functor runs on
//! `extent` workers) or a list of [`NestFactory`] *alternatives* — the
//! paper's "specifying more than one descriptor exposes a choice to DoPE",
//! used by task fusion.
//!
//! Specs deliberately *underspecify* the parallelism: no extents appear
//! here. The executive pairs a spec tree with a [`Config`](crate::Config)
//! chosen by a mechanism at run time.

use crate::task::TaskBody;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Whether a task may be executed by more than one worker concurrently.
///
/// The paper's `TaskType = SEQ | PAR`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// At most one worker invokes the body at a time; extent is pinned to 1.
    Seq,
    /// Up to `extent` workers invoke per-worker bodies concurrently.
    Par,
}

impl std::fmt::Display for TaskKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TaskKind::Seq => "SEQ",
            TaskKind::Par => "PAR",
        })
    }
}

/// Identifies one worker slot of a task instance.
///
/// Passed to [`BodyFactory::make_body`] so per-worker bodies know their
/// place (e.g. to partition a DOALL iteration space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkerSlot {
    /// Which replica of the task (outer-loop instance) this worker serves.
    pub replica: u32,
    /// Index of the worker within the task's extent.
    pub worker: u32,
    /// Total number of workers assigned to this task instance.
    pub extent: u32,
}

/// Creates per-worker [`TaskBody`] instances for a leaf task.
///
/// Implemented for any `Fn(WorkerSlot) -> Box<dyn TaskBody>` closure.
pub trait BodyFactory: Send + Sync {
    /// Builds the body that worker `slot` will run for this epoch.
    fn make_body(&self, slot: WorkerSlot) -> Box<dyn TaskBody>;
}

impl<F> BodyFactory for F
where
    F: Fn(WorkerSlot) -> Box<dyn TaskBody> + Send + Sync,
{
    fn make_body(&self, slot: WorkerSlot) -> Box<dyn TaskBody> {
        self(slot)
    }
}

/// Creates a fresh inner parallelism descriptor for one replica of a task.
///
/// Each replica gets its own descriptor so that per-replica state (stage
/// queues, accumulators) is not shared between concurrent outer-loop
/// instances. Implemented for any `Fn(u32) -> Vec<TaskSpec>` closure, where
/// the argument is the replica index.
///
/// The descriptor's *shape* (task names, kinds, nesting) must not depend on
/// the replica index; the executive derives the program shape from replica
/// zero and validates the rest against it.
pub trait NestFactory: Send + Sync {
    /// Builds the inner descriptor for replica `replica`.
    fn make_nest(&self, replica: u32) -> Vec<TaskSpec>;
}

impl<F> NestFactory for F
where
    F: Fn(u32) -> Vec<TaskSpec> + Send + Sync,
{
    fn make_nest(&self, replica: u32) -> Vec<TaskSpec> {
        self(replica)
    }
}

/// The work a task performs: run a functor, or run an inner loop nest.
#[derive(Clone)]
pub enum Work {
    /// A leaf task: `extent` workers each run a body from this factory.
    Leaf(Arc<dyn BodyFactory>),
    /// A nested task: `extent` replicas each run one of these alternative
    /// inner descriptors (the mechanism chooses which).
    Nest(Vec<Arc<dyn NestFactory>>),
}

impl std::fmt::Debug for Work {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Work::Leaf(_) => f.write_str("Work::Leaf(..)"),
            Work::Nest(alts) => write!(f, "Work::Nest({} alternatives)", alts.len()),
        }
    }
}

/// Declaration of one task in a parallelism descriptor.
///
/// # Example
///
/// A three-stage pipeline descriptor (the paper's Figure 6):
///
/// ```
/// use dope_core::{body_fn, TaskKind, TaskSpec, TaskStatus, WorkerSlot};
///
/// fn stage(name: &str, kind: TaskKind) -> TaskSpec {
///     TaskSpec::leaf(name, kind, move |_slot: WorkerSlot| {
///         Box::new(body_fn(|cx| {
///             cx.begin();
///             cx.end();
///             TaskStatus::Finished
///         })) as Box<dyn dope_core::TaskBody>
///     })
/// }
///
/// let descriptor = vec![
///     stage("read", TaskKind::Seq),
///     stage("transform", TaskKind::Par),
///     stage("write", TaskKind::Seq),
/// ];
/// assert_eq!(descriptor.len(), 3);
/// ```
#[derive(Clone)]
pub struct TaskSpec {
    name: String,
    kind: TaskKind,
    work: Work,
    load: Option<Arc<dyn Fn() -> f64 + Send + Sync>>,
    max_extent: Option<u32>,
}

impl std::fmt::Debug for TaskSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskSpec")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("work", &self.work)
            .field("has_load_cb", &self.load.is_some())
            .field("max_extent", &self.max_extent)
            .finish()
    }
}

impl TaskSpec {
    /// Declares a leaf task whose workers run bodies from `factory`.
    pub fn leaf<F>(name: impl Into<String>, kind: TaskKind, factory: F) -> Self
    where
        F: BodyFactory + 'static,
    {
        TaskSpec {
            name: name.into(),
            kind,
            work: Work::Leaf(Arc::new(factory)),
            load: None,
            max_extent: None,
        }
    }

    /// Declares a task with a single nested parallelism descriptor.
    pub fn nest<F>(name: impl Into<String>, kind: TaskKind, factory: F) -> Self
    where
        F: NestFactory + 'static,
    {
        TaskSpec {
            name: name.into(),
            kind,
            work: Work::Nest(vec![Arc::new(factory)]),
            load: None,
            max_extent: None,
        }
    }

    /// Declares a task offering a *choice* of nested descriptors.
    ///
    /// The mechanism picks the alternative at run time; this is how the
    /// paper's task fusion (TBF, §7.2) exposes a fused variant of a
    /// pipeline alongside the unfused one.
    #[must_use]
    pub fn nest_choice(
        name: impl Into<String>,
        kind: TaskKind,
        alternatives: Vec<Arc<dyn NestFactory>>,
    ) -> Self {
        TaskSpec {
            name: name.into(),
            kind,
            work: Work::Nest(alternatives),
            load: None,
            max_extent: None,
        }
    }

    /// Attaches the paper's `LoadCB`: a callback reporting the current load
    /// on the task (typically the occupancy of its input queue).
    #[must_use]
    pub fn with_load<F>(mut self, load: F) -> Self
    where
        F: Fn() -> f64 + Send + Sync + 'static,
    {
        self.load = Some(Arc::new(load));
        self
    }

    /// Caps the extent a mechanism may assign to this task (the paper's
    /// `Mmax`, the extent above which parallel efficiency drops below 0.5).
    #[must_use]
    pub fn with_max_extent(mut self, max_extent: u32) -> Self {
        self.max_extent = Some(max_extent.max(1));
        self
    }

    /// The task's name (unique within its descriptor).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the task is sequential or parallel.
    #[must_use]
    pub fn kind(&self) -> TaskKind {
        self.kind
    }

    /// The task's work.
    #[must_use]
    pub fn work(&self) -> &Work {
        &self.work
    }

    /// The registered load callback, if any.
    #[must_use]
    pub fn load_cb(&self) -> Option<&Arc<dyn Fn() -> f64 + Send + Sync>> {
        self.load.as_ref()
    }

    /// Samples the load callback, or 0.0 when none is registered.
    #[must_use]
    pub fn sample_load(&self) -> f64 {
        self.load.as_ref().map_or(0.0, |cb| cb())
    }

    /// The configured extent cap, if any.
    #[must_use]
    pub fn max_extent(&self) -> Option<u32> {
        self.max_extent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::status::TaskStatus;
    use crate::task::{body_fn, NullCx, TaskBody};

    fn noop_leaf(name: &str, kind: TaskKind) -> TaskSpec {
        TaskSpec::leaf(name, kind, |_slot: WorkerSlot| {
            Box::new(body_fn(|_cx| TaskStatus::Finished)) as Box<dyn TaskBody>
        })
    }

    #[test]
    fn leaf_spec_reports_metadata() {
        let spec = noop_leaf("transform", TaskKind::Par).with_max_extent(8);
        assert_eq!(spec.name(), "transform");
        assert_eq!(spec.kind(), TaskKind::Par);
        assert_eq!(spec.max_extent(), Some(8));
        assert!(matches!(spec.work(), Work::Leaf(_)));
    }

    #[test]
    fn max_extent_clamps_to_one() {
        let spec = noop_leaf("t", TaskKind::Par).with_max_extent(0);
        assert_eq!(spec.max_extent(), Some(1));
    }

    #[test]
    fn load_callback_is_sampled() {
        let spec = noop_leaf("t", TaskKind::Seq).with_load(|| 42.0);
        assert_eq!(spec.sample_load(), 42.0);
        let bare = noop_leaf("u", TaskKind::Seq);
        assert_eq!(bare.sample_load(), 0.0);
    }

    #[test]
    fn nest_factory_builds_fresh_descriptors() {
        let spec = TaskSpec::nest("outer", TaskKind::Par, |replica: u32| {
            vec![noop_leaf(&format!("inner-{replica}"), TaskKind::Seq)]
        });
        match spec.work() {
            Work::Nest(alts) => {
                assert_eq!(alts.len(), 1);
                let nest0 = alts[0].make_nest(0);
                let nest1 = alts[0].make_nest(1);
                assert_eq!(nest0[0].name(), "inner-0");
                assert_eq!(nest1[0].name(), "inner-1");
            }
            Work::Leaf(_) => panic!("expected nest"),
        }
    }

    #[test]
    fn body_factory_from_closure() {
        let factory = |slot: WorkerSlot| {
            let extent = slot.extent;
            Box::new(body_fn(move |_cx| {
                assert!(extent >= 1);
                TaskStatus::Finished
            })) as Box<dyn TaskBody>
        };
        let mut body = factory.make_body(WorkerSlot {
            replica: 0,
            worker: 0,
            extent: 2,
        });
        let mut cx = NullCx::default();
        assert_eq!(body.invoke(&mut cx), TaskStatus::Finished);
    }

    #[test]
    fn kind_display_matches_paper() {
        assert_eq!(TaskKind::Seq.to_string(), "SEQ");
        assert_eq!(TaskKind::Par.to_string(), "PAR");
    }

    #[test]
    fn debug_is_nonempty() {
        let spec = noop_leaf("t", TaskKind::Par);
        assert!(!format!("{spec:?}").is_empty());
        assert!(!format!("{:?}", spec.work()).is_empty());
    }
}
