//! Task status and executive directives.
//!
//! These mirror the paper's `TaskStatus = EXECUTING | SUSPENDED | FINISHED`
//! protocol (Figure 3) and the values returned by `Task::begin`/`Task::end`
//! (Table 2).

use serde::{Deserialize, Serialize};

/// The status a task body reports after each invocation.
///
/// The task executor loop keeps re-invoking the body while it returns
/// [`TaskStatus::Executing`]. A body returns [`TaskStatus::Finished`] when
/// the loop exit branch of the original loop would be taken, and
/// [`TaskStatus::Suspended`] when it has steered itself into a globally
/// consistent state in response to a [`Directive::Suspend`] from the
/// executive.
///
/// # Example
///
/// ```
/// use dope_core::TaskStatus;
///
/// let status = TaskStatus::Executing;
/// assert!(!status.is_terminal());
/// assert!(TaskStatus::Finished.is_terminal());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskStatus {
    /// The task has more iterations to run; the executor re-invokes it.
    Executing,
    /// The task yielded for reconfiguration; it will be re-instantiated.
    Suspended,
    /// The task's loop exit branch was taken; the task is complete.
    Finished,
}

impl TaskStatus {
    /// Returns `true` if the executor loop stops on this status.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        !matches!(self, TaskStatus::Executing)
    }
}

impl std::fmt::Display for TaskStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TaskStatus::Executing => "EXECUTING",
            TaskStatus::Suspended => "SUSPENDED",
            TaskStatus::Finished => "FINISHED",
        };
        f.write_str(s)
    }
}

/// What the executive asks of a task at `begin`/`end` monitoring points.
///
/// In the paper, `Task::begin` and `Task::end` return a [`TaskStatus`];
/// returning `SUSPENDED` signals the executive's intent to reconfigure. In
/// this port the signal is a distinct type so that a body cannot confuse the
/// executive's request with its own status.
///
/// # Example
///
/// ```
/// use dope_core::Directive;
///
/// assert!(Directive::Suspend.wants_suspend());
/// assert!(!Directive::Continue.wants_suspend());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Directive {
    /// Keep executing normally.
    Continue,
    /// Steer into a consistent state and return [`TaskStatus::Suspended`].
    Suspend,
}

impl Directive {
    /// Returns `true` if the executive asked the task to suspend.
    #[must_use]
    pub fn wants_suspend(self) -> bool {
        matches!(self, Directive::Suspend)
    }
}

impl std::fmt::Display for Directive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Directive::Continue => "CONTINUE",
            Directive::Suspend => "SUSPEND",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executing_is_not_terminal() {
        assert!(!TaskStatus::Executing.is_terminal());
    }

    #[test]
    fn suspended_and_finished_are_terminal() {
        assert!(TaskStatus::Suspended.is_terminal());
        assert!(TaskStatus::Finished.is_terminal());
    }

    #[test]
    fn directive_suspend_flag() {
        assert!(Directive::Suspend.wants_suspend());
        assert!(!Directive::Continue.wants_suspend());
    }

    #[test]
    fn display_matches_paper_spelling() {
        assert_eq!(TaskStatus::Executing.to_string(), "EXECUTING");
        assert_eq!(TaskStatus::Suspended.to_string(), "SUSPENDED");
        assert_eq!(TaskStatus::Finished.to_string(), "FINISHED");
        assert_eq!(Directive::Continue.to_string(), "CONTINUE");
        assert_eq!(Directive::Suspend.to_string(), "SUSPEND");
    }
}
