//! Monitoring data: what mechanisms see.
//!
//! The executive continuously monitors application features (task execution
//! times via `begin`/`end`, per-task load via `LoadCB`) and platform
//! features (power, hardware contexts). A [`MonitorSnapshot`] is a frozen
//! view of that state; mechanisms receive one on every reconfiguration
//! opportunity. The same type is produced by the live monitor in
//! `dope-runtime` and the simulated monitor in `dope-sim`.

use crate::admission::AdmissionStats;
use crate::path::TaskPath;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-task monitoring statistics, aggregated across replicas and workers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct TaskStats {
    /// Completed invocations of the task's body since launch.
    pub invocations: u64,
    /// Moving average of per-invocation execution time, in seconds.
    pub mean_exec_secs: f64,
    /// Completed invocations per second over the recent window, summed
    /// across all workers of the task.
    pub throughput: f64,
    /// Most recent `LoadCB` sample (typically input-queue occupancy).
    pub load: f64,
    /// Fraction of wall-clock time the task's workers spent inside
    /// `begin`/`end`, in `[0, 1]`.
    pub utilization: f64,
    /// Median per-invocation execution time, in seconds.
    ///
    /// Additive over the original schema: producers that do not measure
    /// percentiles (old traces, the simulator's analytic monitor) leave
    /// this and the other `p*_exec_secs` fields at `0.0`, which readers
    /// must treat as "not measured".
    pub p50_exec_secs: f64,
    /// 95th-percentile per-invocation execution time, in seconds
    /// (`0.0` when not measured; see [`TaskStats::p50_exec_secs`]).
    pub p95_exec_secs: f64,
    /// 99th-percentile per-invocation execution time, in seconds
    /// (`0.0` when not measured; see [`TaskStats::p50_exec_secs`]).
    pub p99_exec_secs: f64,
}

/// Statistics of the application's work queue (the open-workload inlet).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct QueueStats {
    /// Current number of outstanding requests, `q(t)` in the paper's
    /// Equation 1.
    pub occupancy: f64,
    /// Estimated arrival rate, in requests per second.
    pub arrival_rate: f64,
    /// Requests enqueued since launch.
    pub enqueued: u64,
    /// Requests fully processed since launch.
    pub completed: u64,
}

/// A frozen view of everything the executive monitors.
///
/// # Example
///
/// ```
/// use dope_core::{MonitorSnapshot, TaskStats};
///
/// let mut snap = MonitorSnapshot::at(1.5);
/// snap.tasks.insert(
///     "0.1".parse().unwrap(),
///     TaskStats {
///         invocations: 100,
///         mean_exec_secs: 0.02,
///         throughput: 48.0,
///         load: 3.0,
///         utilization: 0.96,
///         ..TaskStats::default()
///     },
/// );
/// let slowest = snap.slowest_task().unwrap();
/// assert_eq!(slowest.to_string(), "0.1");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct MonitorSnapshot {
    /// Seconds since the executive launched the application.
    pub time_secs: f64,
    /// Per-task statistics keyed by configured-tree path.
    pub tasks: BTreeMap<TaskPath, TaskStats>,
    /// Work-queue statistics.
    pub queue: QueueStats,
    /// Latest platform power sample, if a power feature is registered.
    pub power_watts: Option<f64>,
    /// Work items dispatched since the last reconfiguration (drives the
    /// paper's hysteresis counts `N_on`/`N_off`).
    pub dispatches_since_reconfig: u64,
    /// Admission-gate counters. All-zero (the default) when no gate is
    /// installed — the additive-schema value pre-admission producers
    /// imply by omission.
    pub admission: AdmissionStats,
}

impl MonitorSnapshot {
    /// An empty snapshot at `time_secs`.
    #[must_use]
    pub fn at(time_secs: f64) -> Self {
        MonitorSnapshot {
            time_secs,
            ..MonitorSnapshot::default()
        }
    }

    /// Statistics for the task at `path`, if sampled.
    #[must_use]
    pub fn task(&self, path: &TaskPath) -> Option<&TaskStats> {
        self.tasks.get(path)
    }

    /// Path of the task with the lowest throughput among tasks that have
    /// run at least once — the pipeline's current bottleneck.
    #[must_use]
    pub fn slowest_task(&self) -> Option<TaskPath> {
        self.tasks
            .iter()
            .filter(|(_, s)| s.invocations > 0)
            .min_by(|a, b| {
                a.1.throughput
                    .partial_cmp(&b.1.throughput)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(p, _)| p.clone())
    }

    /// Sum of `mean_exec_secs` over a set of sibling tasks, used by the
    /// proportional mechanism (paper Figure 10, step 1).
    #[must_use]
    pub fn total_exec_time(&self, paths: &[TaskPath]) -> f64 {
        paths
            .iter()
            .filter_map(|p| self.tasks.get(p))
            .map(|s| s.mean_exec_secs)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(mean: f64, thr: f64, inv: u64) -> TaskStats {
        TaskStats {
            invocations: inv,
            mean_exec_secs: mean,
            throughput: thr,
            load: 0.0,
            utilization: 0.5,
            ..TaskStats::default()
        }
    }

    #[test]
    fn percentile_fields_default_to_unmeasured_zero() {
        // Additive-schema contract: a producer that does not measure
        // percentiles yields exactly 0.0 in every `p*_exec_secs` field.
        let stats = TaskStats::default();
        assert_eq!(stats.p50_exec_secs, 0.0);
        assert_eq!(stats.p95_exec_secs, 0.0);
        assert_eq!(stats.p99_exec_secs, 0.0);
        let partial = sample(0.5, 2.0, 1);
        assert_eq!(partial.p99_exec_secs, 0.0);
    }

    #[test]
    fn slowest_task_ignores_never_run() {
        let mut snap = MonitorSnapshot::at(0.0);
        snap.tasks
            .insert("0".parse().unwrap(), sample(1.0, 10.0, 5));
        snap.tasks.insert("1".parse().unwrap(), sample(1.0, 2.0, 5));
        snap.tasks.insert("2".parse().unwrap(), sample(1.0, 0.0, 0));
        assert_eq!(snap.slowest_task().unwrap().to_string(), "1");
    }

    #[test]
    fn slowest_task_none_when_empty() {
        assert_eq!(MonitorSnapshot::at(0.0).slowest_task(), None);
    }

    #[test]
    fn total_exec_time_sums_known_paths() {
        let mut snap = MonitorSnapshot::at(0.0);
        snap.tasks
            .insert("0.0".parse().unwrap(), sample(0.25, 1.0, 1));
        snap.tasks
            .insert("0.1".parse().unwrap(), sample(0.75, 1.0, 1));
        let paths: Vec<TaskPath> = vec![
            "0.0".parse().unwrap(),
            "0.1".parse().unwrap(),
            "0.9".parse().unwrap(),
        ];
        assert!((snap.total_exec_time(&paths) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_lookup_by_path() {
        let mut snap = MonitorSnapshot::at(3.0);
        snap.power_watts = Some(450.0);
        snap.tasks.insert("0".parse().unwrap(), sample(0.1, 9.0, 3));
        let stats = snap.task(&"0".parse().unwrap()).unwrap();
        assert_eq!(stats.invocations, 3);
        assert!(snap.task(&"1".parse().unwrap()).is_none());
    }
}
