//! Exponentially weighted moving average used by the run-time monitor.

use serde::{Deserialize, Serialize};

/// An exponentially weighted moving average.
///
/// DoPE's monitor keeps a moving average of each task's per-invocation
/// execution time and throughput (the paper's TBF mechanism, §7.2, records
/// "a moving average of the throughput ... of each task").
///
/// # Example
///
/// ```
/// use dope_core::Ewma;
///
/// let mut avg = Ewma::new(0.5);
/// avg.update(10.0);
/// avg.update(20.0);
/// assert_eq!(avg.value(), Some(15.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates a new average with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// Higher `alpha` weights recent samples more heavily; `alpha = 1`
    /// tracks only the last sample.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `(0, 1]` or is not finite.
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0, 1], got {alpha}"
        );
        Ewma { alpha, value: None }
    }

    /// Folds a new sample into the average.
    pub fn update(&mut self, sample: f64) {
        self.value = Some(Ewma::fold(self.alpha, self.value, sample));
    }

    /// One folding step without the struct: the value after observing
    /// `sample` given the previous value (`None` before any sample).
    ///
    /// This is the same arithmetic [`update`](Ewma::update) applies,
    /// exposed for accumulators that cannot hold an `Ewma` directly —
    /// the runtime's per-worker monitoring shards keep the current value
    /// as the bit pattern of an `f64` in an atomic cell and fold samples
    /// in place with this function.
    #[must_use]
    pub fn fold(alpha: f64, prev: Option<f64>, sample: f64) -> f64 {
        match prev {
            None => sample,
            Some(v) => v + alpha * (sample - v),
        }
    }

    /// Current value, or `None` before the first sample.
    #[must_use]
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Current value, or `default` before the first sample.
    #[must_use]
    pub fn value_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }

    /// The smoothing factor.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Forgets all samples.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

impl Default for Ewma {
    /// An average with `alpha = 0.25`, the monitor's default smoothing.
    fn default() -> Self {
        Ewma::new(0.25)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_taken_verbatim() {
        let mut e = Ewma::new(0.1);
        assert_eq!(e.value(), None);
        e.update(42.0);
        assert_eq!(e.value(), Some(42.0));
    }

    #[test]
    fn alpha_one_tracks_last_sample() {
        let mut e = Ewma::new(1.0);
        e.update(1.0);
        e.update(9.0);
        assert_eq!(e.value(), Some(9.0));
    }

    #[test]
    fn converges_to_constant_signal() {
        let mut e = Ewma::new(0.3);
        e.update(100.0);
        for _ in 0..200 {
            e.update(5.0);
        }
        assert!((e.value().unwrap() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn fold_matches_update() {
        let mut e = Ewma::new(0.3);
        let mut folded = None;
        for sample in [10.0, 4.0, 7.5, 0.25] {
            e.update(sample);
            folded = Some(Ewma::fold(0.3, folded, sample));
        }
        assert_eq!(e.value(), folded);
    }

    #[test]
    fn reset_forgets() {
        let mut e = Ewma::new(0.5);
        e.update(3.0);
        e.reset();
        assert_eq!(e.value(), None);
        assert_eq!(e.value_or(7.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn zero_alpha_panics() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn oversized_alpha_panics() {
        let _ = Ewma::new(1.5);
    }
}
