//! The workspace's strict JSON codec.
//!
//! The vendored `serde` is an offline no-op shim, so every crate that
//! speaks JSON — the `dope-verify` CLI, the `dope-trace` flight
//! recorder — shares this hand-rolled codec instead: a strict JSON
//! subset (objects, arrays, strings, integers, finite floats, `null`,
//! booleans) with precise byte-offset errors, plus encoders and
//! decoders for the [`Config`]/[`ProgramShape`] trees that appear in
//! serialized documents.
//!
//! The codec is deliberately strict: no comments, no trailing commas,
//! no `NaN`/`Infinity` (non-finite floats encode as `null`), and no
//! duplicate-silently-wins semantics — objects preserve insertion
//! order and [`Value::get`] returns the first match.
//!
//! # Example
//!
//! ```
//! use dope_core::json::{parse, Value};
//!
//! let doc = parse(r#"{"threads": 24, "load": 0.75, "tags": ["a", null]}"#).unwrap();
//! assert_eq!(doc.get("threads").and_then(Value::as_u64), Some(24));
//! assert_eq!(doc.get("load").and_then(Value::as_f64), Some(0.75));
//! // Values render back to compact JSON.
//! assert_eq!(doc.get("tags").unwrap().to_json(), r#"["a", null]"#);
//! ```

use std::fmt;

use crate::config::{Config, NestConfig, TaskConfig};
use crate::shape::{ProgramShape, ShapeNode};
use crate::spec::TaskKind;

/// A parse or decode failure, with a byte offset when parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input, if the failure was syntactic.
    pub offset: Option<usize>,
}

impl JsonError {
    /// A syntactic failure at byte `offset`.
    #[must_use]
    pub fn at(offset: usize, message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
            offset: Some(offset),
        }
    }

    /// A semantic (decode) failure with no position.
    #[must_use]
    pub fn decode(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
            offset: None,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(offset) => write!(f, "{} (at byte {offset})", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    Number(u64),
    /// A signed or fractional number (anything that is not a plain
    /// non-negative integer).
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, preserving insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen losslessly up to 2^53).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// An [`f64`] encoded canonically: integers that fit `u64` exactly
    /// become [`Value::Number`], non-finite values become [`Value::Null`].
    #[must_use]
    pub fn from_f64(x: f64) -> Value {
        if !x.is_finite() {
            return Value::Null;
        }
        if x >= 0.0 && x.fract() == 0.0 && x <= 9_007_199_254_740_992.0 {
            // Lossless integral encoding (within f64's exact-int range).
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            return Value::Number(x as u64);
        }
        Value::Float(x)
    }

    /// Renders the value as compact JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::Float(x) => {
                if x.is_finite() {
                    let text = format!("{x}");
                    // `{}` renders integral floats without a fraction
                    // ("2" for 2.0); keep a marker so the value parses
                    // back as written when it carried a sign.
                    out.push_str(&text);
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push('"');
                    out.push_str(&escape(key));
                    out.push_str("\": ");
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

/// Escapes a string for embedding in JSON output.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a [`JsonError`] with a byte offset on malformed input or
/// trailing garbage.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError::at(pos, "trailing characters after document"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), JsonError> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError::at(
            *pos,
            format!("expected `{}`", char::from(byte)),
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::at(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'-') => parse_number(bytes, pos),
        Some(c) if c.is_ascii_digit() => parse_number(bytes, pos),
        Some(_) => Err(JsonError::at(*pos, "unexpected character")),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    keyword: &str,
    value: Value,
) -> Result<Value, JsonError> {
    if bytes[*pos..].starts_with(keyword.as_bytes()) {
        *pos += keyword.len();
        Ok(value)
    } else {
        Err(JsonError::at(*pos, format!("expected `{keyword}`")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    let start = *pos;
    let negative = bytes.get(*pos) == Some(&b'-');
    if negative {
        *pos += 1;
    }
    if !bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
        return Err(JsonError::at(*pos, "expected a digit"));
    }
    while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    let mut fractional = false;
    if bytes.get(*pos) == Some(&b'.') {
        fractional = true;
        *pos += 1;
        if !bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            return Err(JsonError::at(*pos, "expected a digit after `.`"));
        }
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
    }
    if let Some(b'e' | b'E') = bytes.get(*pos) {
        fractional = true;
        *pos += 1;
        if let Some(b'+' | b'-') = bytes.get(*pos) {
            *pos += 1;
        }
        if !bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            return Err(JsonError::at(*pos, "expected a digit in exponent"));
        }
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| JsonError::at(start, "invalid number"))?;
    if !negative && !fractional {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::Number(n));
        }
        // Integers beyond u64 fall through to the f64 representation.
    }
    text.parse::<f64>()
        .ok()
        .filter(|x| x.is_finite())
        .map(Value::Float)
        .ok_or_else(|| JsonError::at(start, "invalid number"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    _ => return Err(JsonError::at(*pos, "unsupported escape")),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => return Err(JsonError::at(*pos, "control character in string")),
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| JsonError::at(*pos, "invalid UTF-8"))?;
                let ch = rest.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(JsonError::at(*pos, "expected `,` or `]`")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            _ => return Err(JsonError::at(*pos, "expected `,` or `}`")),
        }
    }
}

// ---------------------------------------------------------------------------
// Shape / config tree codecs (shared by dope-verify and dope-trace).
// ---------------------------------------------------------------------------

fn field_string(value: &Value, key: &str, what: &str) -> Result<String, JsonError> {
    match value.get(key) {
        Some(Value::String(s)) => Ok(s.clone()),
        Some(_) => Err(JsonError::decode(format!("{what}.{key} must be a string"))),
        None => Err(JsonError::decode(format!("{what} is missing `{key}`"))),
    }
}

fn as_array<'a>(value: &'a Value, what: &str) -> Result<&'a [Value], JsonError> {
    value
        .as_array()
        .ok_or_else(|| JsonError::decode(format!("{what} must be an array")))
}

/// Encodes a [`ShapeNode`] as a JSON value.
#[must_use]
pub fn shape_node_to_value(node: &ShapeNode) -> Value {
    let mut fields = vec![
        ("name".to_string(), Value::String(node.name.clone())),
        (
            "kind".to_string(),
            Value::String(
                match node.kind {
                    TaskKind::Seq => "seq",
                    TaskKind::Par => "par",
                }
                .to_string(),
            ),
        ),
    ];
    if let Some(max) = node.max_extent {
        fields.push(("max_extent".to_string(), Value::Number(u64::from(max))));
    }
    if !node.alternatives.is_empty() {
        fields.push((
            "alternatives".to_string(),
            Value::Array(
                node.alternatives
                    .iter()
                    .map(|alt| Value::Array(alt.iter().map(shape_node_to_value).collect()))
                    .collect(),
            ),
        ));
    }
    Value::Object(fields)
}

/// Encodes a [`ProgramShape`] as `{"tasks": [...]}`.
#[must_use]
pub fn shape_to_value(shape: &ProgramShape) -> Value {
    Value::Object(vec![(
        "tasks".to_string(),
        Value::Array(shape.tasks.iter().map(shape_node_to_value).collect()),
    )])
}

/// Decodes one [`ShapeNode`].
///
/// # Errors
///
/// Returns a [`JsonError`] when required fields are missing or typed
/// wrongly.
pub fn shape_node_from_value(value: &Value) -> Result<ShapeNode, JsonError> {
    let name = field_string(value, "name", "shape node")?;
    let kind = match field_string(value, "kind", "shape node")?.as_str() {
        "seq" => TaskKind::Seq,
        "par" => TaskKind::Par,
        other => {
            return Err(JsonError::decode(format!(
                "shape node kind must be \"seq\" or \"par\", got {other:?}"
            )))
        }
    };
    let max_extent = match value.get("max_extent") {
        None | Some(Value::Null) => None,
        Some(Value::Number(n)) => Some(
            u32::try_from(*n).map_err(|_| JsonError::decode("`max_extent` does not fit in u32"))?,
        ),
        Some(_) => return Err(JsonError::decode("`max_extent` must be an integer or null")),
    };
    let alternatives = match value.get("alternatives") {
        None | Some(Value::Null) => Vec::new(),
        Some(alts) => as_array(alts, "alternatives")?
            .iter()
            .map(|alt| {
                as_array(alt, "alternative")?
                    .iter()
                    .map(shape_node_from_value)
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<Vec<_>, _>>()?,
    };
    Ok(ShapeNode {
        name,
        kind,
        max_extent,
        alternatives,
    })
}

/// Decodes a [`ProgramShape`] from `{"tasks": [...]}`.
///
/// # Errors
///
/// Returns a [`JsonError`] on missing or mistyped fields.
pub fn shape_from_value(value: &Value) -> Result<ProgramShape, JsonError> {
    let tasks = value
        .get("tasks")
        .ok_or_else(|| JsonError::decode("shape is missing `tasks`"))?;
    Ok(ProgramShape::new(
        as_array(tasks, "shape tasks")?
            .iter()
            .map(shape_node_from_value)
            .collect::<Result<Vec<_>, _>>()?,
    ))
}

/// Encodes a [`TaskConfig`] as a JSON value.
#[must_use]
pub fn task_config_to_value(task: &TaskConfig) -> Value {
    let mut fields = vec![
        ("name".to_string(), Value::String(task.name.clone())),
        ("extent".to_string(), Value::Number(u64::from(task.extent))),
    ];
    if let Some(nest) = &task.nested {
        fields.push((
            "nested".to_string(),
            Value::Object(vec![
                (
                    "alternative".to_string(),
                    Value::Number(nest.alternative as u64),
                ),
                (
                    "tasks".to_string(),
                    Value::Array(nest.tasks.iter().map(task_config_to_value).collect()),
                ),
            ]),
        ));
    }
    Value::Object(fields)
}

/// Encodes a [`Config`] as `{"tasks": [...]}`.
#[must_use]
pub fn config_to_value(config: &Config) -> Value {
    Value::Object(vec![(
        "tasks".to_string(),
        Value::Array(config.tasks.iter().map(task_config_to_value).collect()),
    )])
}

/// Decodes one [`TaskConfig`].
///
/// # Errors
///
/// Returns a [`JsonError`] on missing or mistyped fields.
pub fn task_config_from_value(value: &Value) -> Result<TaskConfig, JsonError> {
    let name = field_string(value, "name", "config node")?;
    let extent = match value.get("extent") {
        Some(Value::Number(n)) => {
            u32::try_from(*n).map_err(|_| JsonError::decode("`extent` does not fit in u32"))?
        }
        Some(_) => return Err(JsonError::decode("`extent` must be an integer")),
        None => return Err(JsonError::decode("config node is missing `extent`")),
    };
    let nested = match value.get("nested") {
        None | Some(Value::Null) => None,
        Some(nest) => {
            let alternative = match nest.get("alternative") {
                Some(Value::Number(n)) => usize::try_from(*n)
                    .map_err(|_| JsonError::decode("`alternative` does not fit in usize"))?,
                Some(_) => return Err(JsonError::decode("`alternative` must be an integer")),
                None => return Err(JsonError::decode("nested block is missing `alternative`")),
            };
            let tasks = nest
                .get("tasks")
                .ok_or_else(|| JsonError::decode("nested block is missing `tasks`"))?;
            Some(NestConfig {
                alternative,
                tasks: as_array(tasks, "config tasks")?
                    .iter()
                    .map(task_config_from_value)
                    .collect::<Result<Vec<_>, _>>()?,
            })
        }
    };
    Ok(TaskConfig {
        name,
        extent,
        nested,
    })
}

/// Decodes a [`Config`] from `{"tasks": [...]}`.
///
/// # Errors
///
/// Returns a [`JsonError`] on missing or mistyped fields.
pub fn config_from_value(value: &Value) -> Result<Config, JsonError> {
    let tasks = value
        .get("tasks")
        .ok_or_else(|| JsonError::decode("config is missing `tasks`"))?;
    Ok(Config::new(
        as_array(tasks, "config tasks")?
            .iter()
            .map(task_config_from_value)
            .collect::<Result<Vec<_>, _>>()?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::ShapeNode;

    #[test]
    fn parses_whitespace_and_escapes() {
        let value = parse(" { \"a\\n\" : [ 1 , true , null , \"x\" ] } ").unwrap();
        let arr = value.get("a\n").unwrap();
        assert_eq!(
            arr,
            &Value::Array(vec![
                Value::Number(1),
                Value::Bool(true),
                Value::Null,
                Value::String("x".into()),
            ])
        );
    }

    #[test]
    fn parses_floats_and_negatives() {
        assert_eq!(parse("1.5").unwrap(), Value::Float(1.5));
        assert_eq!(parse("-3").unwrap(), Value::Float(-3.0));
        assert_eq!(parse("2e3").unwrap(), Value::Float(2000.0));
        assert_eq!(parse("-0.25").unwrap(), Value::Float(-0.25));
        assert_eq!(parse("7").unwrap(), Value::Number(7));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("1.").is_err());
        assert!(parse("-").is_err());
        assert!(parse("1e").is_err());
    }

    #[test]
    fn parse_error_carries_offset() {
        let err = parse("[1, ?]").unwrap_err();
        assert_eq!(err.offset, Some(4));
    }

    #[test]
    fn values_round_trip_through_to_json() {
        let cases = [
            "null",
            "true",
            "42",
            "0.5",
            "\"hi \\\"there\\\"\"",
            "[1, 2, [3]]",
            "{\"a\": 1, \"b\": [true, null]}",
        ];
        for text in cases {
            let value = parse(text).unwrap();
            assert_eq!(parse(&value.to_json()).unwrap(), value, "{text}");
        }
    }

    #[test]
    fn from_f64_canonicalizes() {
        assert_eq!(Value::from_f64(3.0), Value::Number(3));
        assert_eq!(Value::from_f64(0.25), Value::Float(0.25));
        assert_eq!(Value::from_f64(f64::NAN), Value::Null);
        assert_eq!(Value::from_f64(f64::INFINITY), Value::Null);
        // Negative integral values stay floats (Number is unsigned).
        assert_eq!(Value::from_f64(-2.0), Value::Float(-2.0));
    }

    #[test]
    fn float_encoding_survives_a_parse_cycle() {
        for x in [0.1, 1.0 / 3.0, 123.456e-7, 9.9e200] {
            let encoded = Value::from_f64(x).to_json();
            let back = parse(&encoded).unwrap().as_f64().unwrap();
            assert_eq!(back, x, "{encoded}");
        }
    }

    fn sample_shape() -> ProgramShape {
        ProgramShape::new(vec![ShapeNode::nest(
            "transcode",
            TaskKind::Par,
            vec![
                ShapeNode::leaf("read", TaskKind::Seq),
                ShapeNode::leaf("transform", TaskKind::Par).with_max_extent(16),
                ShapeNode::leaf("write", TaskKind::Seq),
            ],
        )])
    }

    fn sample_config() -> Config {
        Config::new(vec![TaskConfig::nest(
            "transcode",
            3,
            0,
            vec![
                TaskConfig::leaf("read", 1),
                TaskConfig::leaf("transform", 6),
                TaskConfig::leaf("write", 1),
            ],
        )])
    }

    #[test]
    fn shape_round_trips() {
        let shape = sample_shape();
        let value = shape_to_value(&shape);
        let back = shape_from_value(&parse(&value.to_json()).unwrap()).unwrap();
        assert_eq!(back, shape);
    }

    #[test]
    fn config_round_trips() {
        let config = sample_config();
        let value = config_to_value(&config);
        let back = config_from_value(&parse(&value.to_json()).unwrap()).unwrap();
        assert_eq!(back, config);
    }

    #[test]
    fn decode_rejects_bad_kind() {
        let value = parse(r#"{"name": "t", "kind": "pipe"}"#).unwrap();
        let err = shape_node_from_value(&value).unwrap_err();
        assert!(err.to_string().contains("seq"), "{err}");
    }

    #[test]
    fn decode_reports_missing_fields() {
        let err = config_from_value(&parse("{}").unwrap()).unwrap_err();
        assert!(err.to_string().contains("tasks"), "{err}");
        let err = task_config_from_value(&parse(r#"{"name": "x"}"#).unwrap()).unwrap_err();
        assert!(err.to_string().contains("extent"), "{err}");
    }
}
