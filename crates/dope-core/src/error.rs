//! Error types for the DoPE core crate.

use crate::diag::DiagCode;
use crate::path::TaskPath;

/// A specialized [`Result`](std::result::Result) with [`enum@Error`] as the
/// error type.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while validating or applying parallelism configurations.
///
/// # Example
///
/// ```
/// use dope_core::{Config, Error, ProgramShape, TaskConfig};
///
/// let shape = ProgramShape::new(vec![]);
/// let config = Config::new(vec![TaskConfig::leaf("ghost", 1)]);
/// match config.validate(&shape, 8) {
///     Err(Error::ShapeMismatch { .. }) => {}
///     other => panic!("expected shape mismatch, got {other:?}"),
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The configuration tree does not match the program's shape.
    ShapeMismatch {
        /// Path at which the mismatch was detected.
        path: TaskPath,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A configuration assigns zero extent to a task.
    ZeroExtent {
        /// Path of the offending task.
        path: TaskPath,
    },
    /// A configuration requires more threads than the resource budget allows.
    BudgetExceeded {
        /// Threads required by the configuration.
        required: u32,
        /// Threads available under the administrator's constraint.
        available: u32,
    },
    /// A sequential task was assigned an extent greater than one.
    SequentialExtent {
        /// Path of the offending task.
        path: TaskPath,
        /// The (invalid) extent that was assigned.
        extent: u32,
    },
    /// An alternative index is out of range for a nest node.
    UnknownAlternative {
        /// Path of the offending task.
        path: TaskPath,
        /// The requested alternative.
        requested: usize,
        /// Number of alternatives the shape declares.
        available: usize,
    },
    /// A path does not address a node in the configured tree.
    UnknownPath {
        /// The path that failed to resolve.
        path: TaskPath,
    },
    /// The executive or a harness was misused.
    Usage(
        /// Description of the misuse.
        String,
    ),
    /// A task body failed (panicked) at run time and the failure policy
    /// chose to abort the run.
    TaskFailed {
        /// Path of the failed task.
        path: TaskPath,
        /// The panic payload (or a description of how the task was lost).
        reason: String,
    },
    /// An admission policy carries degenerate parameters (zero capacity
    /// or high watermark, non-positive deadline budget).
    AdmissionPolicy {
        /// Human-readable description of the misconfiguration.
        detail: String,
    },
}

impl Error {
    /// The stable diagnostic code for this error.
    ///
    /// Codes come from the `DV0xx` catalogue in [`crate::diag`], which
    /// the static analyzer in `dope-verify` shares; a config rejected by
    /// [`Config::validate`](crate::Config::validate) with some error maps
    /// to an analyzer diagnostic carrying the same code.
    ///
    /// # Example
    ///
    /// ```
    /// use dope_core::diag::DiagCode;
    /// use dope_core::Error;
    ///
    /// let err = Error::BudgetExceeded { required: 32, available: 24 };
    /// assert_eq!(err.code(), DiagCode::BudgetExceeded);
    /// assert_eq!(err.code().to_string(), "DV001");
    /// ```
    #[must_use]
    pub fn code(&self) -> DiagCode {
        match self {
            // Shape mismatches are reported at finer granularity by the
            // analyzer (DV005/DV011/DV012); the coarse validator funnels
            // them all through name-level mismatch.
            Error::ShapeMismatch { .. } => DiagCode::NameMismatch,
            Error::ZeroExtent { .. } => DiagCode::ZeroExtent,
            Error::BudgetExceeded { .. } => DiagCode::BudgetExceeded,
            Error::SequentialExtent { .. } => DiagCode::SequentialExtent,
            Error::UnknownAlternative { .. } => DiagCode::AltOutOfRange,
            Error::UnknownPath { .. } => DiagCode::UnknownPath,
            Error::Usage(_) => DiagCode::Usage,
            Error::TaskFailed { .. } => DiagCode::TaskFailed,
            Error::AdmissionPolicy { .. } => DiagCode::AdmissionPolicy,
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::ShapeMismatch { path, detail } => {
                write!(f, "configuration does not match shape at {path}: {detail}")
            }
            Error::ZeroExtent { path } => {
                write!(f, "task at {path} was assigned extent zero")
            }
            Error::BudgetExceeded {
                required,
                available,
            } => write!(
                f,
                "configuration needs {required} threads but only {available} are available"
            ),
            Error::SequentialExtent { path, extent } => write!(
                f,
                "sequential task at {path} was assigned extent {extent} (must be 1)"
            ),
            Error::UnknownAlternative {
                path,
                requested,
                available,
            } => write!(
                f,
                "task at {path} has {available} parallelism descriptors but alternative {requested} was requested"
            ),
            Error::UnknownPath { path } => write!(f, "no task at path {path}"),
            Error::Usage(detail) => write!(f, "usage error: {detail}"),
            Error::TaskFailed { path, reason } => {
                write!(f, "task at {path} failed: {reason}")
            }
            Error::AdmissionPolicy { detail } => {
                write!(f, "admission policy misconfigured: {detail}")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errors = [
            Error::ShapeMismatch {
                path: TaskPath::root_child(0),
                detail: "name".into(),
            },
            Error::ZeroExtent {
                path: TaskPath::root_child(1),
            },
            Error::BudgetExceeded {
                required: 32,
                available: 24,
            },
            Error::SequentialExtent {
                path: TaskPath::root_child(0),
                extent: 4,
            },
            Error::UnknownAlternative {
                path: TaskPath::root_child(0),
                requested: 2,
                available: 1,
            },
            Error::UnknownPath {
                path: TaskPath::root_child(7),
            },
            Error::Usage("spawned twice".into()),
            Error::TaskFailed {
                path: TaskPath::root_child(0),
                reason: "worker panicked: boom".into(),
            },
            Error::AdmissionPolicy {
                detail: "Shed admission with high_water 0 would shed everything".into(),
            },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase(), "{msg}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn codes_are_stable_and_round_trip() {
        use crate::diag::DiagCode;

        let cases = [
            (
                Error::ShapeMismatch {
                    path: TaskPath::root_child(0),
                    detail: "name".into(),
                },
                "DV005",
            ),
            (
                Error::ZeroExtent {
                    path: TaskPath::root_child(1),
                },
                "DV007",
            ),
            (
                Error::BudgetExceeded {
                    required: 32,
                    available: 24,
                },
                "DV001",
            ),
            (
                Error::SequentialExtent {
                    path: TaskPath::root_child(0),
                    extent: 4,
                },
                "DV003",
            ),
            (
                Error::UnknownAlternative {
                    path: TaskPath::root_child(0),
                    requested: 2,
                    available: 1,
                },
                "DV004",
            ),
            (
                Error::UnknownPath {
                    path: TaskPath::root_child(7),
                },
                "DV013",
            ),
            (Error::Usage("spawned twice".into()), "DV014"),
            (
                Error::TaskFailed {
                    path: TaskPath::root_child(0),
                    reason: "worker panicked: boom".into(),
                },
                "DV016",
            ),
            (
                Error::AdmissionPolicy {
                    detail: "zero capacity".into(),
                },
                "DV017",
            ),
        ];
        for (err, expected) in cases {
            let code = err.code();
            assert_eq!(code.to_string(), expected, "{err}");
            // Display output parses back to the same code.
            let parsed: DiagCode = code.to_string().parse().unwrap();
            assert_eq!(parsed, code);
        }
    }
}
