//! Structured diagnostics shared by validation and static analysis.
//!
//! Every problem the workspace can report about a [`Config`](crate::Config)
//! against a [`ProgramShape`](crate::ProgramShape) carries a **stable
//! code** from the `DV0xx` catalogue below. The codes are part of the
//! public contract: tools (CI gates, the `dope-verify` CLI, editors) may
//! match on them, so once published a code's meaning never changes.
//!
//! | Code  | Meaning                                                     |
//! |-------|-------------------------------------------------------------|
//! | DV001 | thread budget exceeded                                      |
//! | DV002 | thread budget heavily under-subscribed (warning)            |
//! | DV003 | sequential task with extent > 1                             |
//! | DV004 | alternative index out of range                              |
//! | DV005 | task name mismatch between config and shape                 |
//! | DV006 | extent above the shape's declared `max_extent`              |
//! | DV007 | zero extent                                                 |
//! | DV008 | empty or degenerate nest                                    |
//! | DV009 | unreachable alternative (warning)                           |
//! | DV010 | pipeline stage starvation                                   |
//! | DV011 | arity mismatch between config and shape                     |
//! | DV012 | structural mismatch (leaf vs nest)                          |
//! | DV013 | path does not resolve                                       |
//! | DV014 | API misuse                                                  |
//! | DV015 | duplicate task name among siblings (warning)                |
//! | DV016 | task body failed (panicked) at run time                     |
//! | DV017 | admission policy misconfigured                              |

use std::fmt;
use std::str::FromStr;

use crate::path::TaskPath;

/// Stable diagnostic codes (`DV0xx`) for configuration problems.
///
/// # Example
///
/// ```
/// use dope_core::diag::DiagCode;
///
/// let code: DiagCode = "DV001".parse().unwrap();
/// assert_eq!(code, DiagCode::BudgetExceeded);
/// assert_eq!(code.to_string(), "DV001");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum DiagCode {
    /// DV001: the configuration needs more threads than the budget allows.
    BudgetExceeded,
    /// DV002: the configuration uses a small fraction of the budget.
    UnderSubscription,
    /// DV003: a sequential task was assigned extent greater than one.
    SequentialExtent,
    /// DV004: a nest selects an alternative the shape does not declare.
    AltOutOfRange,
    /// DV005: a task name in the config differs from the shape's name.
    NameMismatch,
    /// DV006: an extent exceeds the shape's declared `max_extent`.
    MaxExtentExceeded,
    /// DV007: a task was assigned extent zero.
    ZeroExtent,
    /// DV008: a nest alternative contains no tasks, or a shape node
    /// declares no alternatives at all.
    EmptyNest,
    /// DV009: a shape alternative can never be selected.
    UnreachableAlternative,
    /// DV010: a pipeline stage has far less capacity than its siblings.
    PipeStarvation,
    /// DV011: a config level has a different number of tasks than the
    /// shape's selected alternative.
    ArityMismatch,
    /// DV012: a config node is a leaf where the shape declares a nest,
    /// or vice versa.
    StructureMismatch,
    /// DV013: a path does not address a node in the tree.
    UnknownPath,
    /// DV014: the executive or a harness was misused.
    Usage,
    /// DV015: two sibling tasks share a name, making paths ambiguous to
    /// humans (addressing is positional, so this is only a warning).
    DuplicateTaskName,
    /// DV016: a task body failed (panicked) at run time. This code is
    /// emitted by the runtime's supervision layer, never by the static
    /// analyzer — no configuration can predict a panic.
    TaskFailed,
    /// DV017: an admission policy carries degenerate parameters (zero
    /// capacity / high watermark, or a non-positive deadline budget):
    /// the gate would admit nothing.
    AdmissionPolicy,
}

impl DiagCode {
    /// All catalogued codes, in numeric order.
    pub const ALL: [DiagCode; 17] = [
        DiagCode::BudgetExceeded,
        DiagCode::UnderSubscription,
        DiagCode::SequentialExtent,
        DiagCode::AltOutOfRange,
        DiagCode::NameMismatch,
        DiagCode::MaxExtentExceeded,
        DiagCode::ZeroExtent,
        DiagCode::EmptyNest,
        DiagCode::UnreachableAlternative,
        DiagCode::PipeStarvation,
        DiagCode::ArityMismatch,
        DiagCode::StructureMismatch,
        DiagCode::UnknownPath,
        DiagCode::Usage,
        DiagCode::DuplicateTaskName,
        DiagCode::TaskFailed,
        DiagCode::AdmissionPolicy,
    ];

    /// The stable textual form, e.g. `"DV001"`.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            DiagCode::BudgetExceeded => "DV001",
            DiagCode::UnderSubscription => "DV002",
            DiagCode::SequentialExtent => "DV003",
            DiagCode::AltOutOfRange => "DV004",
            DiagCode::NameMismatch => "DV005",
            DiagCode::MaxExtentExceeded => "DV006",
            DiagCode::ZeroExtent => "DV007",
            DiagCode::EmptyNest => "DV008",
            DiagCode::UnreachableAlternative => "DV009",
            DiagCode::PipeStarvation => "DV010",
            DiagCode::ArityMismatch => "DV011",
            DiagCode::StructureMismatch => "DV012",
            DiagCode::UnknownPath => "DV013",
            DiagCode::Usage => "DV014",
            DiagCode::DuplicateTaskName => "DV015",
            DiagCode::TaskFailed => "DV016",
            DiagCode::AdmissionPolicy => "DV017",
        }
    }

    /// The severity this code is reported at by default.
    ///
    /// Warnings describe configurations that are legal but probably not
    /// what the developer intended; errors describe configurations the
    /// runtime would reject.
    #[must_use]
    pub fn default_severity(self) -> Severity {
        match self {
            DiagCode::UnderSubscription
            | DiagCode::UnreachableAlternative
            | DiagCode::PipeStarvation
            | DiagCode::DuplicateTaskName => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error returned when parsing an unknown diagnostic code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDiagCodeError(String);

impl fmt::Display for ParseDiagCodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown diagnostic code: {:?}", self.0)
    }
}

impl std::error::Error for ParseDiagCodeError {}

impl FromStr for DiagCode {
    type Err = ParseDiagCodeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DiagCode::ALL
            .into_iter()
            .find(|code| code.as_str() == s)
            .ok_or_else(|| ParseDiagCodeError(s.to_string()))
    }
}

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Legal but suspicious; the runtime would accept the configuration.
    Warning,
    /// The runtime would reject the configuration.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One structured finding about a configuration.
///
/// Unlike [`Error`](crate::Error), which models the runtime's
/// first-error-wins validation, diagnostics are collected exhaustively:
/// an analysis pass reports *every* problem it can find, each tagged
/// with a stable [`DiagCode`], the offending [`TaskPath`], a severity,
/// and a suggested fix.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable catalogue code.
    pub code: DiagCode,
    /// How serious the finding is.
    pub severity: Severity,
    /// Path of the offending node (the root path for whole-tree findings).
    pub path: TaskPath,
    /// Human-readable description of the problem.
    pub message: String,
    /// Suggested fix, if the analysis can propose one.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// Creates a diagnostic at `code`'s default severity.
    #[must_use]
    pub fn new(code: DiagCode, path: TaskPath, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.default_severity(),
            path,
            message: message.into(),
            suggestion: None,
        }
    }

    /// Attaches a suggested fix.
    #[must_use]
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Self {
        self.suggestion = Some(suggestion.into());
        self
    }

    /// `true` if this diagnostic is an error (not a warning).
    #[must_use]
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] at {}: {}",
            self.severity, self.code, self.path, self.message
        )?;
        if let Some(suggestion) = &self.suggestion {
            write!(f, " (suggestion: {suggestion})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_through_display() {
        for code in DiagCode::ALL {
            let text = code.to_string();
            assert!(text.starts_with("DV"), "{text}");
            assert_eq!(text.len(), 5, "{text}");
            let parsed: DiagCode = text.parse().unwrap();
            assert_eq!(parsed, code);
        }
    }

    #[test]
    fn codes_are_unique_and_ordered() {
        let texts: Vec<&str> = DiagCode::ALL.iter().map(|c| c.as_str()).collect();
        let mut sorted = texts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted, texts,
            "codes must be unique and numerically ordered"
        );
    }

    #[test]
    fn unknown_code_fails_to_parse() {
        assert!("DV099".parse::<DiagCode>().is_err());
        assert!("".parse::<DiagCode>().is_err());
        assert!("dv001".parse::<DiagCode>().is_err());
    }

    #[test]
    fn severity_defaults() {
        assert_eq!(DiagCode::BudgetExceeded.default_severity(), Severity::Error);
        assert_eq!(
            DiagCode::UnderSubscription.default_severity(),
            Severity::Warning
        );
        assert_eq!(
            DiagCode::PipeStarvation.default_severity(),
            Severity::Warning
        );
    }

    #[test]
    fn diagnostic_display_contains_parts() {
        let d = Diagnostic::new(
            DiagCode::ZeroExtent,
            TaskPath::root_child(2),
            "task `write` has extent zero",
        )
        .with_suggestion("set extent to at least 1");
        let text = d.to_string();
        assert!(text.contains("DV007"), "{text}");
        assert!(text.contains("error"), "{text}");
        assert!(text.contains('2'), "{text}");
        assert!(text.contains("suggestion"), "{text}");
        assert!(d.is_error());
    }
}
