//! Task bodies: the paper's *functors*.

use crate::status::{Directive, TaskStatus};

/// Execution context handed to a task body on every invocation.
///
/// This is the Rust rendering of the paper's `Task::begin` / `Task::end`
/// API (Table 2): a body brackets its CPU-intensive section with
/// [`begin`](TaskCx::begin) and [`end`](TaskCx::end) so the executive can
/// record execution times, and both calls return a [`Directive`] through
/// which the executive conveys its intent to reconfigure.
///
/// The context also tells the body where it sits in the current parallelism
/// configuration: which replica of the task it belongs to, which of the
/// `extent` concurrent workers it is, and the extent itself — enough for a
/// DOALL body to partition an iteration space.
pub trait TaskCx {
    /// Signals that the CPU-intensive part of an invocation begins.
    ///
    /// Starts the per-invocation timer. Returns [`Directive::Suspend`] when
    /// the executive wants the task to steer into a consistent state.
    fn begin(&mut self) -> Directive;

    /// Signals that the CPU-intensive part of an invocation ended.
    ///
    /// Stops the per-invocation timer and folds the sample into the
    /// monitor. Returns the current executive directive.
    fn end(&mut self) -> Directive;

    /// Current executive directive without touching the timers.
    ///
    /// Bodies that block on queues should poll this (or use a timed
    /// dequeue) so reconfiguration is never delayed indefinitely.
    fn directive(&self) -> Directive;

    /// The replica of this task the body belongs to (outer-loop instance).
    fn replica(&self) -> u32;

    /// Index of this worker within the task's extent, in `0..extent()`.
    fn worker(&self) -> u32;

    /// Number of workers concurrently invoking this task's body.
    fn extent(&self) -> u32;
}

/// A task's functionality: the paper's functor (Figure 4b).
///
/// The executor runs the paper's control-flow abstraction (Figure 4a):
///
/// ```text
/// body.init();
/// loop {
///     match body.invoke(cx) {
///         Executing => continue,
///         Suspended | Finished => break,
///     }
/// }
/// body.fini();
/// ```
///
/// Each worker thread owns its *own* body instance (produced by a
/// [`BodyFactory`](crate::BodyFactory)), so `invoke` takes `&mut self`;
/// state shared between workers travels through the structures the body
/// captures (queues, atomics).
///
/// # Example
///
/// ```
/// use dope_core::{body_fn, TaskBody, TaskStatus};
///
/// let mut remaining = 3;
/// let mut body = body_fn(move |cx| {
///     cx.begin();
///     // ... CPU-intensive work ...
///     cx.end();
///     remaining -= 1;
///     if remaining == 0 {
///         TaskStatus::Finished
///     } else {
///         TaskStatus::Executing
///     }
/// });
/// # let mut cx = dope_core::task::NullCx::default();
/// # assert_eq!(body.invoke(&mut cx), TaskStatus::Executing);
/// ```
pub trait TaskBody: Send {
    /// Runs one iteration of the task's loop.
    fn invoke(&mut self, cx: &mut dyn TaskCx) -> TaskStatus;

    /// Called once before the task starts executing in an epoch.
    ///
    /// Mirrors the paper's `InitCB`: restore a globally consistent state
    /// before the parallel region is re-entered after reconfiguration.
    fn init(&mut self) {}

    /// Called once after the task stops executing in an epoch (whether it
    /// finished or suspended).
    ///
    /// Mirrors the paper's `FiniCB`: notify downstream tasks (e.g. close or
    /// poison a queue) so the whole nest reaches a consistent state.
    fn fini(&mut self, status: TaskStatus) {
        let _ = status;
    }
}

/// A [`TaskBody`] built from a closure.
///
/// Returned by [`body_fn`]; useful for simple stages and tests.
pub struct FnBody<F> {
    f: F,
}

impl<F> std::fmt::Debug for FnBody<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnBody").finish_non_exhaustive()
    }
}

impl<F> TaskBody for FnBody<F>
where
    F: FnMut(&mut dyn TaskCx) -> TaskStatus + Send,
{
    fn invoke(&mut self, cx: &mut dyn TaskCx) -> TaskStatus {
        (self.f)(cx)
    }
}

/// Wraps a closure as a [`TaskBody`].
///
/// # Example
///
/// ```
/// use dope_core::{body_fn, TaskStatus};
///
/// let _body = body_fn(|cx| {
///     cx.begin();
///     cx.end();
///     TaskStatus::Finished
/// });
/// ```
pub fn body_fn<F>(f: F) -> FnBody<F>
where
    F: FnMut(&mut dyn TaskCx) -> TaskStatus + Send,
{
    FnBody { f }
}

/// A context that never suspends and records nothing.
///
/// Useful for unit-testing bodies in isolation, outside any executive.
#[derive(Debug, Default, Clone)]
pub struct NullCx {
    /// Replica index reported to the body.
    pub replica: u32,
    /// Worker index reported to the body.
    pub worker: u32,
    /// Extent reported to the body (defaults to 1 via [`NullCx::default`]).
    pub extent: u32,
}

impl NullCx {
    /// A context describing worker `worker` of `extent` workers.
    #[must_use]
    pub fn with_slot(replica: u32, worker: u32, extent: u32) -> Self {
        NullCx {
            replica,
            worker,
            extent,
        }
    }
}

impl TaskCx for NullCx {
    fn begin(&mut self) -> Directive {
        Directive::Continue
    }

    fn end(&mut self) -> Directive {
        Directive::Continue
    }

    fn directive(&self) -> Directive {
        Directive::Continue
    }

    fn replica(&self) -> u32 {
        self.replica
    }

    fn worker(&self) -> u32 {
        self.worker
    }

    fn extent(&self) -> u32 {
        self.extent.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_body_runs_closure() {
        let mut count = 0;
        let mut body = body_fn(move |_cx| {
            count += 1;
            if count < 3 {
                TaskStatus::Executing
            } else {
                TaskStatus::Finished
            }
        });
        let mut cx = NullCx::default();
        assert_eq!(body.invoke(&mut cx), TaskStatus::Executing);
        assert_eq!(body.invoke(&mut cx), TaskStatus::Executing);
        assert_eq!(body.invoke(&mut cx), TaskStatus::Finished);
    }

    #[test]
    fn null_cx_reports_slot() {
        let cx = NullCx::with_slot(2, 1, 4);
        assert_eq!(cx.replica(), 2);
        assert_eq!(cx.worker(), 1);
        assert_eq!(cx.extent(), 4);
        assert_eq!(cx.directive(), Directive::Continue);
    }

    #[test]
    fn default_null_cx_extent_is_at_least_one() {
        let cx = NullCx::default();
        assert_eq!(cx.extent(), 1);
    }

    #[test]
    fn default_callbacks_are_noops() {
        struct Plain;
        impl TaskBody for Plain {
            fn invoke(&mut self, _cx: &mut dyn TaskCx) -> TaskStatus {
                TaskStatus::Finished
            }
        }
        let mut p = Plain;
        p.init();
        p.fini(TaskStatus::Finished);
    }
}
