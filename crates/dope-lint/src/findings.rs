//! The `DL0xx` diagnostic catalogue and the report it populates.
//!
//! Like the `DV0xx` codes in `dope-core`, the `DL0xx` codes are a
//! **stable public contract**: CI gates and editors may match on them,
//! so once published a code's meaning never changes. The catalogue lives
//! in `docs/static-analysis.md` with one worked finding per code.

use std::fmt;
use std::str::FromStr;

use dope_core::json::{self, Value};

/// Stable diagnostic codes emitted by the workspace analyzer.
///
/// # Example
///
/// ```
/// use dope_lint::DlCode;
///
/// let code: DlCode = "DL004".parse().unwrap();
/// assert_eq!(code, DlCode::LockOrder);
/// assert_eq!(code.to_string(), "DL004");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum DlCode {
    /// DL001: a `TraceEvent` kind is not handled by every trace consumer
    /// (codec, timeline, stats, replay) or is missing from `KINDS`.
    EventKindExhaustiveness,
    /// DL002: a metric name drifted between registration sites,
    /// `dope_metrics::names::ALL`, and the operator guide's table.
    MetricNameDrift,
    /// DL003: an `Error::code()` mapping or `DiagCode` catalogue entry
    /// drifted from `docs/event-schema.md`.
    DvCodeDrift,
    /// DL004: a lock acquisition violates the declared lock-order
    /// manifest (descending rank, re-entrancy, undeclared lock, or a
    /// cycle in the observed acquisition graph).
    LockOrder,
    /// DL005: a forbidden API in a hot path — `unwrap`/`expect` in
    /// `dope-runtime`, unbounded channel construction, or a wall-clock
    /// read inside `dope-trace` record paths.
    ForbiddenApi,
    /// DL006: the JSONL schema lost a field or variant relative to the
    /// committed baseline (the additive-field contract).
    AdditiveField,
    /// DL007: a relative Markdown link in `README.md` or `docs/*.md`
    /// resolves to no file, or its `#fragment` matches no heading in
    /// the target document.
    DocsLink,
}

impl DlCode {
    /// All catalogued codes, in numeric order.
    pub const ALL: [DlCode; 7] = [
        DlCode::EventKindExhaustiveness,
        DlCode::MetricNameDrift,
        DlCode::DvCodeDrift,
        DlCode::LockOrder,
        DlCode::ForbiddenApi,
        DlCode::AdditiveField,
        DlCode::DocsLink,
    ];

    /// The stable textual form, e.g. `"DL001"`.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            DlCode::EventKindExhaustiveness => "DL001",
            DlCode::MetricNameDrift => "DL002",
            DlCode::DvCodeDrift => "DL003",
            DlCode::LockOrder => "DL004",
            DlCode::ForbiddenApi => "DL005",
            DlCode::AdditiveField => "DL006",
            DlCode::DocsLink => "DL007",
        }
    }

    /// A one-line description of what the code checks.
    #[must_use]
    pub fn title(self) -> &'static str {
        match self {
            DlCode::EventKindExhaustiveness => "event-kind exhaustiveness across trace consumers",
            DlCode::MetricNameDrift => "metric-name drift between registry, catalogue, and docs",
            DlCode::DvCodeDrift => "DV-code drift between Error::code, DiagCode, and docs",
            DlCode::LockOrder => "lock-order discipline against the declared manifest",
            DlCode::ForbiddenApi => "forbidden APIs in hot paths",
            DlCode::AdditiveField => "additive-field contract against the schema baseline",
            DlCode::DocsLink => "relative-link integrity across the documentation book",
        }
    }
}

impl fmt::Display for DlCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error returned when parsing an unknown `DL0xx` string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDlCodeError(String);

impl fmt::Display for ParseDlCodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown DL code `{}`", self.0)
    }
}

impl std::error::Error for ParseDlCodeError {}

impl FromStr for DlCode {
    type Err = ParseDlCodeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DlCode::ALL
            .into_iter()
            .find(|c| c.as_str() == s)
            .ok_or_else(|| ParseDlCodeError(s.to_string()))
    }
}

/// One diagnostic: a code, a `file:line` span, and a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The catalogue code.
    pub code: DlCode,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line of the finding's anchor.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{}: {}",
            self.code, self.file, self.line, self.message
        )
    }
}

/// The result of running the analyzer: findings, waived findings, and
/// the anchors (files the passes analyze) that could not be found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// Live findings — these fail the gate.
    pub findings: Vec<Finding>,
    /// Findings suppressed by an in-source waiver comment. Kept so the
    /// report stays honest about what was silenced.
    pub waived: Vec<Finding>,
    /// Pass anchors (e.g. `crates/dope-trace/src/event.rs`) missing from
    /// the analyzed tree. Fatal under `--strict`; fixture corpora that
    /// exercise one pass at a time ignore them.
    pub missing_anchors: Vec<String>,
}

impl Report {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        Report::default()
    }

    /// True when there is nothing to report. Under `strict`, missing
    /// anchors also count as findings.
    #[must_use]
    pub fn is_clean(&self, strict: bool) -> bool {
        self.findings.is_empty() && (!strict || self.missing_anchors.is_empty())
    }

    /// Sorts findings by code, then file, then line — the stable order
    /// the CLI prints and tests assert on.
    pub fn sort(&mut self) {
        let key = |f: &Finding| (f.code, f.file.clone(), f.line);
        self.findings.sort_by_key(key);
        self.waived.sort_by_key(key);
        self.missing_anchors.sort();
    }

    /// Renders the human-readable table plus a summary line.
    #[must_use]
    pub fn render(&self, strict: bool) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        for f in &self.waived {
            out.push_str(&format!("waived {f}\n"));
        }
        for anchor in &self.missing_anchors {
            out.push_str(&format!(
                "{}anchor missing: {anchor}\n",
                if strict { "" } else { "note: " }
            ));
        }
        out.push_str(&format!(
            "{} finding{}, {} waived, {} anchor{} missing\n",
            self.findings.len(),
            if self.findings.len() == 1 { "" } else { "s" },
            self.waived.len(),
            self.missing_anchors.len(),
            if self.missing_anchors.len() == 1 {
                ""
            } else {
                "s"
            },
        ));
        out
    }

    /// Serializes the report as one line of strict JSON (see
    /// [`dope_core::json`]).
    #[must_use]
    pub fn to_json(&self) -> String {
        let finding = |f: &Finding| {
            Value::Object(vec![
                ("code".into(), Value::String(f.code.as_str().into())),
                ("file".into(), Value::String(f.file.clone())),
                ("line".into(), Value::Number(u64::from(f.line))),
                ("message".into(), Value::String(f.message.clone())),
            ])
        };
        let doc = Value::Object(vec![
            ("v".into(), Value::Number(1)),
            (
                "findings".into(),
                Value::Array(self.findings.iter().map(finding).collect()),
            ),
            (
                "waived".into(),
                Value::Array(self.waived.iter().map(finding).collect()),
            ),
            (
                "missing_anchors".into(),
                Value::Array(
                    self.missing_anchors
                        .iter()
                        .map(|a| Value::String(a.clone()))
                        .collect(),
                ),
            ),
        ]);
        doc.to_json()
    }

    /// Parses a report previously produced by [`Report::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`json::JsonError`] when the text is not strict JSON or
    /// does not match the report schema (unknown version, missing or
    /// mistyped fields, unknown DL codes).
    pub fn from_json(text: &str) -> Result<Report, json::JsonError> {
        let doc = json::parse(text)?;
        let version = doc
            .get("v")
            .and_then(Value::as_u64)
            .ok_or_else(|| json::JsonError::decode("report is missing its `v` field"))?;
        if version != 1 {
            return Err(json::JsonError::decode(format!(
                "unsupported report version {version}"
            )));
        }
        let decode_list = |key: &str| -> Result<Vec<Finding>, json::JsonError> {
            let Some(Value::Array(items)) = doc.get(key) else {
                return Err(json::JsonError::decode(format!("`{key}` must be an array")));
            };
            items.iter().map(decode_finding).collect()
        };
        let findings = decode_list("findings")?;
        let waived = decode_list("waived")?;
        let missing_anchors = match doc.get("missing_anchors") {
            Some(Value::Array(items)) => items
                .iter()
                .map(|v| match v {
                    Value::String(s) => Ok(s.clone()),
                    _ => Err(json::JsonError::decode("anchors must be strings")),
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => {
                return Err(json::JsonError::decode(
                    "`missing_anchors` must be an array",
                ))
            }
        };
        Ok(Report {
            findings,
            waived,
            missing_anchors,
        })
    }
}

fn decode_finding(v: &Value) -> Result<Finding, json::JsonError> {
    let str_field = |key: &str| -> Result<String, json::JsonError> {
        match v.get(key) {
            Some(Value::String(s)) => Ok(s.clone()),
            _ => Err(json::JsonError::decode(format!(
                "finding is missing string field `{key}`"
            ))),
        }
    };
    let code: DlCode = str_field("code")?
        .parse()
        .map_err(|e: ParseDlCodeError| json::JsonError::decode(e.to_string()))?;
    let line = v
        .get("line")
        .and_then(Value::as_u64)
        .ok_or_else(|| json::JsonError::decode("finding is missing numeric field `line`"))?;
    Ok(Finding {
        code,
        file: str_field("file")?,
        line: u32::try_from(line)
            .map_err(|_| json::JsonError::decode("finding line out of range"))?,
        message: str_field("message")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            findings: vec![Finding {
                code: DlCode::ForbiddenApi,
                file: "crates/dope-runtime/src/pool.rs".into(),
                line: 96,
                message: "`unwrap()` in runtime code".into(),
            }],
            waived: vec![Finding {
                code: DlCode::ForbiddenApi,
                file: "crates/dope-runtime/src/executive.rs".into(),
                line: 7,
                message: "unbounded channel".into(),
            }],
            missing_anchors: vec!["crates/dope-lint/lock-order.txt".into()],
        }
    }

    #[test]
    fn codes_round_trip_through_display_and_parse() {
        for code in DlCode::ALL {
            let parsed: DlCode = code.to_string().parse().unwrap();
            assert_eq!(parsed, code);
        }
        assert!("DL099".parse::<DlCode>().is_err());
    }

    #[test]
    fn json_round_trips() {
        let report = sample();
        let back = Report::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn from_json_rejects_malformed_reports() {
        assert!(Report::from_json("not json").is_err());
        assert!(Report::from_json("{}").is_err());
        assert!(Report::from_json(
            r#"{"v": 2, "findings": [], "waived": [], "missing_anchors": []}"#
        )
        .is_err());
        assert!(Report::from_json(
            r#"{"v": 1, "findings": [{"code": "DL099", "file": "f", "line": 1, "message": "m"}], "waived": [], "missing_anchors": []}"#
        )
        .is_err());
    }

    #[test]
    fn cleanliness_depends_on_strictness() {
        let mut r = Report::new();
        assert!(r.is_clean(true));
        r.missing_anchors.push("x".into());
        assert!(r.is_clean(false));
        assert!(!r.is_clean(true));
        r.findings.push(sample().findings[0].clone());
        assert!(!r.is_clean(false));
    }

    #[test]
    fn render_summarizes() {
        let text = sample().render(false);
        assert!(
            text.contains("DL005 crates/dope-runtime/src/pool.rs:96:"),
            "{text}"
        );
        assert!(text.contains("waived DL005"), "{text}");
        assert!(
            text.contains("1 finding, 1 waived, 1 anchor missing"),
            "{text}"
        );
    }
}
