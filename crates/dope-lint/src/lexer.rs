//! A lightweight, panic-free Rust lexer.
//!
//! `dope-lint` deliberately carries no `rustc` or `syn` dependency (the
//! build environment is offline; see `shims/README.md`), so its passes
//! work on a token stream produced by this hand-rolled lexer. It
//! understands exactly as much Rust as the analyses need:
//!
//! * identifiers and lifetimes (`'a` vs the char literal `'a'`),
//! * string, raw-string, byte-string, char, and numeric literals,
//! * line and block comments (nested), **kept** in the stream so the
//!   waiver scanner can read them,
//! * everything else as single-character punctuation.
//!
//! Every token carries a 1-based `line`/`col` span pointing at its first
//! character. The lexer never panics on arbitrary input and never loses
//! text: malformed literals degrade to best-effort tokens that still end
//! inside the file (a property the crate's proptests pin down).
//!
//! # Example
//!
//! ```
//! use dope_lint::lexer::{tokenize, TokKind};
//!
//! let toks = tokenize("let x = m.lock(); // dope-lint: allow(DL005): why");
//! assert_eq!(toks[0].text, "let");
//! assert!(toks.iter().any(|t| t.kind == TokKind::LineComment));
//! ```

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `lock`, `TraceEvent`).
    Ident,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// A string literal, raw or plain, quotes included in `text`.
    Str,
    /// A char literal (`'x'`, `'\n'`).
    Char,
    /// A numeric literal (`42`, `0x1f`, `1.5e3`, `100_000u64`).
    Number,
    /// A single punctuation character (`.`, `:`, `{`, ...).
    Punct,
    /// A `// ...` comment (doc comments included), newline excluded.
    LineComment,
    /// A `/* ... */` comment, possibly nested, delimiters included.
    BlockComment,
}

/// One lexeme with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The kind of lexeme.
    pub kind: TokKind,
    /// The lexeme text, verbatim from the source.
    pub text: String,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column (in characters) of the first character.
    pub col: u32,
}

impl Token {
    /// True for comment tokens (which most passes skip).
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// True when this token is the identifier `word`.
    #[must_use]
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text == word
    }

    /// True when this token is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.starts_with(c)
    }

    /// The decoded value of a string-literal token (`None` for other
    /// kinds). Handles plain strings with the common escapes and raw
    /// strings; unknown escapes are preserved verbatim.
    #[must_use]
    pub fn str_value(&self) -> Option<String> {
        if self.kind != TokKind::Str {
            return None;
        }
        let t = self.text.as_str();
        // Raw (and byte) strings: strip the prefix, hashes, and quotes.
        if let Some(rest) = t.strip_prefix('r').or_else(|| t.strip_prefix("br")) {
            let hashes = rest.chars().take_while(|&c| c == '#').count();
            let body = &rest[hashes..];
            let body = body.strip_prefix('"').unwrap_or(body);
            let end = body.len().saturating_sub(1 + hashes);
            return Some(body.get(..end).unwrap_or(body).to_string());
        }
        let body = t
            .strip_prefix('b')
            .unwrap_or(t)
            .trim_start_matches('"')
            .trim_end_matches('"');
        let mut out = String::with_capacity(body.len());
        let mut chars = body.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('r') => out.push('\r'),
                Some('0') => out.push('\0'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        }
        Some(out)
    }
}

/// Character-level cursor with line/column accounting.
struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            chars: src.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Tokenizes `src`. Comments are kept; whitespace is dropped. The
/// function is total: any input (including invalid UTF-8-adjacent
/// garbage that made it into a `&str`, unterminated literals, stray
/// quotes) produces a token list without panicking.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn tokenize(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        let mut text = String::new();
        let kind = match c {
            '/' => {
                cur.bump();
                text.push('/');
                match cur.peek() {
                    Some('/') => {
                        while let Some(n) = cur.peek() {
                            if n == '\n' {
                                break;
                            }
                            text.push(n);
                            cur.bump();
                        }
                        TokKind::LineComment
                    }
                    Some('*') => {
                        text.push('*');
                        cur.bump();
                        let mut depth = 1u32;
                        let mut prev = '\0';
                        while depth > 0 {
                            let Some(n) = cur.bump() else { break };
                            text.push(n);
                            if prev == '/' && n == '*' {
                                depth += 1;
                                prev = '\0';
                            } else if prev == '*' && n == '/' {
                                depth -= 1;
                                prev = '\0';
                            } else {
                                prev = n;
                            }
                        }
                        TokKind::BlockComment
                    }
                    _ => TokKind::Punct,
                }
            }
            '"' => {
                lex_string(&mut cur, &mut text);
                TokKind::Str
            }
            '\'' => {
                cur.bump();
                text.push('\'');
                lex_quote_tail(&mut cur, &mut text)
            }
            'r' | 'b' => {
                // Possible raw/byte string prefix; otherwise an ident.
                cur.bump();
                text.push(c);
                if c == 'b' && cur.peek() == Some('r') {
                    text.push('r');
                    cur.bump();
                }
                let mut hashes = 0usize;
                if text.ends_with('r') {
                    while cur.peek() == Some('#') {
                        // Tentatively consume hashes; if no quote follows
                        // this was `r#ident` (a raw identifier) — emit
                        // what we have as an ident plus the hashes we ate.
                        hashes += 1;
                        text.push('#');
                        cur.bump();
                    }
                }
                if text.ends_with(['r', '#']) && cur.peek() == Some('"') {
                    text.push('"');
                    cur.bump();
                    // Raw string: read until `"` followed by `hashes` #s.
                    while let Some(n) = cur.bump() {
                        text.push(n);
                        if n == '"' {
                            let mut seen = 0usize;
                            while seen < hashes && cur.peek() == Some('#') {
                                text.push('#');
                                cur.bump();
                                seen += 1;
                            }
                            if seen == hashes {
                                break;
                            }
                        }
                    }
                    TokKind::Str
                } else if c == 'b' && cur.peek() == Some('"') {
                    let mut inner = String::new();
                    lex_string(&mut cur, &mut inner);
                    text.push_str(&inner);
                    TokKind::Str
                } else {
                    while let Some(n) = cur.peek() {
                        if is_ident_continue(n) {
                            text.push(n);
                            cur.bump();
                        } else {
                            break;
                        }
                    }
                    TokKind::Ident
                }
            }
            d if d.is_ascii_digit() => {
                cur.bump();
                text.push(d);
                while let Some(n) = cur.peek() {
                    if is_ident_continue(n) {
                        text.push(n);
                        cur.bump();
                    } else if n == '.' {
                        // `1.5` continues the number; `1.max(2)` does not.
                        let mut ahead = cur.chars.clone();
                        ahead.next();
                        if ahead.next().is_some_and(|a| a.is_ascii_digit()) {
                            text.push('.');
                            cur.bump();
                        } else {
                            break;
                        }
                    } else {
                        break;
                    }
                }
                TokKind::Number
            }
            i if is_ident_start(i) => {
                cur.bump();
                text.push(i);
                while let Some(n) = cur.peek() {
                    if is_ident_continue(n) {
                        text.push(n);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                TokKind::Ident
            }
            p => {
                cur.bump();
                text.push(p);
                TokKind::Punct
            }
        };
        out.push(Token {
            kind,
            text,
            line,
            col,
        });
    }
    out
}

/// Lexes a `"..."` string starting at the opening quote.
fn lex_string(cur: &mut Cursor<'_>, text: &mut String) {
    text.push('"');
    cur.bump();
    while let Some(n) = cur.bump() {
        text.push(n);
        if n == '\\' {
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
        } else if n == '"' {
            break;
        }
    }
}

/// After consuming a `'`, decides lifetime vs char literal and finishes
/// the token. Returns the kind.
fn lex_quote_tail(cur: &mut Cursor<'_>, text: &mut String) -> TokKind {
    match cur.peek() {
        Some('\\') => {
            // Escaped char literal: `'\n'`, `'\\'`, `'\u{1F600}'`.
            text.push('\\');
            cur.bump();
            if let Some(esc) = cur.bump() {
                text.push(esc);
                if esc == 'u' {
                    while let Some(n) = cur.peek() {
                        let stop = n == '\'';
                        text.push(n);
                        cur.bump();
                        if stop {
                            return TokKind::Char;
                        }
                    }
                }
            }
            if cur.peek() == Some('\'') {
                text.push('\'');
                cur.bump();
            }
            TokKind::Char
        }
        Some(i) if is_ident_start(i) => {
            // `'a'` is a char literal, `'a` (no closing quote after the
            // ident run) is a lifetime.
            let mut ident = String::new();
            while let Some(n) = cur.peek() {
                if is_ident_continue(n) {
                    ident.push(n);
                    cur.bump();
                } else {
                    break;
                }
            }
            text.push_str(&ident);
            if cur.peek() == Some('\'') && ident.chars().count() == 1 {
                text.push('\'');
                cur.bump();
                TokKind::Char
            } else {
                TokKind::Lifetime
            }
        }
        Some('\'') => {
            // `''` — malformed; consume and move on as a char token.
            text.push('\'');
            cur.bump();
            TokKind::Char
        }
        Some(other) => {
            // Non-alphabetic single char literal: `'.'`, `'0'`.
            text.push(other);
            cur.bump();
            if cur.peek() == Some('\'') {
                text.push('\'');
                cur.bump();
            }
            TokKind::Char
        }
        None => TokKind::Char,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        tokenize(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_puncts_and_numbers() {
        let toks = tokenize("let x = 42;");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["let", "x", "=", "42", ";"]);
        assert_eq!(toks[3].kind, TokKind::Number);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = tokenize("fn f<'a>(x: &'a str) { let c = 'a'; }");
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn strings_swallow_embedded_tokens() {
        let toks = tokenize(r#"let s = "no.lock()here"; s.lock()"#);
        let locks = toks.iter().filter(|t| t.is_ident("lock")).count();
        assert_eq!(locks, 1, "{toks:?}");
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let toks = tokenize(r###"let a = r#"quote " inside"#; let r#try = 1;"###);
        assert!(
            toks.iter()
                .any(|t| t.kind == TokKind::Str
                    && t.str_value().as_deref() == Some("quote \" inside"))
        );
        assert!(toks.iter().any(|t| t.text == "r#try"));
    }

    #[test]
    fn nested_block_comments_close() {
        assert_eq!(
            kinds("/* a /* b */ c */ x"),
            [TokKind::BlockComment, TokKind::Ident]
        );
    }

    #[test]
    fn spans_are_one_based_and_advance() {
        let toks = tokenize("a\n  bb");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn str_value_decodes_escapes() {
        let toks = tokenize(r#""a\nb""#);
        assert_eq!(toks[0].str_value().as_deref(), Some("a\nb"));
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        for src in ["\"abc", "'x", "r#\"abc", "/* never closed", "b\"oops"] {
            let _ = tokenize(src);
        }
    }
}
