//! Item-level scanning helpers over the token stream.
//!
//! These are deliberately shallow: they recognise the handful of shapes
//! the passes need (enum bodies, struct fields, `Type::Variant` paths,
//! `const` string catalogues) rather than parsing Rust. Anything they
//! fail to recognise is simply not reported — passes pair these scans
//! with anchor checks so silent misses surface as missing anchors, not
//! silent cleanliness.

use std::collections::BTreeSet;

use crate::lexer::{TokKind, Token};
use crate::workspace::SourceFile;

/// One enum variant: name, declared field names (struct variants only),
/// and the 1-based line of the variant name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Variant {
    /// The variant's name.
    pub name: String,
    /// Field names for `Name { .. }` variants; empty for unit/tuple.
    pub fields: Vec<String>,
    /// Line of the variant identifier.
    pub line: u32,
}

fn code(file: &SourceFile) -> Vec<&Token> {
    file.tokens.iter().filter(|t| !t.is_comment()).collect()
}

/// Finds `enum name { ... }` and returns its variants, or `None` when
/// the file has no such enum.
#[must_use]
pub fn enum_variants(file: &SourceFile, name: &str) -> Option<Vec<Variant>> {
    let toks = code(file);
    let start = toks
        .windows(3)
        .position(|w| w[0].is_ident("enum") && w[1].is_ident(name) && w[2].is_punct('{'))?;
    let mut variants = Vec::new();
    let mut depth = 0usize;
    let mut i = start + 2;
    while i < toks.len() {
        let t = toks[i];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            if depth == 1 && t.is_punct('}') {
                break;
            }
            depth = depth.saturating_sub(1);
        } else if depth == 1 && t.kind == TokKind::Ident {
            // A variant name is an identifier at body depth that is not
            // part of an attribute (`#[...]` nests, so already depth 2).
            // A preceding `]` is the close of a variant attribute like
            // `#[non_exhaustive]`.
            let prev_is_sep =
                toks[i - 1].is_punct('{') || toks[i - 1].is_punct(',') || toks[i - 1].is_punct(']');
            if prev_is_sep {
                let mut fields = Vec::new();
                if i + 1 < toks.len() && toks[i + 1].is_punct('{') {
                    fields = braced_field_names(&toks, i + 1);
                }
                variants.push(Variant {
                    name: t.text.clone(),
                    fields,
                    line: t.line,
                });
            }
        }
        i += 1;
    }
    Some(variants)
}

/// Finds `struct name { ... }` and returns its field names, or `None`.
#[must_use]
pub fn struct_fields(file: &SourceFile, name: &str) -> Option<Vec<String>> {
    let toks = code(file);
    let open = toks
        .windows(3)
        .position(|w| w[0].is_ident("struct") && w[1].is_ident(name) && w[2].is_punct('{'))?;
    Some(braced_field_names(&toks, open + 2))
}

/// Collects field names inside a brace-delimited body starting at the
/// token index of its `{`: identifiers at depth 1 directly followed by
/// `:` (skipping visibility keywords).
fn braced_field_names(toks: &[&Token], open: usize) -> Vec<String> {
    let mut fields = Vec::new();
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        let t = toks[i];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            if depth == 1 && t.is_punct('}') {
                break;
            }
            depth = depth.saturating_sub(1);
        } else if depth == 1
            && t.kind == TokKind::Ident
            && i + 1 < toks.len()
            && toks[i + 1].is_punct(':')
            && !(i + 2 < toks.len() && toks[i + 2].is_punct(':'))
        {
            fields.push(t.text.clone());
        }
        i += 1;
    }
    fields
}

/// Every variant referenced as `type_name::Variant`, with the line of
/// the first reference. Handles or-patterns and expression paths alike
/// (they are the same token shape).
#[must_use]
pub fn path_refs(file: &SourceFile, type_name: &str) -> Vec<(String, u32)> {
    let toks = code(file);
    let mut seen = BTreeSet::new();
    let mut refs = Vec::new();
    for w in toks.windows(4) {
        if w[0].is_ident(type_name)
            && w[1].is_punct(':')
            && w[2].is_punct(':')
            && w[3].kind == TokKind::Ident
            && seen.insert(w[3].text.clone())
        {
            refs.push((w[3].text.clone(), w[3].line));
        }
    }
    refs
}

/// Finds `const name ... = [ "...", ... ]` and returns the string
/// literal values inside the array, decoded.
#[must_use]
pub fn const_str_array(file: &SourceFile, name: &str) -> Option<Vec<(String, u32)>> {
    let toks = code(file);
    let at = toks
        .windows(2)
        .position(|w| w[0].is_ident("const") && w[1].is_ident(name))?;
    let open = toks[at..]
        .iter()
        .position(|t| t.is_punct('['))
        .map(|off| at + off)?;
    // Skip a `&[` / `[&str; N]` type position: take the array after `=`.
    let eq = toks[at..]
        .iter()
        .position(|t| t.is_punct('='))
        .map(|off| at + off)?;
    let open = if open > eq {
        open
    } else {
        toks[eq..]
            .iter()
            .position(|t| t.is_punct('['))
            .map(|off| eq + off)?
    };
    let mut out = Vec::new();
    let mut depth = 0usize;
    for t in &toks[open..] {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.kind == TokKind::Str {
            if let Some(v) = t.str_value() {
                out.push((v, t.line));
            }
        }
    }
    Some(out)
}

/// Finds `const name ... = [A, B, ...]` and returns the identifier
/// entries inside the array (e.g. a catalogue array referencing other
/// consts), with lines.
#[must_use]
pub fn const_ident_array(file: &SourceFile, name: &str) -> Option<Vec<(String, u32)>> {
    let toks = code(file);
    let at = toks
        .windows(2)
        .position(|w| w[0].is_ident("const") && w[1].is_ident(name))?;
    let eq = toks[at..]
        .iter()
        .position(|t| t.is_punct('='))
        .map(|off| at + off)?;
    let open = toks[eq..]
        .iter()
        .position(|t| t.is_punct('['))
        .map(|off| eq + off)?;
    let mut out = Vec::new();
    let mut depth = 0usize;
    for t in &toks[open..] {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.kind == TokKind::Ident {
            out.push((t.text.clone(), t.line));
        }
    }
    Some(out)
}

/// Every `const NAME: &str = "value";` in the file (also matching
/// `&'static str`), as `(name, value, line)`.
#[must_use]
pub fn str_consts(file: &SourceFile) -> Vec<(String, String, u32)> {
    let toks = code(file);
    let mut out = Vec::new();
    let mut i = 0;
    while i + 3 < toks.len() {
        if toks[i].is_ident("const")
            && toks[i + 1].kind == TokKind::Ident
            && toks[i + 2].is_punct(':')
        {
            let name = &toks[i + 1];
            // Accept `&str`, `&'static str`, `&'a str`.
            let mut j = i + 3;
            if j < toks.len() && toks[j].is_punct('&') {
                j += 1;
                if j < toks.len() && toks[j].kind == TokKind::Lifetime {
                    j += 1;
                }
                if j + 2 < toks.len()
                    && toks[j].is_ident("str")
                    && toks[j + 1].is_punct('=')
                    && toks[j + 2].kind == TokKind::Str
                {
                    if let Some(v) = toks[j + 2].str_value() {
                        out.push((name.text.clone(), v, name.line));
                    }
                    i = j + 3;
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

/// Token indices (into `file.tokens`) of every `.method(` call with the
/// given method name, excluding test code.
#[must_use]
pub fn method_calls(file: &SourceFile, method: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let idxs: Vec<usize> = file
        .tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_comment())
        .map(|(i, _)| i)
        .collect();
    for w in idxs.windows(3) {
        let (a, b, c) = (&file.tokens[w[0]], &file.tokens[w[1]], &file.tokens[w[2]]);
        if a.is_punct('.') && b.is_ident(method) && c.is_punct('(') && !file.in_test_code(w[1]) {
            out.push(w[1]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(text: &str) -> SourceFile {
        SourceFile::from_text("x.rs".into(), text.into())
    }

    #[test]
    fn variants_with_fields_and_attributes() {
        let f = file(
            "pub enum Event {\n\
               /// doc\n\
               Launched { mechanism: String, threads: usize },\n\
               #[non_exhaustive]\n\
               Finished { completed: u64 },\n\
               Ping,\n\
               Pair(u32, u32),\n\
             }\n",
        );
        let vs = enum_variants(&f, "Event").unwrap();
        let names: Vec<&str> = vs.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, ["Launched", "Finished", "Ping", "Pair"]);
        assert_eq!(vs[0].fields, ["mechanism", "threads"]);
        assert_eq!(vs[1].fields, ["completed"]);
        assert!(vs[2].fields.is_empty());
        assert!(vs[3].fields.is_empty());
    }

    #[test]
    fn generic_field_types_do_not_leak_fields() {
        let f = file("struct R { map: HashMap<String, u64>, pairs: Vec<(String, Value)> }");
        assert_eq!(struct_fields(&f, "R").unwrap(), ["map", "pairs"]);
    }

    #[test]
    fn path_refs_dedupe_and_cover_or_patterns() {
        let f = file(
            "match e { Event::A | Event::B => {}, Event::A => {} }\n\
             let x = Event::C { y: 1 };\n",
        );
        let refs: Vec<String> = path_refs(&f, "Event").into_iter().map(|r| r.0).collect();
        assert_eq!(refs, ["A", "B", "C"]);
    }

    #[test]
    fn const_arrays_and_str_consts() {
        let f = file(
            "pub const NAME: &str = \"dope_up\";\n\
             pub const OTHER: &'static str = \"dope_down\";\n\
             pub const ALL: &[&str] = &[NAME, \"dope_extra\"];\n",
        );
        let consts = str_consts(&f);
        assert_eq!(consts.len(), 2);
        assert_eq!(consts[0].1, "dope_up");
        let arr = const_str_array(&f, "ALL").unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].0, "dope_extra");
    }

    #[test]
    fn method_calls_skip_tests_and_comments() {
        let f = file(
            "fn a() { x.lock(); } // x.lock()\n#[cfg(test)]\nmod t { fn b() { y.lock(); } }\n",
        );
        assert_eq!(method_calls(&f, "lock").len(), 1);
    }
}
