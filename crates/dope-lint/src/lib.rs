//! `dope-lint` — a workspace-aware static analyzer that mechanically
//! enforces DoPE's cross-crate contracts.
//!
//! The compiler cannot see the conventions DoPE's correctness rests on:
//! every trace event kind handled by every consumer, every metric name
//! catalogued and documented, every DV diagnostic documented, a
//! deadlock-free lock order across the executive/monitor/pool, no
//! panicking APIs in the runtime's hot paths, a JSONL schema that
//! only ever grows, and a documentation book whose relative links all
//! resolve. This crate turns those conventions into seven
//! analysis passes over a lightweight in-tree Rust lexer (no `rustc` or
//! `syn` dependency), emitting a stable `DL0xx` catalogue with
//! `file:line` spans — see `docs/static-analysis.md` for the catalogue,
//! waiver syntax, and exit-code contract.
//!
//! # Example
//!
//! ```
//! use dope_lint::{DlCode, Report};
//!
//! // Reports round-trip through strict JSON for CI consumption.
//! let empty = Report::new();
//! let back = Report::from_json(&empty.to_json()).unwrap();
//! assert!(back.is_clean(true));
//! assert_eq!(DlCode::ALL.len(), 7);
//! ```

#![warn(missing_docs)]

mod findings;
pub mod lexer;
pub mod passes;
pub mod scan;
pub mod workspace;

pub use findings::{DlCode, Finding, ParseDlCodeError, Report};
pub use workspace::{SourceFile, Waiver, Workspace};

use std::io;
use std::path::Path;

/// Loads the workspace at `root` and runs every pass.
///
/// # Errors
///
/// Returns the first I/O error hit while walking or reading sources.
pub fn check(root: &Path) -> io::Result<Report> {
    let ws = Workspace::load(root)?;
    Ok(passes::run_all(&ws))
}
