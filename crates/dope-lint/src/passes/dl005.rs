//! DL005 — forbidden APIs in hot paths.
//!
//! Three families, each scoped to where they actually hurt:
//!
//! * `unwrap()` / `expect()` anywhere in `dope-runtime` — the executive
//!   must degrade through `Error` / `FailurePolicy`, never panic;
//! * unbounded channel construction (`unbounded()`, `mpsc::channel()`)
//!   in `dope-runtime` — queues between executive, monitor, and pool
//!   must have a stated bound or a waiver explaining the implicit one;
//! * `Instant::now()` inside `dope-trace` — record paths take their
//!   timestamps from the recorder's single clock anchor so replay stays
//!   deterministic.
//!
//! Waive with `// dope-lint: allow(DL005): <reason>` on or above the
//! offending line; the reason is mandatory.

use crate::findings::DlCode;
use crate::lexer::TokKind;
use crate::scan;

use super::Ctx;

const RUNTIME: &str = "crates/dope-runtime/src/";
const TRACE: &str = "crates/dope-trace/src/";

pub(crate) fn run(ctx: &mut Ctx<'_>) {
    let mut saw_runtime = false;
    let mut saw_trace = false;
    let mut hits: Vec<(String, u32, String)> = Vec::new();

    for file in ctx.ws().files() {
        if file.rel.starts_with(RUNTIME) {
            saw_runtime = true;
            for method in ["unwrap", "expect"] {
                for idx in scan::method_calls(file, method) {
                    hits.push((
                        file.rel.clone(),
                        file.tokens[idx].line,
                        format!("`{method}()` in runtime code; return an Error or waive"),
                    ));
                }
            }
            let toks: Vec<_> = file.code_tokens().collect();
            for w in toks.windows(2) {
                let (idx, t) = w[0];
                if t.is_ident("unbounded") && w[1].1.is_punct('(') && !file.in_test_code(idx) {
                    hits.push((
                        file.rel.clone(),
                        t.line,
                        "unbounded channel constructed in runtime code".to_string(),
                    ));
                }
            }
            for w in toks.windows(4) {
                if w[0].1.is_ident("mpsc")
                    && w[1].1.is_punct(':')
                    && w[2].1.is_punct(':')
                    && w[3].1.is_ident("channel")
                    && !file.in_test_code(w[0].0)
                {
                    hits.push((
                        file.rel.clone(),
                        w[3].1.line,
                        "`mpsc::channel()` is unbounded; bound it or waive with the implicit bound"
                            .to_string(),
                    ));
                }
            }
        }
        if file.rel.starts_with(TRACE) {
            saw_trace = true;
            let toks: Vec<_> = file.code_tokens().collect();
            for w in toks.windows(4) {
                if w[0].1.is_ident("Instant")
                    && w[1].1.is_punct(':')
                    && w[2].1.is_punct(':')
                    && w[3].1.is_ident("now")
                    && w[3].1.kind == TokKind::Ident
                    && !file.in_test_code(w[0].0)
                {
                    hits.push((
                        file.rel.clone(),
                        w[3].1.line,
                        "`Instant::now()` in a record path; use the recorder clock anchor"
                            .to_string(),
                    ));
                }
            }
        }
    }

    if !saw_runtime {
        ctx.missing(RUNTIME);
    }
    if !saw_trace {
        ctx.missing(TRACE);
    }
    for (file, line, message) in hits {
        ctx.emit(DlCode::ForbiddenApi, &file, line, message);
    }
}
