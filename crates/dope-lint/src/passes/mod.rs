//! The seven analysis passes behind the `DL0xx` catalogue.
//!
//! Each pass reads its anchors (the files it analyzes) out of the
//! loaded [`Workspace`]. A pass whose anchors are absent records them
//! in [`Report::missing_anchors`] and emits nothing — that is what lets
//! the per-code fixture corpora exercise one pass at a time. Running on
//! the real workspace uses `--strict`, where a missing anchor is fatal.

use crate::findings::{DlCode, Finding, Report};
use crate::workspace::Workspace;

pub mod dl001;
pub mod dl002;
pub mod dl003;
pub mod dl004;
pub mod dl005;
pub mod dl006;
pub mod dl007;

/// Shared pass context: the workspace plus the report under
/// construction, with waiver-aware emission.
pub(crate) struct Ctx<'a> {
    ws: &'a Workspace,
    report: &'a mut Report,
}

impl<'a> Ctx<'a> {
    pub(crate) fn new(ws: &'a Workspace, report: &'a mut Report) -> Self {
        Ctx { ws, report }
    }

    pub(crate) fn ws(&self) -> &'a Workspace {
        self.ws
    }

    /// Emits a finding, routing it to the waived list when the source
    /// file carries a matching waiver comment at (or just above) the
    /// anchor line. Findings in non-Rust anchors cannot be waived.
    pub(crate) fn emit(&mut self, code: DlCode, file: &str, line: u32, message: String) {
        let finding = Finding {
            code,
            file: file.to_string(),
            line,
            message,
        };
        let waived = self.ws.file(file).is_some_and(|f| f.is_waived(code, line));
        if waived {
            self.report.waived.push(finding);
        } else {
            self.report.findings.push(finding);
        }
    }

    /// Records a missing anchor (deduplicated).
    pub(crate) fn missing(&mut self, anchor: &str) {
        if !self.report.missing_anchors.iter().any(|a| a == anchor) {
            self.report.missing_anchors.push(anchor.to_string());
        }
    }
}

/// Runs every pass over the workspace and returns the sorted report.
#[must_use]
pub fn run_all(ws: &Workspace) -> Report {
    let mut report = Report::new();
    {
        let mut ctx = Ctx::new(ws, &mut report);
        dl001::run(&mut ctx);
        dl002::run(&mut ctx);
        dl003::run(&mut ctx);
        dl004::run(&mut ctx);
        dl005::run(&mut ctx);
        dl006::run(&mut ctx);
        dl007::run(&mut ctx);
    }
    report.sort();
    report
}
