//! DL006 — the additive-field contract.
//!
//! The JSONL trace schema promises consumers that fields and kinds are
//! added, never removed or renamed (`docs/event-schema.md`). The
//! committed baseline `crates/dope-lint/baseline/event-fields.txt`
//! freezes the shape that has shipped: one line per record type —
//! `Name field field ...` — covering `TraceRecord` and every
//! `TraceEvent` variant. A field or variant present in the baseline but
//! gone from the code is a contract violation; a new field or variant
//! must be appended to the baseline in the same change (which is what
//! makes removals impossible to disguise as renames).

use std::collections::BTreeMap;

use crate::findings::DlCode;
use crate::scan;

use super::Ctx;

const BASELINE: &str = "crates/dope-lint/baseline/event-fields.txt";
const EVENT_RS: &str = "crates/dope-trace/src/event.rs";

pub(crate) fn run(ctx: &mut Ctx<'_>) {
    let baseline_text = match ctx.ws().raw(BASELINE) {
        Ok(Some(text)) => text,
        _ => {
            ctx.missing(BASELINE);
            return;
        }
    };
    let Some(event_file) = ctx.ws().file(EVENT_RS) else {
        ctx.missing(EVENT_RS);
        return;
    };
    let Some(variants) = scan::enum_variants(event_file, "TraceEvent") else {
        ctx.missing(&format!("{EVENT_RS} (enum TraceEvent)"));
        return;
    };

    // Current shape: TraceRecord's own fields plus every variant.
    let mut current: BTreeMap<String, (Vec<String>, u32)> = BTreeMap::new();
    match scan::struct_fields(event_file, "TraceRecord") {
        Some(fields) => {
            current.insert("TraceRecord".to_string(), (fields, 1));
        }
        None => ctx.missing(&format!("{EVENT_RS} (struct TraceRecord)")),
    }
    for v in variants {
        current.insert(v.name.clone(), (v.fields, v.line));
    }

    let mut baseline: BTreeMap<String, (Vec<String>, u32)> = BTreeMap::new();
    for (i, line) in baseline_text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace().map(str::to_string);
        let Some(name) = parts.next() else { continue };
        let line_no = u32::try_from(i + 1).unwrap_or(u32::MAX);
        baseline.insert(name, (parts.collect(), line_no));
    }

    for (name, (fields, line)) in &baseline {
        match current.get(name) {
            None => ctx.emit(
                DlCode::AdditiveField,
                BASELINE,
                *line,
                format!("`{name}` is in the shipped schema baseline but gone from {EVENT_RS}"),
            ),
            Some((now, code_line)) => {
                for field in fields {
                    if !now.contains(field) {
                        ctx.emit(
                            DlCode::AdditiveField,
                            EVENT_RS,
                            *code_line,
                            format!(
                                "`{name}.{field}` was shipped (baseline line {line}) but has \
                                 been removed or renamed"
                            ),
                        );
                    }
                }
                for field in now {
                    if !fields.contains(field) {
                        ctx.emit(
                            DlCode::AdditiveField,
                            EVENT_RS,
                            *code_line,
                            format!(
                                "new field `{name}.{field}` is not recorded in {BASELINE}; \
                                 append it there"
                            ),
                        );
                    }
                }
            }
        }
    }
    for (name, (_, code_line)) in &current {
        if !baseline.contains_key(name) {
            ctx.emit(
                DlCode::AdditiveField,
                EVENT_RS,
                *code_line,
                format!("new record type `{name}` is not recorded in {BASELINE}; append it there"),
            );
        }
    }
}
