//! DL002 — metric-name drift.
//!
//! The canonical metric catalogue is `dope_metrics::names`: every
//! `pub const` there must be listed in `names::ALL`, registered against
//! a live registry somewhere in the workspace, and documented in the
//! operator guide's metrics table — and nothing may be registered or
//! documented under a name outside the catalogue.

use std::collections::BTreeMap;

use crate::findings::DlCode;
use crate::lexer::TokKind;
use crate::scan;
use crate::workspace::SourceFile;

use super::Ctx;

const NAMES_RS: &str = "crates/dope-metrics/src/names.rs";
const GUIDE_MD: &str = "docs/operator-guide.md";

/// Registry methods whose first argument is a metric name.
const REG_METHODS: [&str; 11] = [
    "counter",
    "gauge",
    "histogram",
    "counter_with_labels",
    "gauge_with_labels",
    "histogram_with_labels",
    "register_counter",
    "register_gauge",
    "register_histogram",
    "register_counter_source",
    "register_histogram_source",
];

pub(crate) fn run(ctx: &mut Ctx<'_>) {
    let Some(names_file) = ctx.ws().file(NAMES_RS) else {
        ctx.missing(NAMES_RS);
        return;
    };
    // const ident -> (value, line)
    let consts: BTreeMap<String, (String, u32)> = scan::str_consts(names_file)
        .into_iter()
        .map(|(name, value, line)| (name, (value, line)))
        .collect();
    let Some(all) = scan::const_ident_array(names_file, "ALL") else {
        ctx.missing(&format!("{NAMES_RS} (const ALL)"));
        return;
    };

    // Catalogue closure: ALL <-> the declared consts.
    for (ident, line) in &all {
        if !consts.contains_key(ident) {
            ctx.emit(
                DlCode::MetricNameDrift,
                NAMES_RS,
                *line,
                format!("names::ALL lists `{ident}` but no such const is declared"),
            );
        }
    }
    for (ident, (_, line)) in &consts {
        if !all.iter().any(|(a, _)| a == ident) {
            ctx.emit(
                DlCode::MetricNameDrift,
                NAMES_RS,
                *line,
                format!("const `{ident}` is missing from names::ALL"),
            );
        }
    }

    // Registration sites: first argument of every registry method call.
    let mut registered: Vec<String> = Vec::new();
    for file in ctx.ws().files() {
        if !file.rel.starts_with("crates/") || file.rel == NAMES_RS {
            continue;
        }
        for (value, ident, line) in registrations(file, &consts) {
            registered.push(value.clone());
            let in_catalogue = match &ident {
                Some(id) => consts.contains_key(id),
                None => consts.values().any(|(v, _)| v == &value),
            };
            if !in_catalogue {
                let rel = file.rel.clone();
                ctx.emit(
                    DlCode::MetricNameDrift,
                    &rel,
                    line,
                    format!("metric `{value}` is registered here but absent from names::ALL"),
                );
            }
        }
    }
    for (ident, (value, line)) in &consts {
        if !registered.iter().any(|r| r == value) {
            ctx.emit(
                DlCode::MetricNameDrift,
                NAMES_RS,
                *line,
                format!(
                    "`{ident}` (`{value}`) is catalogued but never registered against a registry"
                ),
            );
        }
    }

    // Operator-guide metrics table.
    match ctx.ws().raw(GUIDE_MD) {
        Ok(Some(guide)) => {
            let documented = table_names(&guide);
            for (name, line) in &documented {
                if !consts.values().any(|(v, _)| v == name) {
                    ctx.emit(
                        DlCode::MetricNameDrift,
                        GUIDE_MD,
                        *line,
                        format!("documented metric `{name}` is not in names::ALL"),
                    );
                }
            }
            for (ident, (value, line)) in &consts {
                if !documented.iter().any(|(n, _)| n == value) {
                    ctx.emit(
                        DlCode::MetricNameDrift,
                        NAMES_RS,
                        *line,
                        format!("`{ident}` (`{value}`) is missing from the {GUIDE_MD} table"),
                    );
                }
            }
        }
        _ => ctx.missing(GUIDE_MD),
    }
}

/// Extracts `(resolved_name, names_const_if_path, line)` for every
/// registry-method call in non-test code. First arguments that are
/// neither string literals nor `names::X` paths are skipped — they are
/// runtime-computed and outside static reach.
fn registrations(
    file: &SourceFile,
    consts: &BTreeMap<String, (String, u32)>,
) -> Vec<(String, Option<String>, u32)> {
    let mut out = Vec::new();
    for method in REG_METHODS {
        for idx in scan::method_calls(file, method) {
            // idx is the method ident; the `(` follows, then the arg.
            let arg: Vec<&crate::lexer::Token> = file.tokens[idx + 1..]
                .iter()
                .filter(|t| !t.is_comment())
                .take(4)
                .collect();
            if arg.is_empty() || !arg[0].is_punct('(') {
                continue;
            }
            match arg.get(1) {
                Some(t) if t.kind == TokKind::Str => {
                    if let Some(v) = t.str_value() {
                        if v.starts_with("dope_") {
                            out.push((v, None, t.line));
                        }
                    }
                }
                Some(t) if t.is_ident("names") => {
                    if let (Some(c1), Some(c2), Some(id)) = (arg.get(2), arg.get(3), {
                        file.tokens[idx + 1..]
                            .iter()
                            .filter(|t| !t.is_comment())
                            .nth(4)
                    }) {
                        if c1.is_punct(':') && c2.is_punct(':') && id.kind == TokKind::Ident {
                            let value = consts
                                .get(&id.text)
                                .map_or_else(|| format!("names::{}", id.text), |(v, _)| v.clone());
                            out.push((value, Some(id.text.clone()), id.line));
                        }
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// Backticked `dope_*` names in markdown table rows (`| \`name\` | ...`).
fn table_names(markdown: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for (i, line) in markdown.lines().enumerate() {
        let trimmed = line.trim_start();
        if !trimmed.starts_with("| `dope_") {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix("| `") {
            if let Some(end) = rest.find('`') {
                let line_no = u32::try_from(i + 1).unwrap_or(u32::MAX);
                out.push((rest[..end].to_string(), line_no));
            }
        }
    }
    out
}
