//! DL007 — docs-link integrity.
//!
//! The documentation book (`docs/README.md` and the chapters it indexes)
//! cross-references files by relative Markdown links. A link that stops
//! resolving — because a chapter was renamed, a heading reworded, or a
//! source file moved — rots silently until a reader hits the 404. This
//! pass resolves every relative link in `README.md` and `docs/*.md`
//! against the workspace tree: the path must name a real file or
//! directory, and a `#fragment` must match a heading slug in the target
//! Markdown file. External links (`http://`, `https://`, `mailto:`) are
//! out of static reach and skipped, as are links inside fenced code
//! blocks and inline code spans.

use std::fs;

use crate::findings::DlCode;

use super::Ctx;

/// The book index: the anchor that tells the pass a documentation book
/// exists to check. Fixture corpora without it skip the pass.
const BOOK_INDEX: &str = "docs/README.md";

pub(crate) fn run(ctx: &mut Ctx<'_>) {
    if !matches!(ctx.ws().raw(BOOK_INDEX), Ok(Some(_))) {
        ctx.missing(BOOK_INDEX);
        return;
    }

    let mut pages: Vec<String> = Vec::new();
    if matches!(ctx.ws().raw("README.md"), Ok(Some(_))) {
        pages.push("README.md".to_string());
    }
    let docs_dir = ctx.ws().root().join("docs");
    let mut chapters: Vec<String> = match fs::read_dir(&docs_dir) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "md"))
            .filter_map(|p| {
                p.file_name()
                    .map(|n| format!("docs/{}", n.to_string_lossy()))
            })
            .collect(),
        Err(_) => Vec::new(),
    };
    chapters.sort();
    pages.extend(chapters);

    for page in pages {
        let Ok(Some(text)) = ctx.ws().raw(&page) else {
            continue;
        };
        check_page(ctx, &page, &text);
    }
}

fn check_page(ctx: &mut Ctx<'_>, page: &str, text: &str) {
    let base_dir = page.rsplit_once('/').map_or("", |(dir, _)| dir);
    for (target, line) in links(text) {
        if target.starts_with("http://")
            || target.starts_with("https://")
            || target.starts_with("mailto:")
        {
            continue;
        }
        let (path_part, fragment) = match target.split_once('#') {
            Some((p, f)) => (p, Some(f)),
            None => (target.as_str(), None),
        };

        // Same-page fragment: check against this page's own headings.
        if path_part.is_empty() {
            if let Some(frag) = fragment {
                if !has_anchor(text, frag) {
                    ctx.emit(
                        DlCode::DocsLink,
                        page,
                        line,
                        format!("link `{target}` names no heading in this file"),
                    );
                }
            }
            continue;
        }

        let Some(resolved) = resolve(base_dir, path_part) else {
            ctx.emit(
                DlCode::DocsLink,
                page,
                line,
                format!("link `{target}` escapes the workspace root"),
            );
            continue;
        };
        let on_disk = ctx.ws().root().join(&resolved);
        if !on_disk.exists() {
            ctx.emit(
                DlCode::DocsLink,
                page,
                line,
                format!("link `{target}` does not resolve: no `{resolved}` in the workspace"),
            );
            continue;
        }
        if let Some(frag) = fragment {
            if resolved.ends_with(".md") {
                if let Ok(body) = fs::read_to_string(&on_disk) {
                    if !has_anchor(&body, frag) {
                        ctx.emit(
                            DlCode::DocsLink,
                            page,
                            line,
                            format!("link `{target}` names no heading `#{frag}` in `{resolved}`"),
                        );
                    }
                }
            }
        }
    }
}

/// Extracts `(target, line)` for every inline Markdown link outside
/// fenced code blocks and inline code spans.
fn links(text: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for (i, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        // Blank out inline code spans so `[idx](...)`-shaped code is not
        // mistaken for a link.
        let visible: String = line
            .split('`')
            .enumerate()
            .map(|(k, seg)| {
                if k % 2 == 0 {
                    seg.to_string()
                } else {
                    " ".repeat(seg.len())
                }
            })
            .collect::<Vec<_>>()
            .join(" ");
        let line_no = u32::try_from(i + 1).unwrap_or(u32::MAX);
        let mut rest = visible.as_str();
        while let Some(open) = rest.find("](") {
            let after = &rest[open + 2..];
            match after.find(')') {
                Some(close) => {
                    let target = after[..close].trim();
                    // Strip an optional `"title"` suffix.
                    let target = target
                        .split_once(' ')
                        .map_or(target, |(t, _)| t)
                        .to_string();
                    if !target.is_empty() {
                        out.push((target, line_no));
                    }
                    rest = &after[close + 1..];
                }
                None => break,
            }
        }
    }
    out
}

/// Normalizes `target` against `base_dir` (both `/`-separated,
/// workspace-relative). `None` when `..` escapes the root.
fn resolve(base_dir: &str, target: &str) -> Option<String> {
    let mut parts: Vec<&str> = if target.starts_with('/') {
        Vec::new()
    } else {
        base_dir.split('/').filter(|s| !s.is_empty()).collect()
    };
    for comp in target.trim_start_matches('/').split('/') {
        match comp {
            "" | "." => {}
            ".." => {
                parts.pop()?;
            }
            c => parts.push(c),
        }
    }
    Some(parts.join("/"))
}

/// True when `fragment` matches a heading slug in `markdown`
/// (GitHub-style: lowercase, punctuation dropped, spaces to hyphens;
/// `-N` duplicate suffixes accepted).
fn has_anchor(markdown: &str, fragment: &str) -> bool {
    let want = fragment.to_ascii_lowercase();
    let mut in_fence = false;
    for line in markdown.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence || !line.starts_with('#') {
            continue;
        }
        let heading = line.trim_start_matches('#').trim();
        let s = slug(heading);
        if s == want {
            return true;
        }
        // GitHub dedupes repeated headings as `slug-1`, `slug-2`, ...
        if let Some(suffix) = want.strip_prefix(&s) {
            if suffix.starts_with('-') && suffix[1..].chars().all(|c| c.is_ascii_digit()) {
                return true;
            }
        }
    }
    false
}

fn slug(heading: &str) -> String {
    heading
        .chars()
        .filter_map(|c| {
            let c = c.to_ascii_lowercase();
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                Some(c)
            } else if c == ' ' {
                Some('-')
            } else {
                None
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn links_skip_fences_and_code_spans() {
        let text = "see [a](x.md) here\n```\n[b](y.md)\n```\nand `[c](z.md)` too\n";
        let found = links(text);
        assert_eq!(found, vec![("x.md".to_string(), 1)]);
    }

    #[test]
    fn resolve_normalizes_dots_and_rejects_escapes() {
        assert_eq!(
            resolve("docs", "overload.md").as_deref(),
            Some("docs/overload.md")
        );
        assert_eq!(
            resolve("docs", "../README.md").as_deref(),
            Some("README.md")
        );
        assert_eq!(
            resolve("", "./docs/overload.md").as_deref(),
            Some("docs/overload.md")
        );
        assert_eq!(resolve("docs", "../../etc/passwd"), None);
    }

    #[test]
    fn anchors_match_github_slugs() {
        let md = "# Big Title\n\n## The `Shed` policy: drop, don't wait\n";
        assert!(has_anchor(md, "big-title"));
        assert!(has_anchor(md, "the-shed-policy-drop-dont-wait"));
        assert!(!has_anchor(md, "missing"));
    }

    #[test]
    fn duplicate_heading_suffixes_are_accepted() {
        let md = "## Setup\n## Setup\n";
        assert!(has_anchor(md, "setup"));
        assert!(has_anchor(md, "setup-1"));
        assert!(!has_anchor(md, "setup-x"));
    }

    #[test]
    fn headings_inside_fences_are_not_anchors() {
        let md = "```\n# not a heading\n```\n";
        assert!(!has_anchor(md, "not-a-heading"));
    }
}
