//! DL004 — lock-order discipline.
//!
//! `crates/dope-lint/lock-order.txt` declares a total acquisition order
//! over the runtime's locks (one `rank name` pair per line, ascending).
//! This pass reconstructs the acquisition graph of `dope-runtime` —
//! which locks are taken while which others are held, including through
//! local function calls — and reports:
//!
//! * `.lock()` calls on locks absent from the manifest;
//! * acquisitions that violate the declared order (equal or descending
//!   rank while a lock is held), which covers every potential cycle.
//!
//! The held-region model follows Rust temporary-lifetime rules for the
//! shapes the runtime actually uses: `let g = x.lock();` holds to the
//! end of the enclosing block; a `.lock()` inside a `for`/`if`/`while`/
//! `match` header holds through the following block; any other use is a
//! statement temporary held to the next `;`.

use std::collections::{BTreeMap, BTreeSet};

use crate::findings::DlCode;
use crate::lexer::{TokKind, Token};
use crate::workspace::SourceFile;

use super::Ctx;

const MANIFEST: &str = "crates/dope-lint/lock-order.txt";
const SCOPE: &str = "crates/dope-runtime/src/";

pub(crate) fn run(ctx: &mut Ctx<'_>) {
    let manifest = match ctx.ws().raw(MANIFEST) {
        Ok(Some(text)) => text,
        _ => {
            ctx.missing(MANIFEST);
            return;
        }
    };
    let ranks = match parse_manifest(&manifest) {
        Ok(ranks) => ranks,
        Err(msg) => {
            ctx.emit(DlCode::LockOrder, MANIFEST, 1, msg);
            return;
        }
    };

    let files: Vec<&SourceFile> = ctx
        .ws()
        .files()
        .iter()
        .filter(|f| f.rel.starts_with(SCOPE))
        .collect();
    if files.is_empty() {
        ctx.missing(SCOPE);
        return;
    }

    // Types with an `impl` block in the scanned files: a qualified call
    // `Q::f()` only feeds the call graph when `Q` is one of these (or
    // `Self`), so `Arc::new` / `Vec::new` do not inherit the locks of
    // some local constructor that happens to share the name.
    let mut local_types: BTreeSet<String> = BTreeSet::new();
    for file in &files {
        local_types.extend(impl_ranges(file).into_iter().map(|r| r.2));
    }

    // First sweep: per-function direct acquisitions, nesting edges, and
    // call sites annotated with the locks held at the call. Functions
    // are keyed `Type::name` inside an impl block, bare `name` outside.
    let mut functions: BTreeMap<String, FnInfo> = BTreeMap::new();
    for file in &files {
        for func in scan_functions(file, &local_types) {
            let entry = functions.entry(func.name.clone()).or_default();
            entry.direct.extend(func.direct.iter().cloned());
            entry.edges.extend(func.edges.iter().cloned());
            entry.calls.extend(func.calls.iter().cloned());
        }
    }

    // `.method(` receivers are untyped here, so a method call resolves
    // to every scanned function with that method name.
    let mut by_method: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for key in functions.keys() {
        let method = key.rsplit("::").next().unwrap_or(key).to_string();
        by_method.entry(method).or_default().push(key.clone());
    }
    let resolve = |call: &CallSite| -> Vec<String> {
        if call.is_method {
            by_method.get(&call.callee).cloned().unwrap_or_default()
        } else {
            vec![call.callee.clone()]
        }
    };

    // Fixpoint: the set of locks each function may acquire, transitively
    // through calls into other scanned functions.
    let mut acquires: BTreeMap<String, BTreeSet<String>> = functions
        .iter()
        .map(|(name, f)| {
            (
                name.clone(),
                f.direct.iter().map(|a| a.lock.clone()).collect(),
            )
        })
        .collect();
    loop {
        let mut changed = false;
        for (name, f) in &functions {
            let mut grown: BTreeSet<String> = acquires[name].clone();
            for call in &f.calls {
                for callee in resolve(call) {
                    if let Some(callee_locks) = acquires.get(&callee) {
                        grown.extend(callee_locks.iter().cloned());
                    }
                }
            }
            if grown.len() > acquires[name].len() {
                acquires.insert(name.clone(), grown);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Collect every nesting edge: direct ones, plus held-across-call
    // edges into everything the callee transitively acquires.
    let mut edges: BTreeSet<Edge> = BTreeSet::new();
    let mut undeclared: BTreeSet<(String, String, u32)> = BTreeSet::new();
    for f in functions.values() {
        for acq in &f.direct {
            if !ranks.contains_key(&acq.lock) {
                undeclared.insert((acq.file.clone(), acq.lock.clone(), acq.line));
            }
        }
        edges.extend(f.edges.iter().cloned());
        for call in &f.calls {
            for callee in resolve(call) {
                let Some(callee_locks) = acquires.get(&callee) else {
                    continue;
                };
                for held in &call.held {
                    for inner in callee_locks {
                        edges.insert(Edge {
                            outer: held.clone(),
                            inner: format!("{inner} (via {callee}())"),
                            inner_lock: inner.clone(),
                            file: call.file.clone(),
                            line: call.line,
                        });
                    }
                }
            }
        }
    }

    for (file, lock, line) in undeclared {
        ctx.emit(
            DlCode::LockOrder,
            &file,
            line,
            format!("lock `{lock}` is acquired here but not declared in {MANIFEST}"),
        );
    }
    for edge in edges {
        let (Some(&outer_rank), Some(&inner_rank)) =
            (ranks.get(&edge.outer), ranks.get(&edge.inner_lock))
        else {
            continue; // undeclared locks already reported above
        };
        if inner_rank <= outer_rank {
            let kind = if edge.inner_lock == edge.outer {
                "re-entrant acquisition of".to_string()
            } else {
                format!("order violation: rank {inner_rank} acquired under rank {outer_rank},")
            };
            ctx.emit(
                DlCode::LockOrder,
                &edge.file,
                edge.line,
                format!("{kind} `{}` while `{}` is held", edge.inner, edge.outer),
            );
        }
    }
}

#[derive(Debug, Default, Clone)]
struct FnInfo {
    direct: Vec<Acquire>,
    edges: Vec<Edge>,
    calls: Vec<CallSite>,
}

#[derive(Debug, Clone)]
struct Acquire {
    lock: String,
    file: String,
    line: u32,
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Edge {
    outer: String,
    /// Display form of the inner lock (may carry a `via f()` note).
    inner: String,
    inner_lock: String,
    file: String,
    line: u32,
}

#[derive(Debug, Clone)]
struct CallSite {
    /// Qualified key (`Type::f` / free `f`) or, for `.f(` method calls,
    /// the bare method name resolved against every scanned impl.
    callee: String,
    is_method: bool,
    held: Vec<String>,
    file: String,
    line: u32,
}

/// How long an acquired guard stays held.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Release {
    /// Statement temporary: released at the next `;` at this depth.
    AtSemi(usize),
    /// `let` binding: released when the enclosing block (entered at
    /// this depth) closes.
    AtBlockClose(usize),
    /// Header temporary (`for`/`if`/`while`/`match`): armed until the
    /// next `{` opens, then held until that block closes.
    ThroughNextBlock,
}

#[derive(Debug, Clone)]
struct Held {
    lock: String,
    release: Release,
}

/// `impl` blocks in this file, as `(start, end, type_name)` over the
/// comment-filtered token index space. The name is the ident after
/// `impl` (skipping a generic parameter list), or after `for` in
/// `impl Trait for Type`.
fn impl_ranges(file: &SourceFile) -> Vec<(usize, usize, String)> {
    let toks: Vec<&Token> = file.tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("impl") {
            let start = i;
            let mut j = i + 1;
            if j < toks.len() && toks[j].is_punct('<') {
                let mut depth = 0usize;
                while j < toks.len() {
                    if toks[j].is_punct('<') {
                        depth += 1;
                    } else if toks[j].is_punct('>') {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
            // Walk to the body `{`, remembering the last plain ident
            // seen at path tail position; `for` resets it so that
            // `impl Trait for Type` yields `Type`.
            let mut name: Option<String> = None;
            while j < toks.len() && !toks[j].is_punct('{') {
                if toks[j].kind == TokKind::Ident && !toks[j].is_ident("for") {
                    name = Some(toks[j].text.clone());
                } else if toks[j].is_punct('<') {
                    // Generic arguments of the type/trait: skip.
                    let mut depth = 0usize;
                    while j < toks.len() {
                        if toks[j].is_punct('<') {
                            depth += 1;
                        } else if toks[j].is_punct('>') {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        j += 1;
                    }
                }
                j += 1;
            }
            // Brace-match the impl body to find the range end.
            let mut depth = 0usize;
            let mut end = toks.len();
            while j < toks.len() {
                if toks[j].is_punct('{') {
                    depth += 1;
                } else if toks[j].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        end = j;
                        break;
                    }
                }
                j += 1;
            }
            if let Some(name) = name {
                out.push((start, end, name));
            }
            i = j;
        }
        i += 1;
    }
    out
}

/// Scans every `fn name(...) { ... }` in the file, ignoring test code.
/// Functions are keyed `Type::name` inside an `impl Type` block.
fn scan_functions(file: &SourceFile, local_types: &BTreeSet<String>) -> Vec<ScannedFn> {
    let toks: Vec<(usize, &Token)> = file.code_tokens().collect();
    let impls = impl_ranges(file);
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].1.is_ident("fn")
            && toks[i + 1].1.kind == TokKind::Ident
            && !file.in_test_code(toks[i].0)
        {
            let impl_type = impls
                .iter()
                .find(|(start, end, _)| i > *start && i < *end)
                .map(|(_, _, name)| name.as_str());
            let name = match impl_type {
                Some(ty) => format!("{ty}::{}", toks[i + 1].1.text),
                None => toks[i + 1].1.text.clone(),
            };
            // Find the body `{` after the signature: the first `{` at
            // zero paren depth (skips parameter defaults and generics).
            let mut j = i + 2;
            let mut paren = 0usize;
            let mut body_open = None;
            while j < toks.len() {
                let t = toks[j].1;
                if t.is_punct('(') {
                    paren += 1;
                } else if t.is_punct(')') {
                    paren = paren.saturating_sub(1);
                } else if t.is_punct(';') && paren == 0 {
                    break; // trait method declaration, no body
                } else if t.is_punct('{') && paren == 0 {
                    body_open = Some(j);
                    break;
                }
                j += 1;
            }
            if let Some(open) = body_open {
                let (scanned, end) = scan_body(file, &toks, open, &name, local_types);
                out.push(scanned);
                i = end;
                continue;
            }
        }
        i += 1;
    }
    out
}

struct ScannedFn {
    name: String,
    direct: Vec<Acquire>,
    edges: Vec<Edge>,
    calls: Vec<CallSite>,
}

/// Walks one brace-matched function body, tracking held guards,
/// nesting edges, and call sites. Returns the scan plus the index (in
/// `toks`) just past the closing brace.
fn scan_body(
    file: &SourceFile,
    toks: &[(usize, &Token)],
    open: usize,
    fn_name: &str,
    local_types: &BTreeSet<String>,
) -> (ScannedFn, usize) {
    let mut scanned = ScannedFn {
        name: fn_name.to_string(),
        direct: Vec::new(),
        edges: Vec::new(),
        calls: Vec::new(),
    };
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0usize;
    let mut stmt_head: Option<String> = None;
    let mut j = open;
    while j < toks.len() {
        let t = toks[j].1;
        if t.is_punct('{') {
            depth += 1;
            for h in &mut held {
                if h.release == Release::ThroughNextBlock {
                    h.release = Release::AtBlockClose(depth);
                }
            }
            stmt_head = None;
        } else if t.is_punct('}') {
            depth -= 1;
            held.retain(|h| match h.release {
                Release::AtBlockClose(d) | Release::AtSemi(d) => d <= depth,
                Release::ThroughNextBlock => true,
            });
            stmt_head = None;
            if depth == 0 {
                return (scanned, j + 1);
            }
        } else if t.is_punct(';') {
            held.retain(|h| h.release != Release::AtSemi(depth));
            stmt_head = None;
        } else if stmt_head.is_none() && t.kind == TokKind::Ident {
            stmt_head = Some(t.text.clone());
        }

        // `.lock()` acquisition on a plain-identifier receiver.
        if j + 2 < toks.len()
            && t.is_punct('.')
            && toks[j + 1].1.is_ident("lock")
            && toks[j + 2].1.is_punct('(')
            && j > open
            && toks[j - 1].1.kind == TokKind::Ident
        {
            let lock = toks[j - 1].1.text.clone();
            let line = toks[j + 1].1.line;
            scanned.direct.push(Acquire {
                lock: lock.clone(),
                file: file.rel.clone(),
                line,
            });
            for h in &held {
                scanned.edges.push(Edge {
                    outer: h.lock.clone(),
                    inner: lock.clone(),
                    inner_lock: lock.clone(),
                    file: file.rel.clone(),
                    line,
                });
            }
            // Decide the hold region from the statement shape.
            let after_call = toks[j + 3..]
                .iter()
                .position(|(_, t)| t.is_punct(')'))
                .map(|off| j + 3 + off + 1);
            let next_is_semi =
                after_call.is_some_and(|k| k < toks.len() && toks[k].1.is_punct(';'));
            let release = match stmt_head.as_deref() {
                Some("let") if next_is_semi => Release::AtBlockClose(depth),
                Some("for" | "if" | "while" | "match") => Release::ThroughNextBlock,
                _ => Release::AtSemi(depth),
            };
            held.push(Held { lock, release });
            j += 3;
            continue;
        }

        // Call sites: `Type::f(`, `f(`, or `.f(` — recorded for the
        // fixpoint. Path-qualified calls count only when the qualifier
        // is a locally-implemented type (or `Self`); foreign calls like
        // `Arc::new` must not inherit a local `fn new`'s locks.
        if t.kind == TokKind::Ident
            && j + 1 < toks.len()
            && toks[j + 1].1.is_punct('(')
            && !t.is_ident("lock")
            && !(j > 0 && toks[j - 1].1.is_ident("fn"))
        {
            let callee =
                if j >= open + 3 && toks[j - 1].1.is_punct(':') && toks[j - 2].1.is_punct(':') {
                    let q = toks[j - 3].1;
                    if q.is_ident("Self") {
                        // Resolve Self:: against the enclosing impl type,
                        // recoverable from the qualified function key.
                        fn_name
                            .rsplit_once("::")
                            .map(|(ty, _)| Some((format!("{ty}::{}", t.text), false)))
                            .unwrap_or(None)
                    } else if q.kind == TokKind::Ident && local_types.contains(&q.text) {
                        Some((format!("{}::{}", q.text, t.text), false))
                    } else {
                        None // foreign path: Arc::new, mpsc::channel, ...
                    }
                } else if j > open && toks[j - 1].1.is_punct('.') {
                    Some((t.text.clone(), true))
                } else {
                    Some((t.text.clone(), false))
                };
            if let Some((callee, is_method)) = callee {
                scanned.calls.push(CallSite {
                    callee,
                    is_method,
                    held: held.iter().map(|h| h.lock.clone()).collect(),
                    file: file.rel.clone(),
                    line: t.line,
                });
            }
        }
        j += 1;
    }
    (scanned, toks.len())
}

/// Parses `rank name` lines; `#` comments and blanks allowed.
fn parse_manifest(text: &str) -> Result<BTreeMap<String, u32>, String> {
    let mut ranks = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(rank), Some(name), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!("manifest line {} is not `rank name`", i + 1));
        };
        let rank: u32 = rank
            .parse()
            .map_err(|_| format!("manifest line {}: bad rank `{rank}`", i + 1))?;
        if ranks.insert(name.to_string(), rank).is_some() {
            return Err(format!("manifest line {}: duplicate lock `{name}`", i + 1));
        }
    }
    Ok(ranks)
}
