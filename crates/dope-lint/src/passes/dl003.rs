//! DL003 — DV-code drift.
//!
//! The `DV0xx` diagnostics raised by `dope-verify` are a stable public
//! contract: the catalogue lives in `DiagCode` (`dope-core`), the
//! `Error::code()` mapping feeds it, and `docs/event-schema.md`
//! documents every code. This pass keeps the three in lockstep.

use std::collections::BTreeMap;

use crate::findings::DlCode;
use crate::lexer::TokKind;
use crate::scan;

use super::Ctx;

const DIAG_RS: &str = "crates/dope-core/src/diag.rs";
const ERROR_RS: &str = "crates/dope-core/src/error.rs";
const SCHEMA_MD: &str = "docs/event-schema.md";

pub(crate) fn run(ctx: &mut Ctx<'_>) {
    let Some(diag_file) = ctx.ws().file(DIAG_RS) else {
        ctx.missing(DIAG_RS);
        return;
    };
    // Catalogued DV strings: every `"DVnnn"` literal in non-test code.
    let mut catalogued: BTreeMap<String, u32> = BTreeMap::new();
    for (idx, tok) in diag_file.code_tokens() {
        if tok.kind == TokKind::Str && !diag_file.in_test_code(idx) {
            if let Some(v) = tok.str_value() {
                if is_dv_code(&v) {
                    catalogued.entry(v).or_insert(tok.line);
                }
            }
        }
    }
    if catalogued.is_empty() {
        ctx.missing(&format!("{DIAG_RS} (DV catalogue)"));
        return;
    }
    let diag_variants: Vec<String> = scan::enum_variants(diag_file, "DiagCode")
        .map(|vs| vs.into_iter().map(|v| v.name).collect())
        .unwrap_or_default();

    // Error::code() must only name catalogued DiagCode variants.
    match ctx.ws().file(ERROR_RS) {
        Some(error_file) => {
            for (variant, line) in scan::path_refs(error_file, "DiagCode") {
                if !diag_variants.iter().any(|v| v == &variant) {
                    ctx.emit(
                        DlCode::DvCodeDrift,
                        ERROR_RS,
                        line,
                        format!("Error::code() names DiagCode::{variant}, which does not exist"),
                    );
                }
            }
        }
        None => ctx.missing(ERROR_RS),
    }

    // Docs <-> catalogue closure.
    match ctx.ws().raw(SCHEMA_MD) {
        Ok(Some(schema)) => {
            let documented = doc_dv_codes(&schema);
            for (code, line) in &documented {
                if !catalogued.contains_key(code) {
                    ctx.emit(
                        DlCode::DvCodeDrift,
                        SCHEMA_MD,
                        *line,
                        format!("documented diagnostic `{code}` is not in the DiagCode catalogue"),
                    );
                }
            }
            for (code, line) in &catalogued {
                if !documented.iter().any(|(c, _)| c == code) {
                    ctx.emit(
                        DlCode::DvCodeDrift,
                        DIAG_RS,
                        *line,
                        format!("catalogued diagnostic `{code}` is not documented in {SCHEMA_MD}"),
                    );
                }
            }
        }
        _ => ctx.missing(SCHEMA_MD),
    }
}

fn is_dv_code(s: &str) -> bool {
    s.len() == 5 && s.starts_with("DV") && s[2..].bytes().all(|b| b.is_ascii_digit())
}

/// Every distinct `DVnnn` mention in the markdown, with first line.
fn doc_dv_codes(markdown: &str) -> Vec<(String, u32)> {
    let mut out: Vec<(String, u32)> = Vec::new();
    for (i, line) in markdown.lines().enumerate() {
        let bytes = line.as_bytes();
        let mut j = 0;
        // Byte-wise scan: markdown may contain non-ASCII, so string
        // slicing at arbitrary offsets is not safe.
        while j + 5 <= bytes.len() {
            let hit = bytes[j] == b'D'
                && bytes[j + 1] == b'V'
                && bytes[j + 2..j + 5].iter().all(u8::is_ascii_digit)
                && (j + 5 == bytes.len() || !bytes[j + 5].is_ascii_digit());
            if hit {
                let candidate = String::from_utf8_lossy(&bytes[j..j + 5]).into_owned();
                if !out.iter().any(|(c, _)| c == &candidate) {
                    out.push((candidate, u32::try_from(i + 1).unwrap_or(u32::MAX)));
                }
            }
            j += 1;
        }
    }
    out
}
