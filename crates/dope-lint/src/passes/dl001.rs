//! DL001 — event-kind exhaustiveness.
//!
//! Every variant of `dope_trace::event::TraceEvent` must be handled by
//! each trace consumer (codec, timeline, stats, replay) and mirrored in
//! the `KINDS` catalogue. The enum carries `#[non_exhaustive]`-style
//! growth pressure: a new variant compiles fine against a consumer with
//! a `_ =>` arm, which is exactly the drift this pass exists to catch.

use crate::findings::DlCode;
use crate::scan;

use super::Ctx;

const EVENT_RS: &str = "crates/dope-trace/src/event.rs";
const ENUM: &str = "TraceEvent";
const CONSUMERS: [&str; 4] = [
    "crates/dope-trace/src/codec.rs",
    "crates/dope-trace/src/timeline.rs",
    "crates/dope-trace/src/stats.rs",
    "crates/dope-trace/src/replay.rs",
];

pub(crate) fn run(ctx: &mut Ctx<'_>) {
    let Some(event_file) = ctx.ws().file(EVENT_RS) else {
        ctx.missing(EVENT_RS);
        return;
    };
    let Some(variants) = scan::enum_variants(event_file, ENUM) else {
        ctx.missing(&format!("{EVENT_RS} (enum {ENUM})"));
        return;
    };
    let enum_line = variants.first().map_or(1, |v| v.line);

    // The KINDS catalogue must have exactly one entry per variant.
    match scan::const_str_array(event_file, "KINDS") {
        Some(kinds) => {
            if kinds.len() != variants.len() {
                ctx.emit(
                    DlCode::EventKindExhaustiveness,
                    EVENT_RS,
                    kinds.first().map_or(enum_line, |k| k.1),
                    format!(
                        "KINDS lists {} kinds but {ENUM} has {} variants",
                        kinds.len(),
                        variants.len()
                    ),
                );
            }
        }
        None => ctx.missing(&format!("{EVENT_RS} (const KINDS)")),
    }

    for consumer in CONSUMERS {
        let Some(file) = ctx.ws().file(consumer) else {
            ctx.missing(consumer);
            continue;
        };
        let refs: Vec<String> = scan::path_refs(file, ENUM)
            .into_iter()
            .map(|(name, _)| name)
            .collect();
        for variant in &variants {
            if !refs.iter().any(|r| r == &variant.name) {
                ctx.emit(
                    DlCode::EventKindExhaustiveness,
                    consumer,
                    1,
                    format!(
                        "{ENUM}::{} (declared at {EVENT_RS}:{}) is not handled here",
                        variant.name, variant.line
                    ),
                );
            }
        }
    }
}
