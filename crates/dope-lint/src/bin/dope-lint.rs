//! The `dope-lint` CLI.
//!
//! ```text
//! dope-lint [--strict] [--json] [ROOT]
//! dope-lint --parse-report <FILE|->
//! ```
//!
//! Exit codes mirror `dope-verify`: 0 when clean, 1 when there are
//! findings (or, under `--strict`, missing anchors), 2 on usage or I/O
//! errors. `--parse-report` re-reads a `--json` report and applies the
//! same contract to its contents — CI pipes one through the other to
//! prove the JSON stays strict-codec clean.

use std::io::Read;
use std::path::PathBuf;
use std::process::ExitCode;

use dope_lint::Report;

const USAGE: &str = "usage: dope-lint [--strict] [--json] [ROOT]\n\
                     \u{20}      dope-lint --parse-report <FILE|->";

fn main() -> ExitCode {
    let mut strict = false;
    let mut json = false;
    let mut parse_report: Option<String> = None;
    let mut root: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--strict" => strict = true,
            "--json" => json = true,
            "--parse-report" => match args.next() {
                Some(path) => parse_report = Some(path),
                None => return usage("--parse-report needs a file (or `-` for stdin)"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage(&format!("unknown flag `{other}`"));
            }
            other => {
                if root.is_some() {
                    return usage("more than one ROOT given");
                }
                root = Some(PathBuf::from(other));
            }
        }
    }

    if let Some(path) = parse_report {
        if strict || json || root.is_some() {
            return usage("--parse-report takes no other arguments");
        }
        return run_parse_report(&path);
    }

    let root = root.unwrap_or_else(|| PathBuf::from("."));
    let report = match dope_lint::check(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("dope-lint: {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render(strict));
    }
    if report.is_clean(strict) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_parse_report(path: &str) -> ExitCode {
    let text = if path == "-" {
        let mut buf = String::new();
        match std::io::stdin().read_to_string(&mut buf) {
            Ok(_) => buf,
            Err(err) => {
                eprintln!("dope-lint: reading stdin: {err}");
                return ExitCode::from(2);
            }
        }
    } else {
        match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("dope-lint: {path}: {err}");
                return ExitCode::from(2);
            }
        }
    };
    let report = match Report::from_json(text.trim()) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("dope-lint: report is not valid strict JSON: {err}");
            return ExitCode::from(2);
        }
    };
    // Prove the codec round-trips before trusting the contents.
    match Report::from_json(&report.to_json()) {
        Ok(back) if back == report => {}
        _ => {
            eprintln!("dope-lint: report does not round-trip through the strict codec");
            return ExitCode::from(2);
        }
    }
    println!(
        "parsed report: {} findings, {} waived, {} anchors missing",
        report.findings.len(),
        report.waived.len(),
        report.missing_anchors.len()
    );
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("dope-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}
