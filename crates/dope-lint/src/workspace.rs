//! Loading a workspace tree into lexed, waiver-aware source files.
//!
//! The analyzer never parses `Cargo.toml`; it walks a fixed set of
//! source roots under the workspace root (`crates/*/src`, the umbrella
//! `src/`, `examples/`, and top-level `tests/`) so that fixture corpora
//! — miniature trees mirroring the real relative layout — load exactly
//! like the real workspace.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::findings::DlCode;
use crate::lexer::{tokenize, TokKind, Token};

/// A waiver comment: `// dope-lint: allow(DL005): reason`.
///
/// A waiver suppresses findings of its code anchored on the comment's
/// own line or the line directly below it (so it can sit on its own
/// line above the offending statement or trail it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// The waived code.
    pub code: DlCode,
    /// 1-based line the comment sits on.
    pub line: u32,
    /// The justification text after the second colon. Never empty — a
    /// reasonless waiver is ignored (and the finding stays live).
    pub reason: String,
}

/// One lexed source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel: String,
    /// The raw text.
    pub text: String,
    /// The token stream, comments included.
    pub tokens: Vec<Token>,
    /// Half-open token-index ranges covering `#[cfg(test)] mod` bodies.
    pub test_ranges: Vec<(usize, usize)>,
    /// Waivers declared in comments, in line order.
    pub waivers: Vec<Waiver>,
}

impl SourceFile {
    pub(crate) fn from_text(rel: String, text: String) -> SourceFile {
        let tokens = tokenize(&text);
        let test_ranges = find_test_ranges(&tokens);
        let waivers = find_waivers(&tokens);
        SourceFile {
            rel,
            text,
            tokens,
            test_ranges,
            waivers,
        }
    }

    /// True when the token at `idx` lies inside a `#[cfg(test)] mod`.
    #[must_use]
    pub fn in_test_code(&self, idx: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(start, end)| idx >= start && idx < end)
    }

    /// True when a finding of `code` anchored at `line` is waived by a
    /// comment on that line or the line above.
    #[must_use]
    pub fn is_waived(&self, code: DlCode, line: u32) -> bool {
        self.waivers
            .iter()
            .any(|w| w.code == code && (w.line == line || w.line + 1 == line))
    }

    /// The non-comment tokens, with their original indices.
    pub fn code_tokens(&self) -> impl Iterator<Item = (usize, &Token)> {
        self.tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
    }
}

/// The loaded workspace: every lexed source file plus the root path for
/// reading non-Rust anchors (manifests, baselines, docs).
#[derive(Debug)]
pub struct Workspace {
    root: PathBuf,
    files: Vec<SourceFile>,
}

impl Workspace {
    /// Walks `root` and lexes every `.rs` file under the analyzer's
    /// source scope. Missing roots (e.g. a fixture with only one crate)
    /// are fine; unreadable files are not.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error hit while walking or reading.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        if !root.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("workspace root `{}` is not a directory", root.display()),
            ));
        }
        let mut files = Vec::new();
        let crates = root.join("crates");
        if crates.is_dir() {
            let mut entries: Vec<PathBuf> = fs::read_dir(&crates)?
                .collect::<io::Result<Vec<_>>>()?
                .into_iter()
                .map(|e| e.path())
                .collect();
            entries.sort();
            for krate in entries {
                let src = krate.join("src");
                if src.is_dir() {
                    walk_rs(root, &src, &mut files)?;
                }
            }
        }
        for top in ["src", "examples", "tests"] {
            let dir = root.join(top);
            if dir.is_dir() {
                walk_rs(root, &dir, &mut files)?;
            }
        }
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
        })
    }

    /// The workspace root this tree was loaded from.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// All loaded files, sorted by relative path.
    #[must_use]
    pub fn files(&self) -> &[SourceFile] {
        &self.files
    }

    /// The file at exactly this workspace-relative path, if loaded.
    #[must_use]
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }

    /// Reads a non-Rust anchor (manifest, baseline, markdown) relative
    /// to the root. `None` when the file does not exist.
    ///
    /// # Errors
    ///
    /// Returns an I/O error only for failures other than absence.
    pub fn raw(&self, rel: &str) -> io::Result<Option<String>> {
        match fs::read_to_string(self.root.join(rel)) {
            Ok(text) => Ok(Some(text)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }
}

fn walk_rs(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk_rs(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let text = fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(SourceFile::from_text(rel, text));
        }
    }
    Ok(())
}

/// Finds `#[cfg(test)]` followed by `mod name {` and records the token
/// range of the brace-matched body (attribute included).
fn find_test_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let code: Vec<(usize, &Token)> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_comment())
        .collect();
    let mut ranges = Vec::new();
    let mut i = 0;
    while i + 6 < code.len() {
        // #[cfg(test)]  — seven tokens: # [ cfg ( test ) ]
        let window = &code[i..i + 7];
        let is_cfg_test = window[0].1.is_punct('#')
            && window[1].1.is_punct('[')
            && window[2].1.is_ident("cfg")
            && window[3].1.is_punct('(')
            && window[4].1.is_ident("test")
            && window[5].1.is_punct(')')
            && window[6].1.is_punct(']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Skip any further attributes, then expect `mod name {`.
        let mut j = i + 7;
        while j + 1 < code.len() && code[j].1.is_punct('#') && code[j + 1].1.is_punct('[') {
            let mut depth = 0usize;
            j += 1; // at `[`
            while j < code.len() {
                if code[j].1.is_punct('[') {
                    depth += 1;
                } else if code[j].1.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        let is_mod = j + 2 < code.len()
            && code[j].1.is_ident("mod")
            && code[j + 1].1.kind == TokKind::Ident
            && code[j + 2].1.is_punct('{');
        if is_mod {
            let mut depth = 0usize;
            let mut k = j + 2;
            let mut end = code[i].0;
            while k < code.len() {
                if code[k].1.is_punct('{') {
                    depth += 1;
                } else if code[k].1.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        end = code[k].0 + 1;
                        break;
                    }
                }
                k += 1;
            }
            if depth != 0 {
                end = tokens.len(); // unbalanced file: everything after is test
            }
            ranges.push((code[i].0, end));
            i = code
                .iter()
                .position(|&(idx, _)| idx >= end)
                .unwrap_or(code.len());
        } else {
            i += 1;
        }
    }
    ranges
}

/// Extracts `dope-lint: allow(DLxxx): reason` waivers from comments.
fn find_waivers(tokens: &[Token]) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for tok in tokens.iter().filter(|t| t.is_comment()) {
        let Some(at) = tok.text.find("dope-lint:") else {
            continue;
        };
        let rest = tok.text[at + "dope-lint:".len()..].trim_start();
        let Some(args) = rest.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = args.find(')') else {
            continue;
        };
        let Ok(code) = args[..close].trim().parse::<DlCode>() else {
            continue;
        };
        let tail = args[close + 1..].trim_start();
        let Some(reason) = tail.strip_prefix(':') else {
            continue;
        };
        let reason = reason.trim().trim_end_matches("*/").trim();
        if reason.is_empty() {
            continue; // a reasonless waiver does not suppress anything
        }
        waivers.push(Waiver {
            code,
            line: tok.line,
            reason: reason.to_string(),
        });
    }
    waivers
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(text: &str) -> SourceFile {
        SourceFile::from_text("lib.rs".into(), text.into())
    }

    #[test]
    fn cfg_test_mod_ranges_cover_the_body() {
        let f = file(
            "fn live() { x.lock(); }\n\
             #[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n\
             fn also_live() {}\n",
        );
        let unwrap_idx = f.tokens.iter().position(|t| t.is_ident("unwrap")).unwrap();
        let lock_idx = f.tokens.iter().position(|t| t.is_ident("lock")).unwrap();
        let live_idx = f
            .tokens
            .iter()
            .position(|t| t.is_ident("also_live"))
            .unwrap();
        assert!(f.in_test_code(unwrap_idx));
        assert!(!f.in_test_code(lock_idx));
        assert!(!f.in_test_code(live_idx));
    }

    #[test]
    fn attributes_between_cfg_and_mod_are_skipped() {
        let f = file("#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn t() {} }\n");
        assert_eq!(f.test_ranges.len(), 1);
    }

    #[test]
    fn waivers_parse_and_apply_to_both_lines() {
        let f = file(
            "// dope-lint: allow(DL005): startup only, cannot fail after validation\n\
             let x = y.unwrap();\n",
        );
        assert_eq!(f.waivers.len(), 1);
        assert_eq!(f.waivers[0].code, DlCode::ForbiddenApi);
        assert!(f.is_waived(DlCode::ForbiddenApi, 1));
        assert!(f.is_waived(DlCode::ForbiddenApi, 2));
        assert!(!f.is_waived(DlCode::ForbiddenApi, 3));
        assert!(!f.is_waived(DlCode::LockOrder, 2));
    }

    #[test]
    fn reasonless_or_malformed_waivers_are_ignored() {
        let f = file(
            "// dope-lint: allow(DL005):\n\
             // dope-lint: allow(DL005)\n\
             // dope-lint: allow(DL999): nope\n\
             // dope-lint: deny(DL005): nope\n",
        );
        assert!(f.waivers.is_empty());
    }

    #[test]
    fn trailing_waiver_on_same_line_counts() {
        let f = file("let x = y.unwrap(); // dope-lint: allow(DL005): checked above\n");
        assert!(f.is_waived(DlCode::ForbiddenApi, 1));
    }
}
