//! Property tests of the lexer: tokenizing arbitrary Rust-like source
//! never panics, and every reported span lies inside the file.
//!
//! The generator assembles source from a pool of fragments chosen to
//! stress the lexer's edge cases — unterminated strings, nested block
//! comments, raw strings with hashes, stray quotes, non-ASCII text —
//! then interleaves them with arbitrary separator bytes. The lexer's
//! contract is total: any `&str` in, a token stream with in-bounds
//! 1-based spans out.

use dope_lint::lexer::{tokenize, TokKind};
use proptest::prelude::*;

/// Fragment pool: each entry is deliberately hostile to some lexer path.
const FRAGMENTS: [&str; 24] = [
    "fn main() { let x = 1; }",
    "\"terminated\"",
    "\"unterminated",
    "\"escape \\\" inside\"",
    "r#\"raw with \" quote\"#",
    "r##\"double hash\"##",
    "r\"raw",
    "b\"bytes\"",
    "'c'",
    "'\\n'",
    "'lifetime",
    "'static",
    "// line comment",
    "/* block */",
    "/* nested /* deeper */ still */",
    "/* unterminated",
    "0x1f_u64 1.5e3 100_000",
    "1.. ..= 0.5.clamp(0.0, 1.0)",
    "päth :: öffnen",
    "émoji \u{1f980} text",
    "#[cfg(test)] mod t {",
    "}}}}",
    "::<>(){}[];,.",
    "",
];

proptest! {
    /// Tokenization is total and spans stay inside the file.
    #[test]
    fn tokenize_never_panics_and_spans_are_in_bounds(
        picks in prop::collection::vec(0usize..24, 0..12),
        seps in prop::collection::vec(0usize..4, 0..12),
    ) {
        let mut src = String::new();
        for (i, &pick) in picks.iter().enumerate() {
            src.push_str(FRAGMENTS[pick]);
            src.push_str(match seps.get(i) {
                Some(0) => " ",
                Some(1) => "\n",
                Some(2) => "\t",
                _ => "\r\n",
            });
        }

        let tokens = tokenize(&src);
        let line_count = src.lines().count().max(1);
        for tok in &tokens {
            prop_assert!(tok.line >= 1, "lines are 1-based: {tok:?}");
            prop_assert!(tok.col >= 1, "columns are 1-based: {tok:?}");
            prop_assert!(
                (tok.line as usize) <= line_count,
                "token line {} beyond file end {line_count}: {tok:?}",
                tok.line
            );
            let line = src.lines().nth(tok.line as usize - 1).unwrap_or("");
            let width = line.chars().count();
            prop_assert!(
                (tok.col as usize) <= width.max(1),
                "token col {} beyond line width {width}: {tok:?}",
                tok.col
            );
            prop_assert!(!tok.text.is_empty(), "empty lexeme: {tok:?}");
        }
    }

    /// Token spans are monotonically non-decreasing in (line, col) order —
    /// the stream reads the file front to back.
    #[test]
    fn tokens_come_out_in_source_order(
        picks in prop::collection::vec(0usize..24, 0..10),
    ) {
        let mut src = String::new();
        for &pick in &picks {
            src.push_str(FRAGMENTS[pick]);
            src.push('\n');
        }
        let tokens = tokenize(&src);
        for pair in tokens.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            prop_assert!(
                (a.line, a.col) < (b.line, b.col),
                "out-of-order spans: {a:?} then {b:?}"
            );
        }
    }

    /// Concatenating the lexemes of a comment-free, string-free token
    /// stream loses nothing but whitespace: every lexeme's text appears
    /// in the source.
    #[test]
    fn lexemes_are_verbatim_substrings(
        picks in prop::collection::vec(0usize..24, 0..10),
    ) {
        let mut src = String::new();
        for &pick in &picks {
            src.push_str(FRAGMENTS[pick]);
            src.push(' ');
        }
        for tok in tokenize(&src) {
            prop_assert!(
                src.contains(&tok.text),
                "lexeme {:?} not found in source",
                tok.text
            );
        }
    }
}

/// Deterministic spot-checks that the generator's hostile fragments do
/// exercise the intended token kinds. Fragments are tokenized one at a
/// time: joined, the unterminated-literal fragments would legitimately
/// swallow their neighbours.
#[test]
fn fragment_pool_covers_every_token_kind() {
    let tokens: Vec<_> = FRAGMENTS.iter().flat_map(|f| tokenize(f)).collect();
    for kind in [
        TokKind::Ident,
        TokKind::Lifetime,
        TokKind::Str,
        TokKind::Char,
        TokKind::Number,
        TokKind::Punct,
        TokKind::LineComment,
        TokKind::BlockComment,
    ] {
        assert!(
            tokens.iter().any(|t| t.kind == kind),
            "pool never produced {kind:?}"
        );
    }
}
