/// Diagnostic catalogue for the DL003 fixture.
pub enum DiagCode {
    BadShape,
    BadBudget,
}
impl DiagCode {
    pub fn as_str(self) -> &'static str {
        match self {
            DiagCode::BadShape => "DV001",
            DiagCode::BadBudget => "DV002",
        }
    }
}
