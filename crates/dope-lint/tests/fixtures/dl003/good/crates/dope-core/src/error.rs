use crate::diag::DiagCode;
pub enum Error {
    Shape,
    Budget,
}
impl Error {
    pub fn code(&self) -> DiagCode {
        match self {
            Error::Shape => DiagCode::BadShape,
            Error::Budget => DiagCode::BadBudget,
        }
    }
}
