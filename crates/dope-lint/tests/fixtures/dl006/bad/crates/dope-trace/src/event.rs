pub struct TraceRecord {
    pub seq: u64,
    pub event: TraceEvent,
}
pub enum TraceEvent {
    Launched { mechanism: String },
    Finished { completed: u64 },
    DecisionTraced { mechanism: String, chosen: String },
}
