use parking_lot::Mutex;
pub struct Shared {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}
impl Shared {
    pub fn ascending(&self) {
        let held = self.alpha.lock();
        let inner = self.beta.lock();
        drop(inner);
        drop(held);
    }
    pub fn via_call(&self) {
        let held = self.alpha.lock();
        self.take_beta();
        drop(held);
    }
    fn take_beta(&self) {
        let b = self.beta.lock();
        drop(b);
    }
}
