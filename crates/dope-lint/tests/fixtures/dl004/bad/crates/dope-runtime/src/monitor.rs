use parking_lot::Mutex;
pub struct Shared {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}
impl Shared {
    pub fn descending(&self) {
        let held = self.beta.lock();
        let inner = self.alpha.lock();
        drop(inner);
        drop(held);
    }
}
