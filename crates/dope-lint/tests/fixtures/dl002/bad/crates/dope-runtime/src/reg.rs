use dope_metrics::names;
pub fn install(registry: &Registry) {
    registry.counter(names::UP_TOTAL, "ups");
    registry.gauge(names::DOWN, "downs");
}
