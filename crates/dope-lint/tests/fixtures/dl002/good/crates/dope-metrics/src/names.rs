/// Canonical metric names for the DL002 fixture.
pub const UP_TOTAL: &str = "dope_up_total";
pub const DOWN: &str = "dope_down";
pub const ALL: &[&str] = &[UP_TOTAL, DOWN];
