pub fn stamp() -> Instant {
    // dope-lint: allow(DL005): the fixture's sanctioned clock anchor
    Instant::now()
}
