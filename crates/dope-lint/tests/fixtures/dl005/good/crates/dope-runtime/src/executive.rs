pub fn run() {
    let maybe: Option<u32> = None;
    // dope-lint: allow(DL005): fixture waiver with a reason
    let _ = maybe.unwrap();
    // dope-lint: allow(DL005): depth bounded by the fixture's one send
    let (_tx, _rx) = mpsc::channel::<u32>();
    let (_a, _b) = unbounded(); // dope-lint: allow(DL005): trailing waiver
}
