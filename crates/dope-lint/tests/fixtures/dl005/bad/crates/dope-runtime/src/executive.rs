pub fn run() {
    let maybe: Option<u32> = None;
    let _ = maybe.unwrap();
    let (_tx, _rx) = mpsc::channel::<u32>();
    let (_a, _b) = unbounded();
}
