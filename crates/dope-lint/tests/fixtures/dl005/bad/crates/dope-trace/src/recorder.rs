pub fn stamp() -> Instant {
    Instant::now()
}
