use crate::event::TraceEvent;
pub fn handle(e: &TraceEvent) {
    match e {
        TraceEvent::Launched { .. } => {}
        TraceEvent::Finished { .. } => {}
        TraceEvent::DecisionTraced { .. } => {}
    }
}
