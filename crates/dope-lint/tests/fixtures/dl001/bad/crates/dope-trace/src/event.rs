/// Miniature trace event enum for the DL001 fixture.
pub enum TraceEvent {
    Launched { mechanism: String },
    Finished { completed: u64 },
    DecisionTraced { mechanism: String, chosen: String },
}
pub const KINDS: [&str; 3] = ["Launched", "Finished", "DecisionTraced"];
