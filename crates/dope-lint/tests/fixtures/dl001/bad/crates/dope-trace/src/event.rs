/// Miniature trace event enum for the DL001 fixture.
pub enum TraceEvent {
    Launched { mechanism: String },
    Finished { completed: u64 },
}
pub const KINDS: [&str; 2] = ["Launched", "Finished"];
