//! Per-code fixture tests: every DL code fires on its `bad` fixture and
//! stays silent on the `good` one.
//!
//! Each fixture under `tests/fixtures/dl00N/` is a miniature workspace
//! mirroring the real repository layout (same relative paths the passes
//! anchor on). The `bad` tree is constructed so that *only* code DL00N
//! fires; the `good` tree is finding-free. Passes whose anchors a
//! fixture omits record missing anchors instead of findings, which is
//! exactly the non-strict contract these tests pin down.

use std::path::PathBuf;

use dope_lint::{check, DlCode, Report};

fn fixture(code: &str, flavor: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(code)
        .join(flavor)
}

fn run(code: &str, flavor: &str) -> Report {
    check(&fixture(code, flavor)).unwrap_or_else(|err| panic!("check {code}/{flavor}: {err}"))
}

/// The bad fixture yields at least one finding, all carrying `expect`.
fn assert_fires(code: &str, expect: DlCode) {
    let report = run(code, "bad");
    assert!(
        !report.findings.is_empty(),
        "{code}/bad produced no findings"
    );
    for finding in &report.findings {
        assert_eq!(
            finding.code, expect,
            "{code}/bad leaked a foreign finding: {finding:?}"
        );
    }
}

/// The good fixture yields no findings at all (waivers are fine).
fn assert_silent(code: &str) {
    let report = run(code, "good");
    assert!(
        report.findings.is_empty(),
        "{code}/good is not clean: {:?}",
        report.findings
    );
}

#[test]
fn dl001_fires_on_inexhaustive_consumer() {
    assert_fires("dl001", DlCode::EventKindExhaustiveness);
    let report = run("dl001", "bad");
    assert!(
        report
            .findings
            .iter()
            .all(|f| f.file.ends_with("replay.rs")),
        "only the consumer hiding behind `_ =>` should be flagged: {:?}",
        report.findings
    );
    // The wildcard hides both Finished and the DecisionTraced kind; a
    // regression that stops tracking DecisionTraced must keep firing.
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.message.contains("DecisionTraced")),
        "the hidden DecisionTraced kind should be named: {:?}",
        report.findings
    );
}

#[test]
fn dl001_silent_on_exhaustive_consumers() {
    assert_silent("dl001");
}

#[test]
fn dl002_fires_on_catalogued_but_unregistered_metric() {
    assert_fires("dl002", DlCode::MetricNameDrift);
    let report = run("dl002", "bad");
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.message.contains("dope_ghost_total")),
        "the drifting name should be called out: {:?}",
        report.findings
    );
}

#[test]
fn dl002_silent_when_catalogue_registrations_and_docs_agree() {
    assert_silent("dl002");
}

#[test]
fn dl003_fires_on_undocumented_dv_code() {
    assert_fires("dl003", DlCode::DvCodeDrift);
    let report = run("dl003", "bad");
    assert!(
        report.findings.iter().any(|f| f.message.contains("DV002")),
        "the undocumented code should be named: {:?}",
        report.findings
    );
}

#[test]
fn dl003_silent_when_docs_cover_the_catalogue() {
    assert_silent("dl003");
}

#[test]
fn dl004_fires_on_descending_acquisition() {
    assert_fires("dl004", DlCode::LockOrder);
}

#[test]
fn dl004_silent_on_ascending_acquisition_including_via_calls() {
    assert_silent("dl004");
}

#[test]
fn dl005_fires_on_forbidden_hot_path_apis() {
    assert_fires("dl005", DlCode::ForbiddenApi);
    let report = run("dl005", "bad");
    // unwrap + mpsc::channel + unbounded in the runtime, Instant::now in
    // the trace crate: four distinct sites.
    assert_eq!(report.findings.len(), 4, "{:?}", report.findings);
}

#[test]
fn dl005_waivers_suppress_and_are_accounted_for() {
    assert_silent("dl005");
    let report = run("dl005", "good");
    assert_eq!(
        report.waived.len(),
        4,
        "every waived site must be retained for the report: {:?}",
        report.waived
    );
    assert!(report.waived.iter().all(|f| f.code == DlCode::ForbiddenApi));
}

#[test]
fn dl006_fires_on_removed_baseline_field() {
    assert_fires("dl006", DlCode::AdditiveField);
    let report = run("dl006", "bad");
    assert!(
        report.findings.iter().any(|f| f.message.contains("goal")),
        "the removed field should be named: {:?}",
        report.findings
    );
    // The bad flavor also drops `rationale` from DecisionTraced: the
    // additive-field contract must cover the decision-audit kind too.
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.message.contains("rationale")),
        "the removed DecisionTraced field should be named: {:?}",
        report.findings
    );
}

#[test]
fn dl006_silent_when_baseline_matches() {
    assert_silent("dl006");
}

#[test]
fn dl007_fires_on_broken_docs_links() {
    assert_fires("dl007", DlCode::DocsLink);
    let report = run("dl007", "bad");
    // A dangling file, a dead fragment, and a root escape: three sites.
    assert_eq!(report.findings.len(), 3, "{:?}", report.findings);
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.message.contains("ghost.md")),
        "the dangling target should be named: {:?}",
        report.findings
    );
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.message.contains("no-such-heading")),
        "the dead fragment should be named: {:?}",
        report.findings
    );
}

#[test]
fn dl007_silent_when_every_link_resolves() {
    assert_silent("dl007");
}

#[test]
fn missing_anchors_are_fatal_only_under_strict() {
    // Every fixture omits some other pass's anchors, so non-strict runs
    // are clean-able while strict runs are not.
    let report = run("dl001", "good");
    assert!(!report.missing_anchors.is_empty());
    assert!(report.is_clean(false));
    assert!(!report.is_clean(true));
}

#[test]
fn reports_round_trip_through_json_for_every_fixture() {
    for code in [
        "dl001", "dl002", "dl003", "dl004", "dl005", "dl006", "dl007",
    ] {
        for flavor in ["bad", "good"] {
            let report = run(code, flavor);
            let back = Report::from_json(&report.to_json())
                .unwrap_or_else(|err| panic!("{code}/{flavor} JSON round-trip: {err}"));
            assert_eq!(back.findings, report.findings, "{code}/{flavor}");
            assert_eq!(back.waived, report.waived, "{code}/{flavor}");
            assert_eq!(back.missing_anchors, report.missing_anchors);
        }
    }
}
