//! End-to-end tests of the `dope-lint` binary's exit-code and output
//! contract: 0 clean, 1 findings, 2 usage/io — mirroring `dope-verify`.

use std::path::PathBuf;
use std::process::{Command, Output};

use dope_lint::Report;

fn fixture(code: &str, flavor: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(code)
        .join(flavor)
}

fn lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dope-lint"))
        .args(args)
        .output()
        .expect("spawn dope-lint")
}

fn lint_with_stdin(args: &[&str], stdin: &str) -> Output {
    use std::io::Write;
    let mut child = Command::new(env!("CARGO_BIN_EXE_dope-lint"))
        .args(args)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn dope-lint");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(stdin.as_bytes())
        .expect("write stdin");
    child.wait_with_output().expect("wait dope-lint")
}

#[test]
fn clean_fixture_exits_zero() {
    let out = lint(&[fixture("dl001", "good").to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("0 findings"), "{text}");
}

#[test]
fn bad_fixture_exits_one_and_names_the_code() {
    let out = lint(&[fixture("dl004", "bad").to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("DL004"), "{text}");
    assert!(text.contains("monitor.rs:"), "findings carry spans: {text}");
}

#[test]
fn strict_turns_missing_anchors_into_failure() {
    // dl001/good is finding-free but omits other passes' anchors.
    let root = fixture("dl001", "good");
    let relaxed = lint(&[root.to_str().unwrap()]);
    assert_eq!(relaxed.status.code(), Some(0), "{relaxed:?}");
    let strict = lint(&["--strict", root.to_str().unwrap()]);
    assert_eq!(strict.status.code(), Some(1), "{strict:?}");
}

#[test]
fn json_output_parses_as_a_report() {
    let out = lint(&["--json", fixture("dl005", "bad").to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    let report = Report::from_json(&text).expect("strict JSON");
    assert_eq!(report.findings.len(), 4);
}

#[test]
fn parse_report_round_trips_json_from_stdin() {
    let json = lint(&["--json", fixture("dl006", "bad").to_str().unwrap()]);
    assert_eq!(json.status.code(), Some(1));
    let text = String::from_utf8(json.stdout).unwrap();
    // Re-reading the report applies the same exit contract: findings -> 1.
    let reparse = lint_with_stdin(&["--parse-report", "-"], &text);
    assert_eq!(reparse.status.code(), Some(1), "{reparse:?}");

    let clean = lint(&["--json", fixture("dl006", "good").to_str().unwrap()]);
    assert_eq!(clean.status.code(), Some(0));
    let text = String::from_utf8(clean.stdout).unwrap();
    let reparse = lint_with_stdin(&["--parse-report", "-"], &text);
    assert_eq!(reparse.status.code(), Some(0), "{reparse:?}");
}

#[test]
fn parse_report_rejects_garbage_with_exit_two() {
    let out = lint_with_stdin(&["--parse-report", "-"], "not json at all");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(!out.stderr.is_empty(), "errors go to stderr");
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = lint(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("usage"), "{err}");
}

#[test]
fn nonexistent_root_is_an_io_error() {
    let out = lint(&["/nonexistent/dope-lint-root"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn help_exits_zero() {
    let out = lint(&["--help"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("--strict"), "{text}");
    assert!(text.contains("--json"), "{text}");
}
