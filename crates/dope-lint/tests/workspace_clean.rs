//! The self-hosting gate: the real DoPE workspace must be strict-clean
//! under its own analyzer.
//!
//! This is the same check `ci.sh` runs via the CLI; keeping it as a
//! test means `cargo test` alone catches contract drift, and the
//! assertion failure prints the offending findings.

use std::path::PathBuf;

use dope_lint::check;

fn workspace_root() -> PathBuf {
    // crates/dope-lint -> crates -> workspace root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

#[test]
fn the_workspace_is_strict_clean() {
    let report = check(&workspace_root()).expect("lint the workspace");
    assert!(
        report.findings.is_empty(),
        "dope-lint findings in the workspace:\n{}",
        report.render(true)
    );
    assert!(
        report.missing_anchors.is_empty(),
        "anchors missing — a pass went blind:\n{}",
        report.render(true)
    );
}

#[test]
fn every_workspace_waiver_carries_a_reason() {
    let report = check(&workspace_root()).expect("lint the workspace");
    // Waivers parse only with a reason; this pins the count so a new
    // waiver is a conscious, reviewed decision.
    assert!(
        report.waived.len() <= 8,
        "waiver budget exceeded ({}) — tighten the code instead:\n{}",
        report.waived.len(),
        report.render(true)
    );
}
