//! Machine topology model.

use serde::{Deserialize, Serialize};

/// A multicore machine: sockets, cores per socket, contexts per core.
///
/// The evaluation platform of the paper is available as
/// [`Topology::xeon_x7460`]; other shapes can be constructed to study how
/// mechanisms behave as platform characteristics vary (one of the three
/// sources of execution-environment variability the paper names).
///
/// # Example
///
/// ```
/// use dope_platform::Topology;
///
/// let laptop = Topology::new(1, 4, 2);
/// assert_eq!(laptop.contexts(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Topology {
    sockets: u32,
    cores_per_socket: u32,
    contexts_per_core: u32,
}

impl Topology {
    /// A topology with the given socket/core/context counts.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero.
    #[must_use]
    pub fn new(sockets: u32, cores_per_socket: u32, contexts_per_core: u32) -> Self {
        assert!(
            sockets > 0 && cores_per_socket > 0 && contexts_per_core > 0,
            "topology counts must be positive"
        );
        Topology {
            sockets,
            cores_per_socket,
            contexts_per_core,
        }
    }

    /// The paper's evaluation machine: 4 sockets x 6-core Intel Xeon X7460
    /// at 2.66 GHz, 24 hardware contexts total.
    #[must_use]
    pub fn xeon_x7460() -> Self {
        Topology::new(4, 6, 1)
    }

    /// Number of sockets.
    #[must_use]
    pub fn sockets(&self) -> u32 {
        self.sockets
    }

    /// Cores per socket.
    #[must_use]
    pub fn cores_per_socket(&self) -> u32 {
        self.cores_per_socket
    }

    /// Hardware contexts (SMT threads) per core.
    #[must_use]
    pub fn contexts_per_core(&self) -> u32 {
        self.contexts_per_core
    }

    /// Total hardware contexts: the thread budget `N` an administrator
    /// would typically grant.
    #[must_use]
    pub fn contexts(&self) -> u32 {
        self.sockets * self.cores_per_socket * self.contexts_per_core
    }

    /// The socket a context index belongs to, for locality-aware placement.
    #[must_use]
    pub fn socket_of(&self, context: u32) -> u32 {
        (context / (self.cores_per_socket * self.contexts_per_core)) % self.sockets
    }
}

impl Default for Topology {
    /// Defaults to the paper's evaluation machine.
    fn default() -> Self {
        Topology::xeon_x7460()
    }
}

impl std::fmt::Display for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}x{} cores, {} contexts/core ({} hardware contexts)",
            self.sockets,
            self.cores_per_socket,
            self.contexts_per_core,
            self.contexts()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xeon_has_24_contexts() {
        let t = Topology::xeon_x7460();
        assert_eq!(t.contexts(), 24);
        assert_eq!(t.sockets(), 4);
        assert_eq!(t.cores_per_socket(), 6);
    }

    #[test]
    fn contexts_multiplies_all_levels() {
        let t = Topology::new(2, 8, 2);
        assert_eq!(t.contexts(), 32);
    }

    #[test]
    fn socket_of_partitions_contexts() {
        let t = Topology::xeon_x7460();
        assert_eq!(t.socket_of(0), 0);
        assert_eq!(t.socket_of(5), 0);
        assert_eq!(t.socket_of(6), 1);
        assert_eq!(t.socket_of(23), 3);
    }

    #[test]
    #[should_panic(expected = "topology counts must be positive")]
    fn zero_sockets_panics() {
        let _ = Topology::new(0, 4, 1);
    }

    #[test]
    fn display_mentions_totals() {
        let s = Topology::xeon_x7460().to_string();
        assert!(s.contains("24"));
    }
}
