//! The platform feature registry (paper Figure 9).
//!
//! Mechanism developers register named platform features with callbacks —
//! "the developer could register `SystemPower` with a callback that
//! queries the power distribution unit" — and mechanisms later query the
//! current value by name.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Callback returning the current value of a platform feature.
pub type FeatureCallback = Arc<dyn Fn() -> f64 + Send + Sync>;

/// Observer invoked on every successful feature read.
pub type FeatureObserver = Arc<dyn Fn(&str, f64) + Send + Sync>;

/// A thread-safe registry of named platform features.
///
/// # Example
///
/// ```
/// use dope_platform::FeatureRegistry;
///
/// let registry = FeatureRegistry::new();
/// registry.register("SystemPower", || 612.5);
/// assert_eq!(registry.value("SystemPower"), Some(612.5));
/// assert_eq!(registry.value("Temperature"), None);
/// ```
#[derive(Clone, Default)]
pub struct FeatureRegistry {
    features: Arc<RwLock<HashMap<String, FeatureCallback>>>,
    observer: Arc<RwLock<Option<FeatureObserver>>>,
}

impl std::fmt::Debug for FeatureRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names = self.names();
        f.debug_struct("FeatureRegistry")
            .field("features", &names)
            .finish()
    }
}

impl FeatureRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        FeatureRegistry::default()
    }

    /// Registers (or replaces) the callback for `feature`.
    ///
    /// This is the paper's `DoPE::registerCB(feature, getValueOfFeatureCB)`.
    pub fn register<F>(&self, feature: impl Into<String>, callback: F)
    where
        F: Fn() -> f64 + Send + Sync + 'static,
    {
        self.features
            .write()
            .insert(feature.into(), Arc::new(callback));
    }

    /// The current value of `feature`, or `None` if unregistered.
    ///
    /// This is the paper's `DoPE::getValue(feature)`. Successful reads
    /// are additionally reported to the observer installed with
    /// [`set_observer`](FeatureRegistry::set_observer) — that is how the
    /// flight recorder captures `FeatureRead` events.
    #[must_use]
    pub fn value(&self, feature: &str) -> Option<f64> {
        let cb = self.features.read().get(feature).cloned();
        let value = cb.map(|cb| cb());
        if let Some(value) = value {
            let observer = self.observer.read().clone();
            if let Some(observer) = observer {
                observer(feature, value);
            }
        }
        value
    }

    /// Installs (or, with `None`, removes) the read observer.
    ///
    /// The observer fires on every successful
    /// [`value`](FeatureRegistry::value) call with the feature name and
    /// the value the callback returned. Reads through any clone of this
    /// registry are observed; failed reads (unregistered features) are
    /// not.
    pub fn set_observer(&self, observer: Option<FeatureObserver>) {
        *self.observer.write() = observer;
    }

    /// Removes a feature; returns `true` if it was registered.
    pub fn unregister(&self, feature: &str) -> bool {
        self.features.write().remove(feature).is_some()
    }

    /// Names of all registered features, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.features.read().keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn register_and_query() {
        let r = FeatureRegistry::new();
        r.register("SystemPower", || 700.0);
        assert_eq!(r.value("SystemPower"), Some(700.0));
    }

    #[test]
    fn unknown_feature_is_none() {
        let r = FeatureRegistry::new();
        assert_eq!(r.value("nope"), None);
    }

    #[test]
    fn callbacks_see_live_state() {
        let r = FeatureRegistry::new();
        let counter = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&counter);
        r.register("Ticks", move || c.load(Ordering::Relaxed) as f64);
        assert_eq!(r.value("Ticks"), Some(0.0));
        counter.store(5, Ordering::Relaxed);
        assert_eq!(r.value("Ticks"), Some(5.0));
    }

    #[test]
    fn reregistering_replaces() {
        let r = FeatureRegistry::new();
        r.register("F", || 1.0);
        r.register("F", || 2.0);
        assert_eq!(r.value("F"), Some(2.0));
    }

    #[test]
    fn unregister_removes() {
        let r = FeatureRegistry::new();
        r.register("F", || 1.0);
        assert!(r.unregister("F"));
        assert!(!r.unregister("F"));
        assert_eq!(r.value("F"), None);
    }

    #[test]
    fn names_are_sorted() {
        let r = FeatureRegistry::new();
        r.register("b", || 0.0);
        r.register("a", || 0.0);
        assert_eq!(r.names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn observer_sees_successful_reads_only() {
        let r = FeatureRegistry::new();
        r.register("SystemPower", || 612.5);
        let seen: Arc<parking_lot::Mutex<Vec<(String, f64)>>> =
            Arc::new(parking_lot::Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        r.set_observer(Some(Arc::new(move |name: &str, value: f64| {
            sink.lock().push((name.to_string(), value));
        })));
        assert_eq!(r.value("SystemPower"), Some(612.5));
        assert_eq!(r.value("Missing"), None);
        assert_eq!(
            seen.lock().as_slice(),
            &[("SystemPower".to_string(), 612.5)]
        );
        r.set_observer(None);
        let _ = r.value("SystemPower");
        assert_eq!(seen.lock().len(), 1);
    }

    #[test]
    fn registry_is_send_sync_and_clone_shares_state() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FeatureRegistry>();
        let r = FeatureRegistry::new();
        let r2 = r.clone();
        r.register("F", || 3.0);
        assert_eq!(r2.value("F"), Some(3.0));
    }
}
