//! Power model and rate-limited power sensing.
//!
//! The paper measures full-system power with an APC AP7892 power
//! distribution unit at its maximum sampling rate of 13 samples per minute,
//! and notes that "90% of peak total power corresponds to 60% of peak
//! power in the dynamic CPU range (all cores idle to all cores active)"
//! (§8.2.3) — i.e. idle power is 75% of peak. The defaults here reproduce
//! those proportions.

use crate::topology::Topology;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Linear full-system power model with measurement noise.
///
/// Expected power is `idle + active_per_context * busy_contexts`; samples
/// add zero-mean Gaussian noise to model meter jitter.
///
/// # Example
///
/// ```
/// use dope_platform::{PowerModel, Topology};
///
/// let model = PowerModel::for_topology(&Topology::xeon_x7460());
/// let idle = model.expected_power(0);
/// let peak = model.peak_power();
/// // Paper §8.2.3: idle is 75% of peak.
/// assert!((idle / peak - 0.75).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    idle_watts: f64,
    active_watts_per_context: f64,
    contexts: u32,
    noise_sd_watts: f64,
}

impl PowerModel {
    /// A model with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is negative or `contexts` is zero.
    #[must_use]
    pub fn new(
        idle_watts: f64,
        active_watts_per_context: f64,
        contexts: u32,
        noise_sd_watts: f64,
    ) -> Self {
        assert!(idle_watts >= 0.0, "idle power must be non-negative");
        assert!(
            active_watts_per_context >= 0.0,
            "per-context power must be non-negative"
        );
        assert!(noise_sd_watts >= 0.0, "noise must be non-negative");
        assert!(contexts > 0, "contexts must be positive");
        PowerModel {
            idle_watts,
            active_watts_per_context,
            contexts,
            noise_sd_watts,
        }
    }

    /// The default model for a topology, scaled so that peak power is
    /// 700 W on the paper's 24-context machine with idle at 75% of peak.
    #[must_use]
    pub fn for_topology(topology: &Topology) -> Self {
        let contexts = topology.contexts();
        let peak = 700.0 * f64::from(contexts) / 24.0;
        let idle = 0.75 * peak;
        let per_context = (peak - idle) / f64::from(contexts);
        PowerModel::new(idle, per_context, contexts, 2.0)
    }

    /// Expected (noise-free) power with `busy` active contexts.
    ///
    /// `busy` above the context count is clamped (oversubscribed software
    /// threads cannot draw more than all-contexts-active power).
    #[must_use]
    pub fn expected_power(&self, busy: u32) -> f64 {
        let busy = busy.min(self.contexts);
        self.idle_watts + self.active_watts_per_context * f64::from(busy)
    }

    /// Power with every context active.
    #[must_use]
    pub fn peak_power(&self) -> f64 {
        self.expected_power(self.contexts)
    }

    /// Idle (all contexts inactive) power.
    #[must_use]
    pub fn idle_watts(&self) -> f64 {
        self.idle_watts
    }

    /// The dynamic CPU range: peak minus idle.
    #[must_use]
    pub fn dynamic_range(&self) -> f64 {
        self.peak_power() - self.idle_watts
    }

    /// Number of hardware contexts the model covers.
    #[must_use]
    pub fn contexts(&self) -> u32 {
        self.contexts
    }

    /// Standard deviation of measurement noise, in watts.
    #[must_use]
    pub fn noise_sd_watts(&self) -> f64 {
        self.noise_sd_watts
    }

    /// A noisy sample of the power with `busy` active contexts.
    #[must_use]
    pub fn sample(&self, busy: u32, rng: &mut impl Rng) -> f64 {
        let noise = gaussian(rng) * self.noise_sd_watts;
        (self.expected_power(busy) + noise).max(0.0)
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::for_topology(&Topology::default())
    }
}

/// Standard-normal sample via the Box–Muller transform.
fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A rate-limited power meter over a [`PowerModel`].
///
/// The sensor refuses to produce a fresh sample more often than its
/// sampling interval allows — between samples it replays the last reading,
/// exactly like polling a slow PDU. The paper notes this limited "the
/// speed with which the controller responds to fluctuations in power
/// consumption"; TPC must cope with it, so reproducing it matters.
///
/// # Example
///
/// ```
/// use dope_platform::{PowerModel, PowerSensor};
///
/// let mut sensor = PowerSensor::ap7892(PowerModel::default(), 7);
/// let first = sensor.read(0.0, 24);
/// // One second later the PDU has no new sample yet:
/// let replay = sensor.read(1.0, 0);
/// assert_eq!(first, replay);
/// // After the sampling interval a new reading appears:
/// let fresh = sensor.read(10.0, 0);
/// assert!(fresh < first);
/// ```
#[derive(Debug, Clone)]
pub struct PowerSensor {
    model: PowerModel,
    interval_secs: f64,
    last_sample_time: Option<f64>,
    last_value: f64,
    rng: SmallRng,
}

impl PowerSensor {
    /// A sensor sampling at most once per `interval_secs`.
    ///
    /// # Panics
    ///
    /// Panics if `interval_secs` is not positive.
    #[must_use]
    pub fn new(model: PowerModel, interval_secs: f64, seed: u64) -> Self {
        assert!(
            interval_secs > 0.0,
            "sampling interval must be positive, got {interval_secs}"
        );
        PowerSensor {
            model,
            interval_secs,
            last_sample_time: None,
            last_value: model.idle_watts(),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// A sensor with the AP7892's maximum rate: 13 samples per minute.
    #[must_use]
    pub fn ap7892(model: PowerModel, seed: u64) -> Self {
        PowerSensor::new(model, 60.0 / 13.0, seed)
    }

    /// Reads the meter at time `now_secs` with `busy` active contexts.
    ///
    /// Returns a fresh sample if the sampling interval has elapsed since
    /// the previous fresh sample, otherwise the previous reading.
    pub fn read(&mut self, now_secs: f64, busy: u32) -> f64 {
        let due = match self.last_sample_time {
            None => true,
            Some(t) => now_secs - t >= self.interval_secs,
        };
        if due {
            self.last_value = self.model.sample(busy, &mut self.rng);
            self.last_sample_time = Some(now_secs);
        }
        self.last_value
    }

    /// The sensor's sampling interval in seconds.
    #[must_use]
    pub fn interval_secs(&self) -> f64 {
        self.interval_secs
    }

    /// The underlying power model.
    #[must_use]
    pub fn model(&self) -> &PowerModel {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_model() -> PowerModel {
        PowerModel::new(525.0, 175.0 / 24.0, 24, 0.0)
    }

    #[test]
    fn expected_power_is_linear_in_busy() {
        let m = quiet_model();
        assert!((m.expected_power(0) - 525.0).abs() < 1e-9);
        assert!((m.expected_power(24) - 700.0).abs() < 1e-9);
        let mid = m.expected_power(12);
        assert!((mid - 612.5).abs() < 1e-9);
    }

    #[test]
    fn busy_clamps_to_contexts() {
        let m = quiet_model();
        assert_eq!(m.expected_power(100), m.peak_power());
    }

    #[test]
    fn paper_proportion_90pct_peak_is_60pct_dynamic() {
        let m = PowerModel::default();
        let target = 0.9 * m.peak_power();
        let dynamic_fraction = (target - m.idle_watts()) / m.dynamic_range();
        assert!((dynamic_fraction - 0.6).abs() < 1e-9);
    }

    #[test]
    fn noisy_samples_center_on_expectation() {
        let m = PowerModel::new(500.0, 5.0, 24, 3.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 4000;
        let mean: f64 = (0..n).map(|_| m.sample(12, &mut rng)).sum::<f64>() / f64::from(n);
        assert!((mean - m.expected_power(12)).abs() < 0.5, "mean={mean}");
    }

    #[test]
    fn sensor_rate_limits() {
        let mut s = PowerSensor::new(quiet_model(), 5.0, 1);
        let v0 = s.read(0.0, 24);
        assert_eq!(s.read(4.9, 0), v0, "no fresh sample before the interval");
        let v1 = s.read(5.0, 0);
        assert!((v1 - 525.0).abs() < 1e-9);
    }

    #[test]
    fn ap7892_rate_is_13_per_minute() {
        let s = PowerSensor::ap7892(PowerModel::default(), 0);
        assert!((s.interval_secs() - 60.0 / 13.0).abs() < 1e-12);
    }

    #[test]
    fn sensor_is_deterministic_per_seed() {
        let m = PowerModel::default();
        let mut a = PowerSensor::new(m, 1.0, 42);
        let mut b = PowerSensor::new(m, 1.0, 42);
        for i in 0..10 {
            let t = f64::from(i) * 2.0;
            assert_eq!(a.read(t, i), b.read(t, i));
        }
    }

    #[test]
    #[should_panic(expected = "sampling interval must be positive")]
    fn zero_interval_panics() {
        let _ = PowerSensor::new(PowerModel::default(), 0.0, 0);
    }
}
