//! Platform substrate for the DoPE reproduction.
//!
//! The paper evaluates DoPE natively on a 4-socket, 24-core Intel Xeon
//! X7460 machine whose power draw is sampled by an APC AP7892 power
//! distribution unit at 13 samples per minute. This crate models that
//! platform so the reproduction can run anywhere:
//!
//! * [`Topology`] — sockets x cores, total hardware contexts;
//! * [`PowerModel`] — idle + per-active-context power with measurement
//!   noise;
//! * [`PowerSensor`] — a *rate-limited* sampler over a power model,
//!   reproducing the slow-feedback control problem the paper's TPC
//!   controller faces (§8.2.3);
//! * [`FeatureRegistry`] — the mechanism-developer API of paper Figure 9:
//!   `registerCB(feature, getValueOfFeatureCB)` / `getValue(feature)`.
//!
//! # Example
//!
//! ```
//! use dope_platform::{PowerModel, Topology};
//!
//! let xeon = Topology::xeon_x7460();
//! assert_eq!(xeon.contexts(), 24);
//!
//! let model = PowerModel::for_topology(&xeon);
//! let idle = model.expected_power(0);
//! let peak = model.peak_power();
//! assert!(peak > idle);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod features;
pub mod metrics;
pub mod power;
pub mod topology;

pub use features::{FeatureObserver, FeatureRegistry};
pub use metrics::metrics_observer;
pub use power::{PowerModel, PowerSensor};
pub use topology::Topology;
