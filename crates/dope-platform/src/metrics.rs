//! Mirroring platform feature reads into a live metrics registry.
//!
//! The paper's Figure 9 lets operators register platform features
//! ("SystemPower" backed by a power-distribution-unit query); the
//! executive polls them each snapshot. [`metrics_observer`] turns those
//! polls into scrapeable gauges: `SystemPower` maps onto the canonical
//! `dope_power_watts` gauge, and every other feature appears as a
//! `dope_platform_feature{feature="..."}` gauge so custom features are
//! observable without code changes.
//!
//! ```
//! use dope_metrics::MetricsRegistry;
//! use dope_platform::{metrics_observer, FeatureRegistry};
//!
//! let features = FeatureRegistry::new();
//! features.register("SystemPower", || 612.5);
//! let registry = MetricsRegistry::new();
//! features.set_observer(Some(metrics_observer(&registry)));
//! let _ = features.value("SystemPower");
//! assert!(registry.render().contains("dope_power_watts 612.5"));
//! ```

use crate::features::FeatureObserver;
use dope_metrics::{names, MetricsRegistry};
use std::sync::Arc;

/// Gauge family for features without a canonical `dope_*` name.
pub const PLATFORM_FEATURE_GAUGE: &str = "dope_platform_feature";

/// A [`FeatureObserver`] that mirrors every successful feature read into
/// `registry`: `SystemPower` sets [`dope_metrics::names::POWER_WATTS`],
/// anything else sets a [`PLATFORM_FEATURE_GAUGE`] series labelled with
/// the feature name.
#[must_use]
pub fn metrics_observer(registry: &MetricsRegistry) -> FeatureObserver {
    let power = registry.gauge(names::POWER_WATTS, "Platform power draw (watts)");
    let registry = registry.clone();
    Arc::new(move |feature: &str, value: f64| {
        if feature == "SystemPower" {
            power.set(value);
        } else {
            registry
                .gauge_with_labels(
                    PLATFORM_FEATURE_GAUGE,
                    "Last read value of a registered platform feature",
                    &[("feature", feature)],
                )
                .set(value);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureRegistry;

    #[test]
    fn system_power_maps_to_the_canonical_gauge() {
        let features = FeatureRegistry::new();
        features.register("SystemPower", || 700.0);
        let registry = MetricsRegistry::new();
        features.set_observer(Some(metrics_observer(&registry)));
        assert_eq!(features.value("SystemPower"), Some(700.0));
        assert!(registry.render().contains("dope_power_watts 700"));
    }

    #[test]
    fn other_features_get_labelled_gauges() {
        let features = FeatureRegistry::new();
        features.register("Temperature", || 58.25);
        let registry = MetricsRegistry::new();
        features.set_observer(Some(metrics_observer(&registry)));
        let _ = features.value("Temperature");
        let text = registry.render();
        assert!(
            text.contains("dope_platform_feature{feature=\"Temperature\"} 58.25"),
            "{text}"
        );
    }

    #[test]
    fn failed_reads_leave_the_registry_untouched() {
        let features = FeatureRegistry::new();
        let registry = MetricsRegistry::new();
        features.set_observer(Some(metrics_observer(&registry)));
        assert_eq!(features.value("Missing"), None);
        // Only the eagerly created power gauge exists, still at 0.
        assert!(registry.render().contains("dope_power_watts 0"));
        assert!(!registry.render().contains("dope_platform_feature{"));
    }
}
