//! Canonical metric names exported by the instrumented DoPE stack.
//!
//! Every name the runtime registers lives here as a constant so that
//! documentation, tests, and dashboards can cross-check against one
//! authoritative list ([`ALL`]). Naming follows Prometheus conventions:
//! `dope_` prefix, base units (seconds, watts), `_total` suffix on
//! counters.

/// Per-task execution latency histogram, labelled `path`.
pub const TASK_EXEC_SECONDS: &str = "dope_task_exec_seconds";
/// Per-task invocation counter, labelled `path`.
pub const TASK_INVOCATIONS_TOTAL: &str = "dope_task_invocations_total";
/// Monitor snapshots taken so far.
pub const MONITOR_SNAPSHOTS_TOTAL: &str = "dope_monitor_snapshots_total";
/// Per-worker recorder shards the monitor merged while aggregating
/// snapshots and scrapes.
pub const MONITOR_SHARD_MERGES_TOTAL: &str = "dope_monitor_shard_merges_total";
/// Seconds the monitor spent measuring (its self-accounted overhead).
pub const MONITORING_OVERHEAD_SECONDS: &str = "dope_monitoring_overhead_seconds";
/// Monitoring overhead as a fraction of total application work
/// (the paper's "< 1 %" claim, self-measured).
pub const MONITORING_OVERHEAD_RATIO: &str = "dope_monitoring_overhead_ratio";
/// Completed reconfiguration epochs.
pub const RECONFIGURE_EPOCHS_TOTAL: &str = "dope_reconfigure_epochs_total";
/// Measured pause (suspend + drain) latency per reconfiguration.
pub const RECONFIGURE_PAUSE_SECONDS: &str = "dope_reconfigure_pause_seconds";
/// Measured relaunch latency per reconfiguration.
pub const RECONFIGURE_RELAUNCH_SECONDS: &str = "dope_reconfigure_relaunch_seconds";
/// Reconfiguration epochs applied as *partial* (delta) reconfigurations:
/// only the changed paths drained, everything else kept running.
pub const RECONFIG_PARTIAL_TOTAL: &str = "dope_reconfig_partial_total";
/// Replica-carrying paths drained per reconfiguration boundary (1 for a
/// typical delta, the whole path set for a full drain).
pub const RECONFIG_PATHS_DRAINED: &str = "dope_reconfig_paths_drained";
/// Mechanism proposals evaluated, labelled `verdict`
/// (`accepted` / `unchanged` / `rejected`).
pub const PROPOSALS_TOTAL: &str = "dope_proposals_total";
/// Jobs dispatched to pool workers.
pub const POOL_JOBS_DISPATCHED_TOTAL: &str = "dope_pool_jobs_dispatched_total";
/// Times a pool worker went back to waiting on the job channel.
pub const POOL_WORKER_PARKS_TOTAL: &str = "dope_pool_worker_parks_total";
/// Job panics the pool's supervision layer caught (the worker thread
/// survived each one).
pub const POOL_PANICS_CAUGHT_TOTAL: &str = "dope_pool_panics_caught_total";
/// Current worker-pool thread count.
pub const POOL_THREADS: &str = "dope_pool_threads";
/// Work-queue occupancy gauge.
pub const QUEUE_OCCUPANCY: &str = "dope_queue_occupancy";
/// Work-queue arrival-rate gauge (requests per second).
pub const QUEUE_ARRIVAL_RATE: &str = "dope_queue_arrival_rate";
/// Requests enqueued so far.
pub const QUEUE_ENQUEUED_TOTAL: &str = "dope_queue_enqueued_total";
/// Requests completed so far.
pub const QUEUE_COMPLETED_TOTAL: &str = "dope_queue_completed_total";
/// Platform power draw gauge (watts), mirrored from the `SystemPower`
/// feature when one is registered.
pub const POWER_WATTS: &str = "dope_power_watts";
/// End-to-end response-time histogram (open workloads).
pub const RESPONSE_SECONDS: &str = "dope_response_seconds";
/// Pipeline sink throughput gauge (items per second), labelled
/// `app`/`mechanism` by the benchmark harness.
pub const PIPELINE_THROUGHPUT: &str = "dope_pipeline_throughput";
/// Task replicas that failed (panicked or vanished) during the run.
pub const TASK_FAILURES_TOTAL: &str = "dope_task_failures_total";
/// Failed replicas the `Restart` failure policy re-instantiated.
pub const TASK_RESTARTS_TOTAL: &str = "dope_task_restarts_total";
/// Replicas currently dead in the running epoch (excluded from
/// monitor snapshots until restart or degrade clears them).
pub const TASK_FAILED_REPLICAS: &str = "dope_task_failed_replicas";
/// Magnitude of the mechanism's signed relative throughput-prediction
/// error, labelled `sign` (`over` = promised more than realized,
/// `under` = promised less).
pub const MECHANISM_PREDICTION_ERROR: &str = "dope_mechanism_prediction_error";
/// Decisions explained by the mechanism, labelled `rationale` with the
/// stable rationale code of each decision.
pub const DECISION_RATIONALE_TOTAL: &str = "dope_decision_rationale_total";
/// Offers the admission gate admitted into the work queue.
pub const ADMITTED_TOTAL: &str = "dope_admitted_total";
/// Offers the admission gate dropped, labelled `reason`
/// (`high_water` / `deadline`).
pub const SHED_TOTAL: &str = "dope_shed_total";
/// Queue delay (offer to dispatch) of admitted requests, in seconds.
pub const ADMISSION_QUEUE_DELAY: &str = "dope_admission_queue_delay";

/// Every canonical metric name, for docs/tests cross-checks.
pub const ALL: &[&str] = &[
    TASK_EXEC_SECONDS,
    TASK_INVOCATIONS_TOTAL,
    MONITOR_SNAPSHOTS_TOTAL,
    MONITOR_SHARD_MERGES_TOTAL,
    MONITORING_OVERHEAD_SECONDS,
    MONITORING_OVERHEAD_RATIO,
    RECONFIGURE_EPOCHS_TOTAL,
    RECONFIGURE_PAUSE_SECONDS,
    RECONFIGURE_RELAUNCH_SECONDS,
    RECONFIG_PARTIAL_TOTAL,
    RECONFIG_PATHS_DRAINED,
    PROPOSALS_TOTAL,
    POOL_JOBS_DISPATCHED_TOTAL,
    POOL_WORKER_PARKS_TOTAL,
    POOL_PANICS_CAUGHT_TOTAL,
    POOL_THREADS,
    QUEUE_OCCUPANCY,
    QUEUE_ARRIVAL_RATE,
    QUEUE_ENQUEUED_TOTAL,
    QUEUE_COMPLETED_TOTAL,
    POWER_WATTS,
    RESPONSE_SECONDS,
    PIPELINE_THROUGHPUT,
    TASK_FAILURES_TOTAL,
    TASK_RESTARTS_TOTAL,
    TASK_FAILED_REPLICAS,
    MECHANISM_PREDICTION_ERROR,
    DECISION_RATIONALE_TOTAL,
    ADMITTED_TOTAL,
    SHED_TOTAL,
    ADMISSION_QUEUE_DELAY,
];

#[cfg(test)]
mod tests {
    use super::ALL;

    #[test]
    fn names_are_unique_prefixed_and_conventional() {
        let mut seen = std::collections::BTreeSet::new();
        for &name in ALL {
            assert!(seen.insert(name), "duplicate metric name {name}");
            assert!(name.starts_with("dope_"), "{name} lacks dope_ prefix");
            assert!(
                name.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "{name} not snake_case"
            );
        }
    }
}
