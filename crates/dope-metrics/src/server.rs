//! A minimal std-only HTTP scrape endpoint for a [`MetricsRegistry`].
//!
//! [`MetricsServer::serve`] binds a `TcpListener` and answers every
//! request with the current registry rendering as
//! `text/plain; version=0.0.4` — enough for `curl` and a Prometheus
//! scraper, with no routing, keep-alive, or TLS. The accept loop runs on
//! one background thread and polls a shutdown flag, so dropping the
//! handle (or calling [`MetricsServer::shutdown`]) stops it promptly.
//!
//! ```
//! use dope_metrics::{scrape, MetricsRegistry, MetricsServer};
//!
//! let registry = MetricsRegistry::new();
//! registry.counter("dope_demo_total", "demo").inc();
//! let server = MetricsServer::serve("127.0.0.1:0", registry).unwrap();
//! let body = scrape(&server.local_addr().to_string()).unwrap();
//! assert!(body.contains("dope_demo_total 1"));
//! server.shutdown();
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::registry::MetricsRegistry;

/// A running scrape endpoint. Shuts down on drop.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9464"`, or port `0` for an
    /// ephemeral port) and serves `registry` until shutdown.
    pub fn serve<A: ToSocketAddrs>(addr: A, registry: MetricsRegistry) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("dope-metrics".to_string())
            .spawn(move || accept_loop(&listener, &registry, &stop_flag))?;
        Ok(MetricsServer {
            addr: local,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (useful after binding port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: &TcpListener, registry: &MetricsRegistry, stop: &AtomicBool) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Render outside any lock scope a client could stall.
                let body = registry.render();
                let _ = answer(stream, &body);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn answer(mut stream: TcpStream, body: &str) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;
    // Drain the request line + headers (best-effort; we answer any verb
    // or path identically).
    let mut buf = [0u8; 4096];
    let _ = stream.read(&mut buf);
    let response = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Performs one `curl`-style scrape of `addr` (host:port) and returns
/// the response body.
///
/// This is the client half used by tests and the CI smoke run; any HTTP
/// client (curl, Prometheus) works equally against the endpoint.
pub fn scrape(addr: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    stream.write_all(
        format!("GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let body = response
        .split_once("\r\n\r\n")
        .map_or(response.as_str(), |(_, body)| body);
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_registry_over_tcp() {
        let registry = MetricsRegistry::new();
        registry.gauge("dope_power_watts", "power").set(42.5);
        let server = MetricsServer::serve("127.0.0.1:0", registry.clone()).unwrap();
        let addr = server.local_addr().to_string();
        let body = scrape(&addr).unwrap();
        assert!(body.contains("dope_power_watts 42.5"), "{body}");
        // A second scrape sees updated values (live, not a snapshot).
        registry.gauge("dope_power_watts", "power").set(50.0);
        let body = scrape(&addr).unwrap();
        assert!(body.contains("dope_power_watts 50"), "{body}");
        server.shutdown();
    }

    #[test]
    fn shutdown_stops_accepting() {
        let server = MetricsServer::serve("127.0.0.1:0", MetricsRegistry::new()).unwrap();
        let addr = server.local_addr().to_string();
        server.shutdown();
        // After shutdown the port no longer answers (connect may succeed
        // briefly due to OS backlog, but a scrape must not return data).
        let result = scrape(&addr);
        assert!(result.is_err() || result.is_ok_and(|b| b.is_empty()));
    }

    #[test]
    fn drop_joins_the_server_thread() {
        let server = MetricsServer::serve("127.0.0.1:0", MetricsRegistry::new()).unwrap();
        drop(server); // must not hang or leak the accept thread
    }
}
