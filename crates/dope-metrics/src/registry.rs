//! The metric registry: named families of counters, gauges, and
//! histograms, rendered in the Prometheus text exposition format.
//!
//! Handles returned by the `*_with_labels` constructors are `Arc`s of
//! plain atomic cells — the hot path never touches the registry map or
//! any lock. The map itself sits behind a `std::sync::RwLock` and is
//! only locked at registration and render time.
//!
//! ```
//! use dope_metrics::MetricsRegistry;
//!
//! let registry = MetricsRegistry::new();
//! let hits = registry.counter("dope_demo_hits_total", "Demo hit count");
//! hits.inc();
//! let text = registry.render();
//! assert!(text.contains("# TYPE dope_demo_hits_total counter"));
//! assert!(text.contains("dope_demo_hits_total 1"));
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::histogram::{Histogram, LocalHistogram};

/// A render-time producer of a [`LocalHistogram`] — the scrape-side of a
/// sharded histogram, merged on demand (see
/// [`MetricsRegistry::register_histogram_source`]).
pub type HistogramSource = Arc<dyn Fn() -> LocalHistogram + Send + Sync>;

/// A render-time producer of a monotone counter value (see
/// [`MetricsRegistry::register_counter_source`]).
pub type CounterSource = Arc<dyn Fn() -> u64 + Send + Sync>;

/// A monotonically increasing integer metric.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    #[must_use]
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises the counter to `n` if it is currently lower (used to
    /// mirror externally maintained monotone totals, e.g. queue
    /// enqueue counts).
    pub fn set_at_least(&self, n: u64) {
        self.value.fetch_max(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A floating-point metric that can go up and down.
///
/// Stored as the bit pattern of an `f64` in an `AtomicU64`.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// A gauge starting at zero.
    #[must_use]
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Histogram exposition boundaries in seconds: `{1, 2.5, 5} × 10^d` for
/// decades `10^-5 .. 10^2`, i.e. 10 µs up to 100 s, plus `+Inf`.
///
/// These are *rendering* boundaries only — recording precision is the
/// fine log-linear layout in [`crate::histogram`].
pub const EXPOSITION_BOUNDS_SECS: [f64; 24] = [
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1,
    5e-1, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

enum Series {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    /// Evaluated at render time: the source merges whatever sharded or
    /// externally owned state backs the series into a point-in-time
    /// [`LocalHistogram`].
    HistogramSource(HistogramSource),
    /// Evaluated at render time; must be monotone for counter semantics.
    CounterSource(CounterSource),
}

struct Family {
    help: String,
    kind: Kind,
    /// Keyed by the rendered label block (`{k="v",...}` or empty).
    series: BTreeMap<String, Series>,
}

/// A registry of metric families. Cloning shares the underlying state.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    families: Arc<RwLock<BTreeMap<String, Family>>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let families = self.families.read().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("MetricsRegistry")
            .field("families", &families.len())
            .finish()
    }
}

/// Renders a label set as a deterministic `{k="v",...}` block.
///
/// Labels are sorted by key; values are escaped per the Prometheus text
/// format (backslash, double quote, newline).
fn label_block(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<_> = labels.to_vec();
    sorted.sort_by(|a, b| a.0.cmp(b.0));
    let mut out = String::from("{");
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// Formats a float like Prometheus clients do: shortest round-trip
/// representation, `+Inf`/`-Inf`/`NaN` spelled out.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        let mut s = format!("{v}");
        if !s.contains('.') && !s.contains('e') && !s.contains("inf") {
            s.push_str(".0");
            // Integers render as "x.0" for gauge clarity — but counters
            // pass through the u64 path, not this one.
            s.truncate(s.len());
        }
        s
    }
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn with_family<R>(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Series,
        extract: impl Fn(&Series) -> Option<R>,
    ) -> R {
        let key = label_block(labels);
        let mut families = self.families.write().unwrap_or_else(|e| e.into_inner());
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert_eq!(
            family.kind, kind,
            "metric `{name}` re-registered with a different type"
        );
        let series = family.series.entry(key).or_insert_with(make);
        extract(series).expect("series kind matches family kind")
    }

    /// The unlabelled counter `name`, created on first use.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with_labels(name, help, &[])
    }

    /// The counter `name{labels}`, created on first use.
    pub fn counter_with_labels(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Counter> {
        self.with_family(
            name,
            help,
            Kind::Counter,
            labels,
            || Series::Counter(Arc::new(Counter::new())),
            |s| match s {
                Series::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// The unlabelled gauge `name`, created on first use.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with_labels(name, help, &[])
    }

    /// The gauge `name{labels}`, created on first use.
    pub fn gauge_with_labels(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.with_family(
            name,
            help,
            Kind::Gauge,
            labels,
            || Series::Gauge(Arc::new(Gauge::new())),
            |s| match s {
                Series::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// The unlabelled histogram `name`, created on first use.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with_labels(name, help, &[])
    }

    /// The histogram `name{labels}`, created on first use.
    pub fn histogram_with_labels(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        self.with_family(
            name,
            help,
            Kind::Histogram,
            labels,
            || Series::Histogram(Arc::new(Histogram::new())),
            |s| match s {
                Series::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Registers an externally owned histogram under `name{labels}`,
    /// replacing any series previously registered there.
    ///
    /// Used by instrumented components (the monitor's per-path latency
    /// cells) that own their histograms but want them scraped.
    pub fn register_histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        histogram: Arc<Histogram>,
    ) {
        self.replace_series(name, help, Kind::Histogram, labels, || {
            Series::Histogram(histogram)
        });
    }

    /// Registers an externally owned counter under `name{labels}`,
    /// replacing any series previously registered there.
    pub fn register_counter(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        counter: Arc<Counter>,
    ) {
        self.replace_series(name, help, Kind::Counter, labels, || {
            Series::Counter(counter)
        });
    }

    /// Registers a render-time histogram source under `name{labels}`,
    /// replacing any series previously registered there.
    ///
    /// Where [`register_histogram`](MetricsRegistry::register_histogram)
    /// exposes one shared atomic histogram, a *source* is a closure the
    /// registry calls on every render — the scrape hook for state that
    /// is sharded across writers (the monitor's per-worker recorder
    /// shards) and only merged on demand.
    pub fn register_histogram_source(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        source: HistogramSource,
    ) {
        self.replace_series(name, help, Kind::Histogram, labels, || {
            Series::HistogramSource(source)
        });
    }

    /// Registers a render-time counter source under `name{labels}`,
    /// replacing any series previously registered there. The closure
    /// must return a monotonically non-decreasing value.
    pub fn register_counter_source(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        source: CounterSource,
    ) {
        self.replace_series(name, help, Kind::Counter, labels, || {
            Series::CounterSource(source)
        });
    }

    fn replace_series(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Series,
    ) {
        let key = label_block(labels);
        let mut families = self.families.write().unwrap_or_else(|e| e.into_inner());
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert_eq!(
            family.kind, kind,
            "metric `{name}` re-registered with a different type"
        );
        family.series.insert(key, make());
    }

    /// All registered family names, sorted.
    #[must_use]
    pub fn family_names(&self) -> Vec<String> {
        let families = self.families.read().unwrap_or_else(|e| e.into_inner());
        families.keys().cloned().collect()
    }

    /// Renders every family in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` headers, histogram
    /// `_bucket{le=...}` series cumulative over
    /// [`EXPOSITION_BOUNDS_SECS`] plus `+Inf`, then `_sum` and `_count`.
    #[must_use]
    pub fn render(&self) -> String {
        let families = self.families.read().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for (name, family) in families.iter() {
            out.push_str(&format!("# HELP {name} {}\n", family.help));
            out.push_str(&format!("# TYPE {name} {}\n", family.kind.as_str()));
            for (labels, series) in &family.series {
                match series {
                    Series::Counter(c) => {
                        out.push_str(&format!("{name}{labels} {}\n", c.get()));
                    }
                    Series::Gauge(g) => {
                        out.push_str(&format!("{name}{labels} {}\n", fmt_f64(g.get())));
                    }
                    Series::Histogram(h) => {
                        render_histogram(&mut out, name, labels, h);
                    }
                    Series::HistogramSource(source) => {
                        render_local_histogram(&mut out, name, labels, &source());
                    }
                    Series::CounterSource(source) => {
                        out.push_str(&format!("{name}{labels} {}\n", source()));
                    }
                }
            }
        }
        out
    }
}

/// Splices `le="..."` into an existing label block (or creates one).
fn labels_with_le(labels: &str, le: &str) -> String {
    if labels.is_empty() {
        format!("{{le=\"{le}\"}}")
    } else {
        // labels is "{...}": insert before the closing brace.
        format!("{},le=\"{le}\"}}", &labels[..labels.len() - 1])
    }
}

fn render_histogram(out: &mut String, name: &str, labels: &str, h: &Histogram) {
    render_histogram_parts(out, name, labels, h.count(), h.sum_secs(), |bound| {
        h.cumulative_le_secs(bound)
    });
}

fn render_local_histogram(out: &mut String, name: &str, labels: &str, h: &LocalHistogram) {
    render_histogram_parts(out, name, labels, h.count(), h.sum_secs(), |bound| {
        h.cumulative_le_secs(bound)
    });
}

fn render_histogram_parts(
    out: &mut String,
    name: &str,
    labels: &str,
    count: u64,
    sum_secs: f64,
    cumulative_le: impl Fn(f64) -> u64,
) {
    for &bound in &EXPOSITION_BOUNDS_SECS {
        let le = fmt_f64(bound);
        let cum = cumulative_le(bound);
        out.push_str(&format!(
            "{name}_bucket{} {cum}\n",
            labels_with_le(labels, &le)
        ));
    }
    out.push_str(&format!(
        "{name}_bucket{} {count}\n",
        labels_with_le(labels, "+Inf")
    ));
    out.push_str(&format!("{name}_sum{labels} {}\n", fmt_f64(sum_secs)));
    out.push_str(&format!("{name}_count{labels} {count}\n"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_state() {
        let r = MetricsRegistry::new();
        let a = r.counter("dope_test_total", "test");
        let b = r.counter("dope_test_total", "test");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
    }

    #[test]
    fn set_at_least_is_monotone() {
        let c = Counter::new();
        c.set_at_least(10);
        c.set_at_least(5);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn gauge_round_trips_floats() {
        let g = Gauge::new();
        g.set(612.5);
        assert_eq!(g.get(), 612.5);
        g.set(-0.25);
        assert_eq!(g.get(), -0.25);
    }

    #[test]
    fn render_emits_help_type_and_values() {
        let r = MetricsRegistry::new();
        r.counter("dope_a_total", "counts a").add(7);
        r.gauge("dope_b", "gauges b").set(1.5);
        let text = r.render();
        assert!(text.contains("# HELP dope_a_total counts a\n"));
        assert!(text.contains("# TYPE dope_a_total counter\n"));
        assert!(text.contains("dope_a_total 7\n"));
        assert!(text.contains("# TYPE dope_b gauge\n"));
        assert!(text.contains("dope_b 1.5\n"));
    }

    #[test]
    fn labelled_series_render_sorted_and_escaped() {
        let r = MetricsRegistry::new();
        r.counter_with_labels("dope_l_total", "l", &[("z", "1"), ("a", "x\"y")])
            .inc();
        let text = r.render();
        assert!(
            text.contains("dope_l_total{a=\"x\\\"y\",z=\"1\"} 1\n"),
            "{text}"
        );
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let r = MetricsRegistry::new();
        let h = r.histogram("dope_h_seconds", "h");
        h.record_secs(0.003); // 3 ms
        h.record_secs(0.040); // 40 ms
        let text = r.render();
        assert!(text.contains("# TYPE dope_h_seconds histogram\n"));
        assert!(
            text.contains("dope_h_seconds_bucket{le=\"0.005\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("dope_h_seconds_bucket{le=\"0.05\"} 2\n"),
            "{text}"
        );
        assert!(text.contains("dope_h_seconds_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("dope_h_seconds_count 2\n"));
        // Buckets must be monotone non-decreasing.
        let mut last = 0u64;
        for line in text
            .lines()
            .filter(|l| l.starts_with("dope_h_seconds_bucket"))
        {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "non-monotone: {line}");
            last = v;
        }
    }

    #[test]
    fn labelled_histogram_splices_le() {
        let r = MetricsRegistry::new();
        r.histogram_with_labels("dope_h_seconds", "h", &[("path", "0.1")])
            .record_secs(0.001);
        let text = r.render();
        assert!(
            text.contains("dope_h_seconds_bucket{path=\"0.1\",le=\"+Inf\"} 1\n"),
            "{text}"
        );
        assert!(text.contains("dope_h_seconds_count{path=\"0.1\"} 1\n"));
    }

    #[test]
    fn register_external_histogram_is_scraped() {
        let r = MetricsRegistry::new();
        let h = Arc::new(Histogram::new());
        r.register_histogram("dope_ext_seconds", "ext", &[("path", "0")], Arc::clone(&h));
        h.record_secs(0.25);
        let text = r.render();
        assert!(
            text.contains("dope_ext_seconds_count{path=\"0\"} 1\n"),
            "{text}"
        );
    }

    #[test]
    fn histogram_source_is_merged_at_render_time() {
        use std::sync::Mutex;
        let r = MetricsRegistry::new();
        // Two "shards" merged on every render — the scrape always sees
        // the freshest union, with no shared cell between the writers.
        let shards = Arc::new(Mutex::new(vec![
            LocalHistogram::new(),
            LocalHistogram::new(),
        ]));
        let source = Arc::clone(&shards);
        r.register_histogram_source(
            "dope_src_seconds",
            "sharded",
            &[("path", "0")],
            Arc::new(move || {
                let mut merged = LocalHistogram::new();
                for shard in source.lock().unwrap().iter() {
                    merged.merge(shard);
                }
                merged
            }),
        );
        shards.lock().unwrap()[0].record_secs(0.003);
        shards.lock().unwrap()[1].record_secs(0.040);
        let text = r.render();
        assert!(
            text.contains("dope_src_seconds_count{path=\"0\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("dope_src_seconds_bucket{path=\"0\",le=\"0.005\"} 1\n"),
            "{text}"
        );
        // A later record is visible on the next render: nothing cached.
        shards.lock().unwrap()[0].record_secs(0.001);
        assert!(r
            .render()
            .contains("dope_src_seconds_count{path=\"0\"} 3\n"));
    }

    #[test]
    fn counter_source_is_read_at_render_time() {
        let r = MetricsRegistry::new();
        let value = Arc::new(AtomicU64::new(7));
        let source = Arc::clone(&value);
        r.register_counter_source(
            "dope_src_total",
            "sourced",
            &[],
            Arc::new(move || source.load(Ordering::Relaxed)),
        );
        assert!(r.render().contains("dope_src_total 7\n"));
        value.store(9, Ordering::Relaxed);
        assert!(r.render().contains("dope_src_total 9\n"));
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn source_kind_conflict_panics() {
        let r = MetricsRegistry::new();
        let _ = r.gauge("dope_src_conflict", "g");
        r.register_counter_source("dope_src_conflict", "c", &[], Arc::new(|| 0));
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn kind_conflict_panics() {
        let r = MetricsRegistry::new();
        let _ = r.counter("dope_conflict", "c");
        let _ = r.gauge("dope_conflict", "g");
    }

    #[test]
    fn fmt_f64_spells_special_values() {
        assert_eq!(fmt_f64(f64::INFINITY), "+Inf");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "-Inf");
        assert_eq!(fmt_f64(f64::NAN), "NaN");
        assert_eq!(fmt_f64(0.005), "0.005");
    }
}
