//! Log-linear ("HDR-style") fixed-bucket latency histograms.
//!
//! Values are nanoseconds stored as `u64`. The bucket layout is
//! *log-linear*: bucket widths double every octave but each octave is
//! subdivided linearly, bounding the **relative** quantile error by the
//! sub-bucket resolution instead of wasting memory on linear buckets or
//! precision on purely exponential ones.
//!
//! Concretely, with [`SUB_BITS`] = 6:
//!
//! * group 0 covers `[0, 64)` ns with 64 buckets of width 1 (exact);
//! * group `g >= 1` covers `[64 << (g-1), 64 << g)` ns with 32 buckets
//!   of width `2^g`.
//!
//! Every recorded value lands in a bucket whose width is at most
//! `value / 32`, so any quantile read from bucket upper bounds is within
//! [`QUANTILE_RELATIVE_ERROR`] (= 1/32 ≈ 3.125 %) of the true sample
//! quantile. 1920 buckets cover the full `u64` range (~584 years in
//! nanoseconds), so recording can never overflow or clamp.
//!
//! Two concrete types share the layout:
//!
//! * [`Histogram`] — atomics per bucket, for concurrent hot paths (the
//!   monitor's per-invocation record is a single `fetch_add` per bucket
//!   plus three for count/sum/min-max maintenance);
//! * [`LocalHistogram`] — a plain single-threaded variant with
//!   grow-on-demand storage, `Clone`/`PartialEq`, and `merge`, used by
//!   `ResponseStats` and the offline `dope-trace stats` summarizer.
//!
//! ```
//! use dope_metrics::Histogram;
//!
//! let h = Histogram::new();
//! for ms in [1_u64, 2, 3, 4, 100] {
//!     h.record_secs(ms as f64 / 1e3);
//! }
//! assert_eq!(h.count(), 5);
//! let p50 = h.quantile_secs(0.50).unwrap();
//! assert!((p50 - 0.003).abs() / 0.003 < 0.04, "p50 = {p50}");
//! let p99 = h.quantile_secs(0.99).unwrap();
//! assert!((p99 - 0.100).abs() / 0.100 < 0.04, "p99 = {p99}");
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of the number of linear sub-buckets per octave.
pub const SUB_BITS: u32 = 6;
const SUB_COUNT: u64 = 1 << SUB_BITS; // 64
const SUB_HALF: u64 = SUB_COUNT / 2; // 32

/// Number of value groups: group 0 plus one per remaining octave of u64.
const GROUPS: usize = (64 - SUB_BITS as usize) + 1; // 59

/// Total number of buckets in the layout.
pub const BUCKET_COUNT: usize = SUB_COUNT as usize + (GROUPS - 1) * SUB_HALF as usize; // 1920

/// Worst-case relative error of any quantile reported by these
/// histograms, by construction of the bucket widths.
pub const QUANTILE_RELATIVE_ERROR: f64 = 1.0 / SUB_HALF as f64;

/// Maps a nanosecond value to its bucket index. Total over all of `u64`.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_COUNT {
        return value as usize;
    }
    // Highest set bit; value >= 64 so msb >= SUB_BITS.
    let msb = 63 - value.leading_zeros();
    let group = (msb - (SUB_BITS - 1)) as u64; // >= 1
    let sub = (value >> group) - SUB_HALF; // in [0, 32)
    (SUB_COUNT + (group - 1) * SUB_HALF + sub) as usize
}

/// The half-open nanosecond range `[low, high)` covered by bucket `index`.
///
/// The final bucket's upper bound saturates at `u64::MAX`.
#[must_use]
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    let index = index as u64;
    if index < SUB_COUNT {
        return (index, index + 1);
    }
    let group = (index - SUB_COUNT) / SUB_HALF + 1;
    let sub = (index - SUB_COUNT) % SUB_HALF;
    let low = (SUB_HALF + sub) << group;
    let high = low.saturating_add(1 << group);
    (low, high)
}

const NANOS_PER_SEC: f64 = 1e9;

fn secs_to_nanos(secs: f64) -> u64 {
    if secs.is_nan() || secs <= 0.0 {
        return 0;
    }
    let nanos = secs * NANOS_PER_SEC;
    if nanos >= u64::MAX as f64 {
        u64::MAX // covers +Inf
    } else {
        nanos as u64
    }
}

/// Shared quantile logic over any bucket iterator.
///
/// `rank` is 1-based: the k-th smallest recorded value. Returns the
/// upper bound (in ns) of the bucket containing that rank.
fn rank_bucket_upper(counts: impl Iterator<Item = (usize, u64)>, rank: u64) -> u64 {
    let mut seen = 0u64;
    for (idx, c) in counts {
        seen += c;
        if seen >= rank {
            return bucket_bounds(idx)
                .1
                .saturating_sub(1)
                .max(bucket_bounds(idx).0);
        }
    }
    0
}

/// 1-based rank of the `q`-quantile under the *exceedance* convention:
/// the smallest rank strictly greater than `q * count` (clamped to
/// `[1, count]`).
///
/// The previous nearest-rank rule (`ceil(q * count)`) hid exactly the
/// observations tail quantiles exist to expose: with 100 samples, 99
/// fast and 1 slow, `p99` ranked `ceil(99) = 99` and reported a *fast*
/// sample. `floor(q * count) + 1` ranks 100 and reports the outlier,
/// while agreeing with nearest-rank everywhere `q * count` is not an
/// exact integer.
fn quantile_rank(q: f64, count: u64) -> u64 {
    let q = q.clamp(0.0, 1.0);
    (((q * count as f64).floor()) as u64)
        .saturating_add(1)
        .clamp(1, count)
}

/// A concurrent log-linear histogram of nanosecond latencies.
///
/// All operations are lock-free (`Relaxed` atomics). Reads taken while
/// writers are active are *approximately* consistent — fine for
/// monitoring, matching Prometheus semantics.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKET_COUNT]>,
    count: AtomicU64,
    sum_nanos: AtomicU64,
    min_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        // Box<[AtomicU64; N]> without a large stack temporary.
        let buckets: Box<[AtomicU64; BUCKET_COUNT]> = (0..BUCKET_COUNT)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice()
            .try_into()
            .unwrap_or_else(|_| unreachable!("length is BUCKET_COUNT"));
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            min_nanos: AtomicU64::new(u64::MAX),
            max_nanos: AtomicU64::new(0),
        }
    }

    /// Records one nanosecond value.
    pub fn record_nanos(&self, nanos: u64) {
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.min_nanos.fetch_min(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Records one duration expressed in seconds (negative or non-finite
    /// values clamp to 0).
    pub fn record_secs(&self, secs: f64) {
        self.record_nanos(secs_to_nanos(secs));
    }

    /// Total number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values, in seconds.
    #[must_use]
    pub fn sum_secs(&self) -> f64 {
        self.sum_nanos.load(Ordering::Relaxed) as f64 / NANOS_PER_SEC
    }

    /// Mean recorded value in seconds (`None` when empty).
    #[must_use]
    pub fn mean_secs(&self) -> Option<f64> {
        let count = self.count();
        (count > 0).then(|| self.sum_secs() / count as f64)
    }

    /// Smallest recorded value in seconds (`None` when empty).
    #[must_use]
    pub fn min_secs(&self) -> Option<f64> {
        (self.count() > 0).then(|| self.min_nanos.load(Ordering::Relaxed) as f64 / NANOS_PER_SEC)
    }

    /// Largest recorded value in seconds (`None` when empty).
    #[must_use]
    pub fn max_secs(&self) -> Option<f64> {
        (self.count() > 0).then(|| self.max_nanos.load(Ordering::Relaxed) as f64 / NANOS_PER_SEC)
    }

    /// The `q`-quantile (`q` in `[0, 1]`) in seconds, within
    /// [`QUANTILE_RELATIVE_ERROR`] of the true sample quantile, clamped
    /// to the observed `[min, max]`. `None` when empty.
    #[must_use]
    pub fn quantile_secs(&self, q: f64) -> Option<f64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let rank = quantile_rank(q, count);
        let nanos = rank_bucket_upper(
            self.buckets
                .iter()
                .enumerate()
                .map(|(i, b)| (i, b.load(Ordering::Relaxed))),
            rank,
        );
        let min = self.min_nanos.load(Ordering::Relaxed);
        let max = self.max_nanos.load(Ordering::Relaxed);
        Some(nanos.clamp(min, max) as f64 / NANOS_PER_SEC)
    }

    /// Number of recorded values `<= upper_secs` (cumulative, Prometheus
    /// `le` semantics, conservative: a fine bucket counts when its whole
    /// range lies at or below the boundary).
    #[must_use]
    pub fn cumulative_le_secs(&self, upper_secs: f64) -> u64 {
        let upper = secs_to_nanos(upper_secs);
        let mut total = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            let (_, high) = bucket_bounds(i);
            // Bucket range [low, high) fits under `upper` iff high-1 <= upper.
            if high.saturating_sub(1) <= upper {
                total += c;
            }
        }
        total
    }

    /// Resets all buckets and counters to empty.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_nanos.store(0, Ordering::Relaxed);
        self.min_nanos.store(u64::MAX, Ordering::Relaxed);
        self.max_nanos.store(0, Ordering::Relaxed);
    }

    /// Absorbs every recorded value of a [`LocalHistogram`] into this
    /// atomic histogram (the inverse of [`Histogram::snapshot`]): used to
    /// expose offline accumulators — e.g. a bounded `ResponseStats` — on
    /// a scrapeable registry.
    pub fn merge_local(&self, other: &LocalHistogram) {
        for (i, &c) in other.buckets.iter().enumerate() {
            if c > 0 {
                self.buckets[i].fetch_add(c, Ordering::Relaxed);
            }
        }
        if other.count > 0 {
            self.count.fetch_add(other.count, Ordering::Relaxed);
            self.sum_nanos.fetch_add(other.sum_nanos, Ordering::Relaxed);
            self.min_nanos.fetch_min(other.min_nanos, Ordering::Relaxed);
            self.max_nanos.fetch_max(other.max_nanos, Ordering::Relaxed);
        }
    }

    /// Alias of [`Histogram::snapshot`] for callers whose surrounding
    /// codebase gives `snapshot` a heavier meaning (the runtime's
    /// monitor aggregates per-worker shard histograms under a lock, and
    /// its static lock-order pass resolves method calls by name).
    #[must_use]
    pub fn to_local(&self) -> LocalHistogram {
        self.snapshot()
    }

    /// A point-in-time single-threaded copy of this histogram.
    #[must_use]
    pub fn snapshot(&self) -> LocalHistogram {
        let mut local = LocalHistogram::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                local.add_bucket(i, c);
            }
        }
        local.count = self.count();
        local.sum_nanos = self.sum_nanos.load(Ordering::Relaxed);
        local.min_nanos = self.min_nanos.load(Ordering::Relaxed);
        local.max_nanos = self.max_nanos.load(Ordering::Relaxed);
        local
    }
}

/// A plain (non-atomic) log-linear histogram with the same bucket layout
/// as [`Histogram`].
///
/// Storage grows on demand, so an empty or low-latency histogram stays
/// tiny. Used where `Clone`/`PartialEq`/`merge` matter more than
/// concurrency: `dope-workload`'s `ResponseStats` and the offline trace
/// summarizer.
#[derive(Debug, Clone)]
pub struct LocalHistogram {
    /// Bucket counts; trailing zero buckets may be absent.
    buckets: Vec<u64>,
    count: u64,
    sum_nanos: u64,
    min_nanos: u64,
    max_nanos: u64,
}

impl Default for LocalHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl PartialEq for LocalHistogram {
    fn eq(&self, other: &Self) -> bool {
        if (self.count, self.sum_nanos) != (other.count, other.sum_nanos) {
            return false;
        }
        if self.count > 0 && (self.min_nanos, self.max_nanos) != (other.min_nanos, other.max_nanos)
        {
            return false;
        }
        // Compare buckets, padding the shorter Vec with zeros.
        let longest = self.buckets.len().max(other.buckets.len());
        (0..longest).all(|i| {
            self.buckets.get(i).copied().unwrap_or(0) == other.buckets.get(i).copied().unwrap_or(0)
        })
    }
}

impl LocalHistogram {
    /// An empty histogram (no bucket storage allocated yet).
    #[must_use]
    pub fn new() -> Self {
        LocalHistogram {
            buckets: Vec::new(),
            count: 0,
            sum_nanos: 0,
            min_nanos: u64::MAX,
            max_nanos: 0,
        }
    }

    fn add_bucket(&mut self, index: usize, n: u64) {
        if self.buckets.len() <= index {
            self.buckets.resize(index + 1, 0);
        }
        self.buckets[index] += n;
    }

    /// Records one nanosecond value.
    pub fn record_nanos(&mut self, nanos: u64) {
        self.add_bucket(bucket_index(nanos), 1);
        self.count += 1;
        self.sum_nanos = self.sum_nanos.saturating_add(nanos);
        self.min_nanos = self.min_nanos.min(nanos);
        self.max_nanos = self.max_nanos.max(nanos);
    }

    /// Records one duration expressed in seconds (negative or non-finite
    /// values clamp to 0).
    pub fn record_secs(&mut self, secs: f64) {
        self.record_nanos(secs_to_nanos(secs));
    }

    /// Absorbs every recorded value of `other` into `self`.
    pub fn merge(&mut self, other: &LocalHistogram) {
        for (i, &c) in other.buckets.iter().enumerate() {
            if c > 0 {
                self.add_bucket(i, c);
            }
        }
        self.count += other.count;
        self.sum_nanos = self.sum_nanos.saturating_add(other.sum_nanos);
        self.min_nanos = self.min_nanos.min(other.min_nanos);
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }

    /// Total number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values, in seconds.
    #[must_use]
    pub fn sum_secs(&self) -> f64 {
        self.sum_nanos as f64 / NANOS_PER_SEC
    }

    /// Mean recorded value in seconds (`None` when empty).
    #[must_use]
    pub fn mean_secs(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum_secs() / self.count as f64)
    }

    /// Smallest recorded value in seconds (`None` when empty).
    #[must_use]
    pub fn min_secs(&self) -> Option<f64> {
        (self.count > 0).then(|| self.min_nanos as f64 / NANOS_PER_SEC)
    }

    /// Largest recorded value in seconds (`None` when empty).
    #[must_use]
    pub fn max_secs(&self) -> Option<f64> {
        (self.count > 0).then(|| self.max_nanos as f64 / NANOS_PER_SEC)
    }

    /// The `q`-quantile (`q` in `[0, 1]`) in seconds, within
    /// [`QUANTILE_RELATIVE_ERROR`] of the true sample quantile, clamped
    /// to the observed `[min, max]`. `None` when empty.
    #[must_use]
    pub fn quantile_secs(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = quantile_rank(q, self.count);
        let nanos = rank_bucket_upper(self.buckets.iter().copied().enumerate(), rank);
        Some(nanos.clamp(self.min_nanos, self.max_nanos) as f64 / NANOS_PER_SEC)
    }

    /// Number of recorded values `<= upper_secs` (Prometheus `le`
    /// semantics; see [`Histogram::cumulative_le_secs`]).
    #[must_use]
    pub fn cumulative_le_secs(&self, upper_secs: f64) -> u64 {
        let upper = secs_to_nanos(upper_secs);
        let mut total = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let (_, high) = bucket_bounds(i);
            if high.saturating_sub(1) <= upper {
                total += c;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_total_and_monotone() {
        let probes = [
            0u64,
            1,
            63,
            64,
            65,
            127,
            128,
            1_000,
            1_000_000,
            1_000_000_000,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut last = None;
        for &v in &probes {
            let idx = bucket_index(v);
            assert!(idx < BUCKET_COUNT, "index {idx} out of range for {v}");
            if let Some(prev) = last {
                assert!(idx >= prev, "index not monotone at {v}");
            }
            last = Some(idx);
        }
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
    }

    #[test]
    fn bucket_bounds_round_trip() {
        for idx in 0..BUCKET_COUNT {
            let (low, high) = bucket_bounds(idx);
            assert!(low < high, "empty bucket {idx}");
            assert_eq!(bucket_index(low), idx, "low bound of {idx}");
            assert_eq!(bucket_index(high - 1), idx, "high bound of {idx}");
        }
    }

    #[test]
    fn bucket_width_bounds_relative_error() {
        for &v in &[64u64, 100, 999, 12_345, 1 << 40] {
            let (low, high) = bucket_bounds(bucket_index(v));
            let width = (high - low) as f64;
            assert!(
                width / low as f64 <= QUANTILE_RELATIVE_ERROR + 1e-12,
                "bucket [{low},{high}) too wide for {v}"
            );
        }
    }

    #[test]
    fn quantiles_track_exact_values_within_bound() {
        let h = Histogram::new();
        let mut values: Vec<u64> = (1..=1000).map(|i| i * 1_000_000).collect(); // 1..1000 ms
        for &v in &values {
            h.record_nanos(v);
        }
        values.sort_unstable();
        for &q in &[0.5f64, 0.9, 0.95, 0.99, 1.0] {
            let exact = values[((q * 1000.0).ceil() as usize).clamp(1, 1000) - 1] as f64 / 1e9;
            let approx = h.quantile_secs(q).unwrap();
            let rel = (approx - exact).abs() / exact;
            assert!(rel <= QUANTILE_RELATIVE_ERROR, "q={q}: {approx} vs {exact}");
        }
    }

    #[test]
    fn empty_histogram_reports_none() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.quantile_secs(0.5).is_none());
        assert!(h.mean_secs().is_none());
        assert!(h.min_secs().is_none());
        assert!(h.max_secs().is_none());
        let l = LocalHistogram::new();
        assert!(l.quantile_secs(0.99).is_none());
    }

    #[test]
    fn single_value_quantiles_clamp_to_observation() {
        let h = Histogram::new();
        h.record_secs(0.010);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let v = h.quantile_secs(q).unwrap();
            assert!(
                (v - 0.010).abs() / 0.010 <= QUANTILE_RELATIVE_ERROR,
                "q={q}: {v}"
            );
        }
    }

    #[test]
    fn negative_and_nan_seconds_clamp_to_zero() {
        let h = Histogram::new();
        h.record_secs(-1.0);
        h.record_secs(f64::NAN);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile_secs(1.0), Some(0.0));
    }

    #[test]
    fn cumulative_le_matches_manual_count() {
        let h = Histogram::new();
        for ms in [1u64, 2, 5, 10, 20, 50] {
            h.record_secs(ms as f64 / 1e3);
        }
        assert_eq!(h.cumulative_le_secs(0.0005), 0);
        assert!(h.cumulative_le_secs(0.011) >= 4);
        assert_eq!(h.cumulative_le_secs(1.0), 6);
        assert_eq!(h.cumulative_le_secs(f64::INFINITY), 6);
    }

    #[test]
    fn local_merge_equals_combined_recording() {
        let mut a = LocalHistogram::new();
        let mut b = LocalHistogram::new();
        let mut combined = LocalHistogram::new();
        for v in [10u64, 200, 3_000] {
            a.record_nanos(v);
            combined.record_nanos(v);
        }
        for v in [40_000u64, 500_000] {
            b.record_nanos(v);
            combined.record_nanos(v);
        }
        a.merge(&b);
        assert_eq!(a, combined);
        assert_eq!(a.count(), 5);
    }

    #[test]
    fn local_partial_eq_ignores_trailing_zero_buckets() {
        let mut a = LocalHistogram::new();
        a.record_nanos(5);
        let mut b = a.clone();
        // Force b to have longer (all-zero) storage.
        b.add_bucket(500, 1);
        b.buckets[500] = 0;
        assert_eq!(a, b);
    }

    #[test]
    fn merge_local_round_trips_through_snapshot() {
        let mut local = LocalHistogram::new();
        for v in [100u64, 2_000, 30_000_000] {
            local.record_nanos(v);
        }
        let h = Histogram::new();
        h.record_nanos(7);
        h.merge_local(&local);
        assert_eq!(h.count(), 4);
        assert_eq!(h.min_secs(), Some(7e-9));
        assert_eq!(h.max_secs(), Some(0.03));
        let mut expected = local.clone();
        expected.record_nanos(7);
        assert_eq!(h.snapshot(), expected);
        // Merging an empty histogram is a no-op.
        h.merge_local(&LocalHistogram::new());
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn atomic_snapshot_equals_local_recording() {
        let h = Histogram::new();
        let mut l = LocalHistogram::new();
        for v in [1u64, 70, 4_096, 1_000_000] {
            h.record_nanos(v);
            l.record_nanos(v);
        }
        assert_eq!(h.snapshot(), l);
    }

    #[test]
    fn reset_empties_the_histogram() {
        let h = Histogram::new();
        h.record_secs(0.5);
        h.reset();
        assert_eq!(h.count(), 0);
        assert!(h.quantile_secs(0.5).is_none());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record_nanos(t * 1_000_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
    }
}
