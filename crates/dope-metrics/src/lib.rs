//! # dope-metrics — live telemetry for the DoPE executive
//!
//! The paper's executive steers on *mean* execution times and claims
//! its monitoring costs "less than 1 %". This crate supplies the live
//! observability plane those claims demand on a real deployment:
//!
//! * a lock-light [`MetricsRegistry`] of [`Counter`]s, [`Gauge`]s, and
//!   log-linear [`Histogram`]s (handles are plain atomics; the registry
//!   map is only locked at registration and render time);
//! * **tail latency**: histograms bound quantile error to
//!   [`QUANTILE_RELATIVE_ERROR`] (≈ 3.1 %) over the full `u64`
//!   nanosecond range, with no allocation on the record path;
//! * Prometheus text exposition: [`MetricsRegistry::render`] for
//!   one-shot dumps, [`MetricsServer`] for a std-`TcpListener` scrape
//!   endpoint, and [`scrape`] as the matching `curl`-style client;
//! * [`names`]: the canonical `dope_*` metric catalogue that docs and
//!   tests cross-check.
//!
//! The crate is std-only (no dependencies at all), keeping the offline
//! workspace honest, and everything is zero-cost when simply not
//! registered: instrumented components hold `Option`-free `Arc` handles
//! only after a registry is attached.

pub mod histogram;
pub mod names;
pub mod registry;
pub mod server;

pub use histogram::{
    bucket_bounds, bucket_index, Histogram, LocalHistogram, BUCKET_COUNT, QUANTILE_RELATIVE_ERROR,
};
pub use registry::{
    Counter, CounterSource, Gauge, HistogramSource, MetricsRegistry, EXPOSITION_BOUNDS_SECS,
};
pub use server::{scrape, MetricsServer};
