//! Generic live stage pipeline (ferret/dedup shape).
//!
//! Builds a DoPE descriptor for a single-level pipeline: stages connected
//! by replica-local queues, a shared source queue in front, and the
//! completion sink at the end. The drain protocol follows the paper's
//! `FiniCB` idiom: the last worker of a stage to exit closes the next
//! queue, so downstream stages finish their residual work before
//! suspending — a globally consistent state.

use crate::service::ServiceStats;
use dope_core::{
    NestFactory, QueueStats, TaskBody, TaskCx, TaskKind, TaskSpec, TaskStatus, WorkerSlot,
};
use dope_workload::{DequeueOutcome, WorkQueue};
use std::any::Any;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An item flowing through the pipeline.
pub struct PipeItem {
    /// Item id.
    pub id: u64,
    /// Submission time.
    pub submitted: Instant,
    /// Stage-specific payload.
    pub payload: Box<dyn Any + Send>,
}

impl std::fmt::Debug for PipeItem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipeItem")
            .field("id", &self.id)
            .finish_non_exhaustive()
    }
}

impl PipeItem {
    /// An item wrapping `payload`.
    #[must_use]
    pub fn new(id: u64, payload: Box<dyn Any + Send>) -> Self {
        PipeItem {
            id,
            submitted: Instant::now(),
            payload,
        }
    }
}

/// Definition of one pipeline stage.
#[derive(Clone)]
pub struct StageDef {
    /// Stage name.
    pub name: String,
    /// Sequential or parallel.
    pub kind: TaskKind,
    /// Extent cap, if any.
    pub max_extent: Option<u32>,
    /// The stage's transformation.
    pub work: Arc<dyn Fn(PipeItem) -> PipeItem + Send + Sync>,
}

impl std::fmt::Debug for StageDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StageDef")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .finish_non_exhaustive()
    }
}

impl StageDef {
    /// A sequential stage.
    pub fn seq<F>(name: &str, work: F) -> Self
    where
        F: Fn(PipeItem) -> PipeItem + Send + Sync + 'static,
    {
        StageDef {
            name: name.to_string(),
            kind: TaskKind::Seq,
            max_extent: Some(1),
            work: Arc::new(work),
        }
    }

    /// A parallel stage.
    pub fn par<F>(name: &str, work: F) -> Self
    where
        F: Fn(PipeItem) -> PipeItem + Send + Sync + 'static,
    {
        StageDef {
            name: name.to_string(),
            kind: TaskKind::Par,
            max_extent: None,
            work: Arc::new(work),
        }
    }
}

/// A live pipeline application: its source queue and statistics sink.
#[derive(Debug)]
pub struct LivePipeline {
    /// Items enter here.
    pub source: WorkQueue<PipeItem>,
    /// Completions are recorded here.
    pub stats: Arc<ServiceStats>,
}

impl Default for LivePipeline {
    fn default() -> Self {
        LivePipeline::new()
    }
}

impl LivePipeline {
    /// A fresh pipeline harness.
    #[must_use]
    pub fn new() -> Self {
        LivePipeline {
            source: WorkQueue::new(),
            stats: ServiceStats::new(),
        }
    }

    /// The DoPE descriptor: a nest named `name` whose alternatives are
    /// the given stage lists (alternative 1, when present, is the fused
    /// variant registered for TBF).
    #[must_use]
    pub fn descriptor(&self, name: &str, alternatives: Vec<Vec<StageDef>>) -> Vec<TaskSpec> {
        assert!(!alternatives.is_empty(), "pipeline needs one descriptor");
        let factories: Vec<Arc<dyn NestFactory>> = alternatives
            .into_iter()
            .map(|stages| {
                let source = self.source.clone();
                let stats = Arc::clone(&self.stats);
                Arc::new(move |_replica: u32| {
                    build_stage_specs(&stages, source.clone(), Arc::clone(&stats))
                }) as Arc<dyn NestFactory>
            })
            .collect();
        let occupancy = self.source.clone();
        vec![TaskSpec::nest_choice(name, TaskKind::Par, factories)
            .with_max_extent(1)
            .with_load(move || occupancy.occupancy())]
    }

    /// A probe for `DopeBuilder::queue_probe`.
    pub fn queue_probe(&self) -> impl Fn() -> QueueStats + Send + Sync + 'static {
        let queue = self.source.clone();
        let stats = Arc::clone(&self.stats);
        move || QueueStats {
            occupancy: queue.occupancy(),
            arrival_rate: queue.total_enqueued() as f64 / stats.elapsed_secs().max(1e-9),
            enqueued: queue.total_enqueued(),
            completed: stats.completed(),
        }
    }

    /// Like [`queue_probe`](LivePipeline::queue_probe), but every probe
    /// invocation additionally records a `QueueSample` event into
    /// `recorder` — lightweight queue tracing without attaching the
    /// recorder to a full executive.
    pub fn traced_queue_probe(
        &self,
        recorder: dope_trace::Recorder,
    ) -> impl Fn() -> QueueStats + Send + Sync + 'static {
        let probe = self.queue_probe();
        move || {
            let queue = probe();
            recorder.record_with(|| dope_trace::TraceEvent::QueueSample { queue });
            queue
        }
    }
}

enum StageOut {
    Queue(WorkQueue<PipeItem>),
    Sink(Arc<ServiceStats>),
}

fn build_stage_specs(
    stages: &[StageDef],
    source: WorkQueue<PipeItem>,
    stats: Arc<ServiceStats>,
) -> Vec<TaskSpec> {
    let n = stages.len();
    let queues: Vec<WorkQueue<PipeItem>> =
        (0..n.saturating_sub(1)).map(|_| WorkQueue::new()).collect();
    stages
        .iter()
        .enumerate()
        .map(|(s, def)| {
            let input = if s == 0 {
                source.clone()
            } else {
                queues[s - 1].clone()
            };
            let output = if s + 1 < n {
                StageOut::Queue(queues[s].clone())
            } else {
                StageOut::Sink(Arc::clone(&stats))
            };
            stage_spec(def, s == 0, input, output)
        })
        .collect()
}

fn stage_spec(
    def: &StageDef,
    is_inlet: bool,
    input: WorkQueue<PipeItem>,
    output: StageOut,
) -> TaskSpec {
    let work = Arc::clone(&def.work);
    let active = Arc::new(AtomicU32::new(0));
    let output = Arc::new(output);
    let load_q = input.clone();
    let mut spec = TaskSpec::leaf(def.name.clone(), def.kind, move |_slot: WorkerSlot| {
        Box::new(StageBody {
            input: input.clone(),
            output: Arc::clone(&output),
            work: Arc::clone(&work),
            active: Arc::clone(&active),
            is_inlet,
        }) as Box<dyn TaskBody>
    })
    .with_load(move || load_q.occupancy());
    if let Some(cap) = def.max_extent {
        spec = spec.with_max_extent(cap);
    }
    spec
}

struct StageBody {
    input: WorkQueue<PipeItem>,
    output: Arc<StageOut>,
    work: Arc<dyn Fn(PipeItem) -> PipeItem + Send + Sync>,
    active: Arc<AtomicU32>,
    is_inlet: bool,
}

impl TaskBody for StageBody {
    fn init(&mut self) {
        self.active.fetch_add(1, Ordering::AcqRel);
    }

    fn invoke(&mut self, cx: &mut dyn TaskCx) -> TaskStatus {
        // Only the inlet honours the suspend directive directly; inner
        // stages drain until their queue closes (paper §3.2 step 5).
        if self.is_inlet && cx.directive().wants_suspend() {
            return TaskStatus::Suspended;
        }
        cx.begin();
        let outcome = self.input.dequeue_timeout(Duration::from_millis(2));
        let status = match outcome {
            DequeueOutcome::Item(item) => {
                let item = (self.work)(item);
                match &*self.output {
                    StageOut::Queue(q) => {
                        let _ = q.enqueue(item);
                    }
                    StageOut::Sink(stats) => stats.record_completion(item.submitted),
                }
                TaskStatus::Executing
            }
            DequeueOutcome::Drained => TaskStatus::Finished,
            DequeueOutcome::TimedOut => TaskStatus::Executing,
        };
        cx.end();
        status
    }

    fn fini(&mut self, _status: TaskStatus) {
        // Last worker out closes the downstream queue so the next stage
        // drains and terminates (the paper's sentinel cascade).
        if self.active.fetch_sub(1, Ordering::AcqRel) == 1 {
            if let StageOut::Queue(q) = &*self.output {
                q.close();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dope_core::{ProgramShape, Work};

    fn passthrough(name: &str) -> StageDef {
        StageDef::par(name, |item| item)
    }

    #[test]
    fn descriptor_exposes_alternatives() {
        let pipe = LivePipeline::new();
        let specs = pipe.descriptor(
            "ferret",
            vec![
                vec![
                    StageDef::seq("load", |i| i),
                    passthrough("seg"),
                    StageDef::seq("out", |i| i),
                ],
                vec![StageDef::seq("load", |i| i), passthrough("fused")],
            ],
        );
        let shape = ProgramShape::of_specs(&specs);
        assert_eq!(shape.tasks[0].alternatives.len(), 2);
        assert_eq!(shape.tasks[0].alternatives[0].len(), 3);
        assert_eq!(shape.tasks[0].alternatives[1].len(), 2);
        assert_eq!(shape.tasks[0].max_extent, Some(1));
    }

    #[test]
    fn stages_pass_items_to_sink() {
        let pipe = LivePipeline::new();
        let doubled = Arc::new(AtomicU32::new(0));
        let d = Arc::clone(&doubled);
        let stages = vec![
            StageDef::seq("in", |i| i),
            StageDef::par("work", move |item| {
                d.fetch_add(1, Ordering::SeqCst);
                item
            }),
        ];
        let specs = build_stage_specs(&stages, pipe.source.clone(), Arc::clone(&pipe.stats));
        // Run bodies manually: enqueue two items, drain.
        pipe.source.enqueue(PipeItem::new(0, Box::new(()))).unwrap();
        pipe.source.enqueue(PipeItem::new(1, Box::new(()))).unwrap();
        pipe.source.close();
        let mut bodies: Vec<Box<dyn TaskBody>> = specs
            .iter()
            .map(|s| match s.work() {
                Work::Leaf(f) => f.make_body(WorkerSlot {
                    replica: 0,
                    worker: 0,
                    extent: 1,
                }),
                Work::Nest(_) => unreachable!(),
            })
            .collect();
        let mut cx = dope_core::task::NullCx::default();
        for b in &mut bodies {
            b.init();
        }
        // Inlet drains the source, then its fini closes the next queue.
        while bodies[0].invoke(&mut cx) == TaskStatus::Executing {}
        bodies[0].fini(TaskStatus::Finished);
        while bodies[1].invoke(&mut cx) == TaskStatus::Executing {}
        bodies[1].fini(TaskStatus::Finished);
        assert_eq!(doubled.load(Ordering::SeqCst), 2);
        assert_eq!(pipe.stats.completed(), 2);
    }

    #[test]
    fn queue_probe_reports_source() {
        let pipe = LivePipeline::new();
        pipe.source
            .enqueue(PipeItem::new(0, Box::new(5u32)))
            .unwrap();
        let probe = pipe.queue_probe();
        assert_eq!(probe().occupancy, 1.0);
    }

    #[test]
    fn traced_queue_probe_records_samples() {
        let pipe = LivePipeline::new();
        pipe.source
            .enqueue(PipeItem::new(0, Box::new(5u32)))
            .unwrap();
        let recorder = dope_trace::Recorder::bounded(8);
        let probe = pipe.traced_queue_probe(recorder.clone());
        let _ = probe();
        let _ = probe();
        let kinds: Vec<&str> = recorder.records().iter().map(|r| r.event.kind()).collect();
        assert_eq!(kinds, ["QueueSample", "QueueSample"]);
    }
}
