//! The oilify filter (the gimp stand-in).
//!
//! GIMP's oilify plugin replaces each pixel with the most frequent
//! intensity in its neighbourhood — a histogram-mode filter. Rows are
//! independent, which is exactly the DOALL parallelism the paper
//! exploits.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// An 8-bit grayscale image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Row-major pixels.
    pub pixels: Vec<u8>,
}

impl Image {
    /// A deterministic synthetic photo-like image.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero.
    #[must_use]
    pub fn synthetic(width: usize, height: usize, seed: u64) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut pixels = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                let base = ((x * 7 + y * 13) % 256) as u32;
                let noise: u32 = rng.gen_range(0..32);
                pixels.push(((base + noise) % 256) as u8);
            }
        }
        Image {
            width,
            height,
            pixels,
        }
    }
}

/// Applies oilify to the rows owned by `worker` of `extent`, writing into
/// `out` (same dimensions as `image`). Rows are partitioned contiguously.
pub fn oilify_rows(image: &Image, out: &mut [u8], radius: usize, worker: u32, extent: u32) {
    assert_eq!(out.len(), image.pixels.len(), "output buffer size");
    let extent = extent.max(1) as usize;
    let worker = (worker as usize).min(extent - 1);
    let rows_per = image.height.div_ceil(extent);
    let start = worker * rows_per;
    let end = ((worker + 1) * rows_per).min(image.height);
    for y in start..end {
        for x in 0..image.width {
            let mut histogram = [0u16; 32]; // quantized to 32 bins like the plugin
            let y0 = y.saturating_sub(radius);
            let y1 = (y + radius).min(image.height - 1);
            let x0 = x.saturating_sub(radius);
            let x1 = (x + radius).min(image.width - 1);
            for ny in y0..=y1 {
                for nx in x0..=x1 {
                    let v = image.pixels[ny * image.width + nx];
                    histogram[(v >> 3) as usize] += 1;
                }
            }
            let mode_bin = histogram
                .iter()
                .enumerate()
                .max_by_key(|&(_, &c)| c)
                .map(|(i, _)| i)
                .unwrap_or(0);
            out[y * image.width + x] = ((mode_bin << 3) + 4) as u8;
        }
    }
}

/// Applies oilify to the whole image sequentially.
#[must_use]
pub fn oilify(image: &Image, radius: usize) -> Vec<u8> {
    let mut out = vec![0u8; image.pixels.len()];
    oilify_rows(image, &mut out, radius, 0, 1);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioned_filter_matches_sequential() {
        let img = Image::synthetic(48, 36, 2);
        let whole = oilify(&img, 3);
        for extent in [2u32, 3, 5] {
            let mut out = vec![0u8; img.pixels.len()];
            for w in 0..extent {
                oilify_rows(&img, &mut out, 3, w, extent);
            }
            assert_eq!(out, whole, "extent {extent}");
        }
    }

    #[test]
    fn output_is_quantized_to_bin_centers() {
        let img = Image::synthetic(16, 16, 0);
        for v in oilify(&img, 2) {
            assert_eq!((v as usize - 4) % 8, 0, "value {v}");
        }
    }

    #[test]
    fn uniform_image_is_fixed_point() {
        let img = Image {
            width: 8,
            height: 8,
            pixels: vec![100; 64],
        };
        // 100 lands in bin 12, whose center is 100.
        assert!(oilify(&img, 2).iter().all(|&v| v == 100));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(Image::synthetic(10, 10, 4), Image::synthetic(10, 10, 4));
        assert_ne!(Image::synthetic(10, 10, 4), Image::synthetic(10, 10, 5));
    }
}
