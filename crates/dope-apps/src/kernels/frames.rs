//! Video frame generation and transform coding (the x264 stand-in).
//!
//! A frame is an 8-bit luma plane; encoding runs an 8x8 integer DCT over
//! every block, quantizes, and accumulates the coded size — the
//! CPU-intensive heart of a transform-based encoder, without the
//! entropy-coding bookkeeping.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// An 8-bit luma frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Width in pixels (multiple of 8).
    pub width: usize,
    /// Height in pixels (multiple of 8).
    pub height: usize,
    /// Row-major samples, `width * height` of them.
    pub samples: Vec<u8>,
}

impl Frame {
    /// A deterministic synthetic frame: smooth gradients plus seeded
    /// noise, so DCT energy concentrates in low frequencies like real
    /// video.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is not a positive multiple of 8.
    #[must_use]
    pub fn synthetic(width: usize, height: usize, seed: u64) -> Self {
        assert!(
            width > 0 && height > 0 && width.is_multiple_of(8) && height.is_multiple_of(8),
            "frame dimensions must be positive multiples of 8"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut samples = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                let gradient = ((x * 255) / width + (y * 128) / height) as u32;
                let noise: u32 = rng.gen_range(0..24);
                samples.push(((gradient + noise) % 256) as u8);
            }
        }
        Frame {
            width,
            height,
            samples,
        }
    }

    /// Number of 8x8 blocks.
    #[must_use]
    pub fn blocks(&self) -> usize {
        (self.width / 8) * (self.height / 8)
    }
}

/// Forward 8x8 DCT-II on one block (naive O(n^4) per block, like a
/// reference encoder's C fallback).
fn dct8x8(block: &[f64; 64]) -> [f64; 64] {
    let mut out = [0.0; 64];
    for u in 0..8 {
        for v in 0..8 {
            let cu = if u == 0 {
                std::f64::consts::FRAC_1_SQRT_2
            } else {
                1.0
            };
            let cv = if v == 0 {
                std::f64::consts::FRAC_1_SQRT_2
            } else {
                1.0
            };
            let mut sum = 0.0;
            for x in 0..8 {
                for y in 0..8 {
                    sum += block[x * 8 + y]
                        * ((2 * x + 1) as f64 * u as f64 * std::f64::consts::PI / 16.0).cos()
                        * ((2 * y + 1) as f64 * v as f64 * std::f64::consts::PI / 16.0).cos();
                }
            }
            out[u * 8 + v] = 0.25 * cu * cv * sum;
        }
    }
    out
}

/// Encodes a range of the frame's blocks; returns the coded size in bits.
///
/// `worker` and `extent` partition the block space so a DOALL task can
/// split one frame across workers.
#[must_use]
pub fn encode_blocks(frame: &Frame, worker: u32, extent: u32, quantizer: f64) -> u64 {
    let blocks = frame.blocks();
    let extent = extent.max(1) as usize;
    let worker = (worker as usize).min(extent - 1);
    let per = blocks.div_ceil(extent);
    let start = worker * per;
    let end = ((worker + 1) * per).min(blocks);
    let blocks_per_row = frame.width / 8;
    let mut bits = 0u64;
    for b in start..end {
        let bx = (b % blocks_per_row) * 8;
        let by = (b / blocks_per_row) * 8;
        let mut block = [0.0f64; 64];
        for (i, v) in block.iter_mut().enumerate() {
            let x = bx + i % 8;
            let y = by + i / 8;
            *v = f64::from(frame.samples[y * frame.width + x]) - 128.0;
        }
        let coeffs = dct8x8(&block);
        for c in coeffs {
            let q = (c / quantizer).round() as i64;
            if q != 0 {
                bits += 1 + (64 - q.unsigned_abs().leading_zeros()) as u64;
            }
        }
    }
    bits
}

/// Encodes a whole frame sequentially.
#[must_use]
pub fn encode_frame(frame: &Frame, quantizer: f64) -> u64 {
    encode_blocks(frame, 0, 1, quantizer)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_frames_are_deterministic() {
        let a = Frame::synthetic(64, 32, 9);
        let b = Frame::synthetic(64, 32, 9);
        assert_eq!(a, b);
        let c = Frame::synthetic(64, 32, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn partitioned_encode_matches_sequential() {
        let frame = Frame::synthetic(64, 64, 3);
        let whole = encode_frame(&frame, 8.0);
        for extent in [2u32, 3, 4, 7] {
            let split: u64 = (0..extent)
                .map(|w| encode_blocks(&frame, w, extent, 8.0))
                .sum();
            assert_eq!(split, whole, "extent {extent}");
        }
    }

    #[test]
    fn coarser_quantizer_codes_fewer_bits() {
        let frame = Frame::synthetic(64, 64, 3);
        assert!(encode_frame(&frame, 32.0) < encode_frame(&frame, 4.0));
    }

    #[test]
    fn dct_of_flat_block_is_dc_only() {
        let block = [10.0; 64];
        let coeffs = dct8x8(&block);
        assert!(coeffs[0].abs() > 1.0);
        for (i, c) in coeffs.iter().enumerate().skip(1) {
            assert!(c.abs() < 1e-9, "AC coefficient {i} = {c}");
        }
    }

    #[test]
    #[should_panic(expected = "multiples of 8")]
    fn bad_dimensions_panic() {
        let _ = Frame::synthetic(60, 32, 0);
    }
}
