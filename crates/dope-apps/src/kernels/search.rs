//! Content-based similarity search (the ferret stand-in).
//!
//! Ferret segments an image, extracts feature vectors, probes an index,
//! and ranks candidates. This kernel provides those four stages over
//! synthetic feature data: segmentation into tiles, feature extraction
//! (moment statistics per tile), an LSH-like candidate probe, and a full
//! cosine ranking of the candidates.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Dimensionality of feature vectors.
pub const FEATURE_DIM: usize = 48;

/// A corpus of feature vectors to search in.
#[derive(Debug, Clone)]
pub struct Corpus {
    vectors: Vec<[f32; FEATURE_DIM]>,
}

impl Corpus {
    /// A deterministic synthetic corpus of `size` vectors.
    #[must_use]
    pub fn synthetic(size: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let vectors = (0..size)
            .map(|_| {
                let mut v = [0f32; FEATURE_DIM];
                for x in &mut v {
                    *x = rng.gen_range(-1.0..1.0);
                }
                v
            })
            .collect();
        Corpus { vectors }
    }

    /// Number of vectors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// `true` when the corpus is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }
}

/// A query image: raw pixel tiles to be segmented and featurized.
#[derive(Debug, Clone)]
pub struct QueryImage {
    /// Pixel data, conceptually a small image.
    pub pixels: Vec<u8>,
}

impl QueryImage {
    /// A deterministic synthetic query.
    #[must_use]
    pub fn synthetic(seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        QueryImage {
            pixels: (0..4096).map(|_| rng.gen()).collect(),
        }
    }
}

/// Stage 1: segment the query into tiles.
#[must_use]
pub fn segment(query: &QueryImage) -> Vec<Vec<u8>> {
    query.pixels.chunks(256).map(<[u8]>::to_vec).collect()
}

/// Stage 2: extract one feature vector summarizing the tiles.
#[must_use]
pub fn extract(tiles: &[Vec<u8>]) -> [f32; FEATURE_DIM] {
    let mut features = [0f32; FEATURE_DIM];
    for (t, tile) in tiles.iter().enumerate() {
        let mean = tile.iter().map(|&b| f32::from(b)).sum::<f32>() / tile.len().max(1) as f32;
        let var = tile
            .iter()
            .map(|&b| (f32::from(b) - mean).powi(2))
            .sum::<f32>()
            / tile.len().max(1) as f32;
        features[(2 * t) % FEATURE_DIM] += mean / 255.0 - 0.5;
        features[(2 * t + 1) % FEATURE_DIM] += var.sqrt() / 128.0 - 0.5;
    }
    features
}

/// Stage 3: probe the corpus for candidate indices whose sign signature
/// matches the query's on a sampled set of dimensions (LSH-flavoured).
#[must_use]
pub fn index_probe(corpus: &Corpus, features: &[f32; FEATURE_DIM]) -> Vec<usize> {
    let probe_dims = [0usize, 7, 13, 21, 34, 42];
    let signature: Vec<bool> = probe_dims.iter().map(|&d| features[d] >= 0.0).collect();
    let candidates: Vec<usize> = corpus
        .vectors
        .iter()
        .enumerate()
        .filter(|(_, v)| {
            probe_dims
                .iter()
                .zip(&signature)
                .filter(|(&d, &s)| (v[d] >= 0.0) == s)
                .count()
                >= probe_dims.len() - 1
        })
        .map(|(i, _)| i)
        .collect();
    if candidates.is_empty() {
        (0..corpus.len().min(64)).collect()
    } else {
        candidates
    }
}

/// Stage 4: rank candidates by cosine similarity; returns the top `k`
/// `(index, similarity)` pairs, best first.
#[must_use]
pub fn rank(
    corpus: &Corpus,
    features: &[f32; FEATURE_DIM],
    candidates: &[usize],
    k: usize,
) -> Vec<(usize, f32)> {
    let qnorm = features.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-9);
    let mut scored: Vec<(usize, f32)> = candidates
        .iter()
        .filter_map(|&i| corpus.vectors.get(i).map(|v| (i, v)))
        .map(|(i, v)| {
            let dot: f32 = v.iter().zip(features).map(|(a, b)| a * b).sum();
            let vnorm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-9);
            (i, dot / (qnorm * vnorm))
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    scored.truncate(k);
    scored
}

/// The whole query pipeline, sequentially.
#[must_use]
pub fn search(corpus: &Corpus, query: &QueryImage, k: usize) -> Vec<(usize, f32)> {
    let tiles = segment(query);
    let features = extract(&tiles);
    let candidates = index_probe(corpus, &features);
    rank(corpus, &features, &candidates, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_returns_k_sorted_results() {
        let corpus = Corpus::synthetic(500, 1);
        let query = QueryImage::synthetic(2);
        let results = search(&corpus, &query, 10);
        assert_eq!(results.len(), 10);
        for pair in results.windows(2) {
            assert!(pair[0].1 >= pair[1].1, "results sorted by similarity");
        }
    }

    #[test]
    fn identical_vector_ranks_first() {
        let mut corpus = Corpus::synthetic(100, 3);
        let query = QueryImage::synthetic(4);
        let features = extract(&segment(&query));
        corpus.vectors.push(features);
        let planted = corpus.len() - 1;
        let results = rank(
            &corpus,
            &features,
            &(0..corpus.len()).collect::<Vec<_>>(),
            5,
        );
        assert_eq!(results[0].0, planted);
        assert!((results[0].1 - 1.0).abs() < 1e-5);
    }

    #[test]
    fn probe_narrows_candidates() {
        let corpus = Corpus::synthetic(2000, 5);
        let query = QueryImage::synthetic(6);
        let features = extract(&segment(&query));
        let candidates = index_probe(&corpus, &features);
        assert!(!candidates.is_empty());
        assert!(candidates.len() < corpus.len(), "probe filters the corpus");
    }

    #[test]
    fn deterministic_per_seed() {
        let corpus = Corpus::synthetic(300, 7);
        let query = QueryImage::synthetic(8);
        assert_eq!(search(&corpus, &query, 5), search(&corpus, &query, 5));
    }

    #[test]
    fn segment_covers_all_pixels() {
        let query = QueryImage::synthetic(9);
        let tiles = segment(&query);
        let total: usize = tiles.iter().map(Vec::len).sum();
        assert_eq!(total, query.pixels.len());
    }
}
