//! Compute kernels backing the six applications.
//!
//! The paper evaluates DoPE on PARSEC/SPEC applications; this reproduction
//! replaces their proprietary inputs with synthetic generators but keeps
//! the *computation* real — an actual DCT-based transform, an actual
//! Monte Carlo pricer, an actual compressor with a verified round-trip,
//! an actual convolution filter, an actual similarity search, and actual
//! content-defined chunking — so the live runtime parallelizes genuine
//! CPU work with genuine data movement.

pub mod chunks;
pub mod compress;
pub mod frames;
pub mod montecarlo;
pub mod oilify;
pub mod search;
