//! Content-defined chunking and deduplication (the dedup stand-in).
//!
//! PARSEC's dedup fragments a stream with a rolling hash, refines
//! fragments into chunks, deduplicates by content hash, and compresses
//! unique chunks. All four stages are here, with FNV-based content hashes
//! and the [`compress`] codec for chunk
//! payloads.

use crate::kernels::compress;
use std::collections::HashSet;

/// A content-defined chunk of the input stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// Offset in the original stream.
    pub offset: usize,
    /// Chunk payload.
    pub data: Vec<u8>,
}

/// Splits `data` into content-defined chunks with a rolling sum: a
/// boundary falls where the rolling hash of the last `window` bytes is 0
/// modulo `mask + 1`, bounded by min/max chunk sizes.
#[must_use]
pub fn fragment(data: &[u8], min_len: usize, max_len: usize, mask: u32) -> Vec<Chunk> {
    assert!(min_len >= 1 && max_len >= min_len, "bad chunk bounds");
    const WINDOW: usize = 16;
    // 31^WINDOW for sliding the oldest byte out (Rabin-Karp).
    let pow: u32 = 31u32.wrapping_pow(WINDOW as u32);
    let mut chunks = Vec::new();
    let mut start = 0usize;
    let mut rolling: u32 = 0;
    for (i, &b) in data.iter().enumerate() {
        rolling = rolling.wrapping_mul(31).wrapping_add(u32::from(b));
        if i - start >= WINDOW {
            rolling = rolling.wrapping_sub(u32::from(data[i - WINDOW]).wrapping_mul(pow));
        }
        let len = i + 1 - start;
        if len >= WINDOW {
            // The hash now depends only on the last WINDOW bytes, so
            // boundaries realign on shifted content.
            let at_boundary = rolling & mask == 0;
            if (len >= min_len && at_boundary) || len >= max_len {
                chunks.push(Chunk {
                    offset: start,
                    data: data[start..=i].to_vec(),
                });
                start = i + 1;
                rolling = 0;
            }
        }
    }
    if start < data.len() {
        chunks.push(Chunk {
            offset: start,
            data: data[start..].to_vec(),
        });
    }
    chunks
}

/// FNV-1a content hash of a chunk.
#[must_use]
pub fn content_hash(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Outcome of deduplicating one chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Deduped {
    /// First occurrence: carry the compressed payload.
    Unique {
        /// Content hash of the chunk.
        hash: u64,
        /// Compressed payload.
        compressed: Vec<u8>,
    },
    /// Chunk already stored: emit a reference.
    Duplicate {
        /// Content hash of the stored chunk.
        hash: u64,
    },
}

/// A dedup store: remembers which content hashes were seen.
#[derive(Debug, Default)]
pub struct DedupStore {
    seen: HashSet<u64>,
}

impl DedupStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        DedupStore::default()
    }

    /// Deduplicates one chunk, compressing it if unique.
    pub fn dedup(&mut self, chunk: &Chunk) -> Deduped {
        let hash = content_hash(&chunk.data);
        if self.seen.insert(hash) {
            Deduped::Unique {
                hash,
                compressed: compress::compress_block(&chunk.data),
            }
        } else {
            Deduped::Duplicate { hash }
        }
    }

    /// Unique chunks stored so far.
    #[must_use]
    pub fn unique_count(&self) -> usize {
        self.seen.len()
    }
}

/// A synthetic archive stream with genuine duplication: repeated segments
/// interleaved with fresh data.
#[must_use]
pub fn synthetic_stream(len: usize, duplication: f64, seed: u64) -> Vec<u8> {
    assert!((0.0..=1.0).contains(&duplication), "duplication in [0,1]");
    let template = compress::synthetic_block(4096, seed);
    let mut out = Vec::with_capacity(len);
    let mut fresh_seed = seed.wrapping_add(1);
    while out.len() < len {
        let dup_gate = (out.len() / 512) % 100;
        if (dup_gate as f64) < duplication * 100.0 {
            let start = out.len() % 1024;
            out.extend_from_slice(&template[start..(start + 512).min(template.len())]);
        } else {
            out.extend_from_slice(&compress::synthetic_block(512, fresh_seed));
            fresh_seed = fresh_seed.wrapping_add(1);
        }
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragments_cover_stream_in_order() {
        let data = synthetic_stream(20_000, 0.3, 1);
        let chunks = fragment(&data, 128, 2048, 0x3F);
        let mut reassembled = Vec::new();
        for c in &chunks {
            assert_eq!(c.offset, reassembled.len());
            reassembled.extend_from_slice(&c.data);
        }
        assert_eq!(reassembled, data);
    }

    #[test]
    fn chunk_sizes_respect_bounds() {
        let data = synthetic_stream(30_000, 0.2, 2);
        let chunks = fragment(&data, 128, 2048, 0x3F);
        for (i, c) in chunks.iter().enumerate() {
            assert!(c.data.len() <= 2048, "chunk {i} too big");
            if i + 1 < chunks.len() {
                assert!(c.data.len() >= 128, "chunk {i} too small");
            }
        }
    }

    #[test]
    fn duplicated_stream_deduplicates() {
        let data = synthetic_stream(40_000, 0.6, 3);
        let chunks = fragment(&data, 128, 1024, 0x1F);
        let mut store = DedupStore::new();
        let mut duplicates = 0;
        for c in &chunks {
            if matches!(store.dedup(c), Deduped::Duplicate { .. }) {
                duplicates += 1;
            }
        }
        assert!(duplicates > 0, "synthetic duplication must be found");
        assert!(store.unique_count() < chunks.len());
    }

    #[test]
    fn identical_chunks_hash_equal() {
        let a = Chunk {
            offset: 0,
            data: b"hello world".to_vec(),
        };
        let b = Chunk {
            offset: 99,
            data: b"hello world".to_vec(),
        };
        assert_eq!(content_hash(&a.data), content_hash(&b.data));
        let mut store = DedupStore::new();
        assert!(matches!(store.dedup(&a), Deduped::Unique { .. }));
        assert!(matches!(store.dedup(&b), Deduped::Duplicate { .. }));
    }

    #[test]
    fn unique_chunk_payload_roundtrips() {
        let chunk = Chunk {
            offset: 0,
            data: compress::synthetic_block(1000, 7),
        };
        let mut store = DedupStore::new();
        match store.dedup(&chunk) {
            Deduped::Unique { compressed, .. } => {
                assert_eq!(compress::decompress_block(&compressed), chunk.data);
            }
            Deduped::Duplicate { .. } => panic!("first occurrence must be unique"),
        }
    }

    #[test]
    fn content_defined_boundaries_resist_shift() {
        // Inserting a prefix changes offsets but most chunk contents
        // reappear — the property that makes CDC dedup work.
        let data = synthetic_stream(20_000, 0.0, 11);
        let chunks_a: HashSet<u64> = fragment(&data, 128, 2048, 0x3F)
            .iter()
            .map(|c| content_hash(&c.data))
            .collect();
        let mut shifted = b"PREFIX--".to_vec();
        shifted.extend_from_slice(&data);
        let chunks_b: HashSet<u64> = fragment(&shifted, 128, 2048, 0x3F)
            .iter()
            .map(|c| content_hash(&c.data))
            .collect();
        let common = chunks_a.intersection(&chunks_b).count();
        assert!(
            common * 2 > chunks_a.len(),
            "most chunks survive a shift: {common}/{}",
            chunks_a.len()
        );
    }
}
