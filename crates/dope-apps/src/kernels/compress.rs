//! Block compression with a verified round-trip (the bzip stand-in).
//!
//! bzip2 compresses independent blocks with BWT + MTF + Huffman. This
//! kernel keeps the block independence (what the parallel loop exploits)
//! and the move-to-front + run-length + variable-length integer coding
//! stages, dropping only the BWT (whose suffix sorting would dominate
//! build times without changing the parallel structure).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deterministic compressible test data: repeated phrases with seeded
/// mutations, like text.
#[must_use]
pub fn synthetic_block(len: usize, seed: u64) -> Vec<u8> {
    const PHRASES: &[&str] = &[
        "the quick brown fox jumps over the lazy dog ",
        "pack my box with five dozen liquor jugs ",
        "how vexingly quick daft zebras jump ",
    ];
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        let phrase = PHRASES[rng.gen_range(0..PHRASES.len())].as_bytes();
        out.extend_from_slice(phrase);
        if rng.gen_ratio(1, 8) {
            let run = rng.gen_range(4..32usize);
            let byte = rng.gen_range(b'a'..=b'z');
            out.extend(std::iter::repeat_n(byte, run));
        }
    }
    out.truncate(len);
    out
}

/// Compresses one block: move-to-front, then run-length of zeros, then a
/// byte-oriented variable-length code.
#[must_use]
pub fn compress_block(data: &[u8]) -> Vec<u8> {
    // Move-to-front transform.
    let mut alphabet: Vec<u8> = (0..=255).collect();
    let mut mtf = Vec::with_capacity(data.len());
    for &b in data {
        let pos = alphabet
            .iter()
            .position(|&a| a == b)
            .expect("byte in alphabet");
        mtf.push(pos as u8);
        alphabet.remove(pos);
        alphabet.insert(0, b);
    }
    // RLE of zeros + varint-style emit.
    let mut out = Vec::with_capacity(data.len() / 2 + 8);
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    let mut i = 0;
    while i < mtf.len() {
        if mtf[i] == 0 {
            let mut run = 0usize;
            while i < mtf.len() && mtf[i] == 0 && run < 0x7FFF {
                run += 1;
                i += 1;
            }
            // 0x00 marker + 15-bit run length.
            out.push(0x00);
            out.push((run >> 8) as u8);
            out.push((run & 0xFF) as u8);
        } else {
            out.push(mtf[i]);
            i += 1;
        }
    }
    out
}

/// Decompresses a block produced by [`compress_block`].
///
/// # Panics
///
/// Panics on malformed input (this is a test oracle, not a codec for
/// untrusted data).
#[must_use]
pub fn decompress_block(coded: &[u8]) -> Vec<u8> {
    let len = u32::from_le_bytes(coded[..4].try_into().expect("length header")) as usize;
    let mut mtf = Vec::with_capacity(len);
    let mut i = 4;
    while i < coded.len() {
        if coded[i] == 0x00 {
            let run = ((coded[i + 1] as usize) << 8) | coded[i + 2] as usize;
            mtf.extend(std::iter::repeat_n(0u8, run));
            i += 3;
        } else {
            mtf.push(coded[i]);
            i += 1;
        }
    }
    assert_eq!(mtf.len(), len, "corrupt stream");
    // Inverse move-to-front.
    let mut alphabet: Vec<u8> = (0..=255).collect();
    let mut out = Vec::with_capacity(len);
    for pos in mtf {
        let b = alphabet.remove(pos as usize);
        out.push(b);
        alphabet.insert(0, b);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_data() {
        for seed in 0..5 {
            let data = synthetic_block(4096, seed);
            let coded = compress_block(&data);
            assert_eq!(decompress_block(&coded), data, "seed {seed}");
        }
    }

    #[test]
    fn compressible_data_shrinks() {
        let data = synthetic_block(8192, 1);
        let coded = compress_block(&data);
        assert!(
            coded.len() < data.len(),
            "coded {} raw {}",
            coded.len(),
            data.len()
        );
    }

    #[test]
    fn incompressible_data_survives_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(99);
        let data: Vec<u8> = (0..2048).map(|_| rng.gen()).collect();
        assert_eq!(decompress_block(&compress_block(&data)), data);
    }

    #[test]
    fn empty_block_roundtrips() {
        let coded = compress_block(&[]);
        assert!(decompress_block(&coded).is_empty());
    }

    #[test]
    fn long_zero_runs_roundtrip() {
        // Stresses the 15-bit run-length cap.
        let data = vec![b'x'; 100_000];
        assert_eq!(decompress_block(&compress_block(&data)), data);
    }

    #[test]
    fn synthetic_blocks_are_deterministic() {
        assert_eq!(synthetic_block(1000, 5), synthetic_block(1000, 5));
        assert_ne!(synthetic_block(1000, 5), synthetic_block(1000, 6));
    }
}
