//! Monte Carlo swaption pricing (the swaptions stand-in).
//!
//! Prices a European payer swaption by simulating forward-rate paths
//! under a one-factor lognormal model and discounting the payoff — the
//! same embarrassingly parallel trials-loop structure as PARSEC's
//! swaptions.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of one swaption pricing request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Swaption {
    /// Strike rate.
    pub strike: f64,
    /// Initial forward rate.
    pub forward: f64,
    /// Lognormal volatility.
    pub volatility: f64,
    /// Years to expiry.
    pub expiry: f64,
    /// Flat discount rate.
    pub discount_rate: f64,
}

impl Default for Swaption {
    fn default() -> Self {
        Swaption {
            strike: 0.04,
            forward: 0.045,
            volatility: 0.2,
            expiry: 1.0,
            discount_rate: 0.03,
        }
    }
}

/// Prices `trials` Monte Carlo paths of the trial range belonging to
/// `worker` out of `extent` workers, returning `(sum_payoff, count)` so
/// partial results merge exactly.
#[must_use]
pub fn price_partial(
    swaption: &Swaption,
    trials: u64,
    steps: u32,
    seed: u64,
    worker: u32,
    extent: u32,
) -> (f64, u64) {
    let extent = u64::from(extent.max(1));
    let worker = u64::from(worker) % extent;
    let lo = trials * worker / extent;
    let hi = trials * (worker + 1) / extent;
    let dt = swaption.expiry / f64::from(steps.max(1));
    let drift = -0.5 * swaption.volatility * swaption.volatility * dt;
    let diffusion = swaption.volatility * dt.sqrt();
    let mut sum = 0.0;
    for trial in lo..hi {
        // Per-trial generator: identical paths regardless of partitioning.
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(trial));
        let mut rate = swaption.forward;
        for _ in 0..steps.max(1) {
            let z = gaussian(&mut rng);
            rate *= (drift + diffusion * z).exp();
        }
        let payoff = (rate - swaption.strike).max(0.0);
        sum += payoff * (-swaption.discount_rate * swaption.expiry).exp();
    }
    (sum, hi - lo)
}

/// Prices the swaption with all trials sequentially.
#[must_use]
pub fn price(swaption: &Swaption, trials: u64, steps: u32, seed: u64) -> f64 {
    let (sum, n) = price_partial(swaption, trials, steps, seed, 0, 1);
    sum / n.max(1) as f64
}

fn gaussian(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioned_pricing_merges_exactly() {
        let s = Swaption::default();
        let (whole_sum, whole_n) = price_partial(&s, 1000, 8, 42, 0, 1);
        for extent in [2u32, 3, 5] {
            let (sum, n) = (0..extent)
                .map(|w| price_partial(&s, 1000, 8, 42, w, extent))
                .fold((0.0, 0), |(s1, n1), (s2, n2)| (s1 + s2, n1 + n2));
            assert_eq!(n, whole_n);
            assert!((sum - whole_sum).abs() < 1e-9, "extent {extent}");
        }
    }

    #[test]
    fn price_is_near_black_value() {
        // ATM-ish payer swaption; Monte Carlo should land near the
        // analytic lognormal expectation.
        let s = Swaption::default();
        let mc = price(&s, 20_000, 16, 7);
        // E[(F e^X - K)+] with X ~ N(-v^2 t/2, v^2 t), discounted:
        let v = s.volatility * s.expiry.sqrt();
        let d1 = ((s.forward / s.strike).ln() + 0.5 * v * v) / v;
        let d2 = d1 - v;
        let analytic =
            (s.forward * phi(d1) - s.strike * phi(d2)) * (-s.discount_rate * s.expiry).exp();
        assert!(
            (mc - analytic).abs() / analytic < 0.1,
            "mc {mc} analytic {analytic}"
        );
    }

    fn phi(x: f64) -> f64 {
        0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
    }

    // Abramowitz-Stegun 7.1.26 approximation.
    fn erf(x: f64) -> f64 {
        let sign = if x < 0.0 { -1.0 } else { 1.0 };
        let x = x.abs();
        let t = 1.0 / (1.0 + 0.3275911 * x);
        let y = 1.0
            - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
                + 0.254829592)
                * t
                * (-x * x).exp();
        sign * y
    }

    #[test]
    fn deterministic_per_seed() {
        let s = Swaption::default();
        assert_eq!(price(&s, 500, 8, 1), price(&s, 500, 8, 1));
        assert_ne!(price(&s, 500, 8, 1), price(&s, 500, 8, 2));
    }

    #[test]
    fn zero_volatility_prices_intrinsic() {
        let s = Swaption {
            volatility: 1e-12,
            ..Swaption::default()
        };
        let p = price(&s, 100, 4, 3);
        let intrinsic = (s.forward - s.strike) * (-s.discount_rate * s.expiry).exp();
        assert!((p - intrinsic).abs() < 1e-6);
    }
}
