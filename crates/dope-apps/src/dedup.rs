//! The deduplication application (dedup).
//!
//! A single-level five-stage pipeline: fragment (SEQ), refine, dedup,
//! compress (all PAR), write (SEQ). Its stages are cache-sensitive, so
//! oversubscription *hurts* (the paper's Pthreads-OS reaches only 0.89x
//! of the baseline, Figure 15); the fused task is 113 LoC in Table 4.

use crate::kernels::chunks::{content_hash, fragment, Chunk};
use crate::kernels::compress::compress_block;
use crate::pipeline_live::{LivePipeline, PipeItem, StageDef};
use crate::AppInfo;
use dope_sim::pipeline::{PipelineModel, StageProfile};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::Arc;

/// Table 4 metadata.
#[must_use]
pub fn info() -> AppInfo {
    AppInfo {
        name: "dedup",
        description: "Deduplication of PARSEC native input",
        loop_nest_levels: 1,
        inner_dop_min: None,
    }
}

/// Calibrated simulator model. The parallel stages are roughly balanced
/// (so the even static split is already decent and oversubscription's
/// elasticity buys nothing), and the stages forward large chunk lists, so
/// the fused task — which keeps a transaction's data local to one worker
/// — runs 35% faster than the sum of its parts. That is the behaviour
/// behind Figure 15's dedup column: Pthreads-OS *loses* (0.89x) while
/// DoPE-TBF wins through fusion.
#[must_use]
pub fn sim_model() -> PipelineModel {
    let refine = 0.011;
    let dedup = 0.012;
    let compress = 0.014;
    PipelineModel::new(
        "dedup",
        vec![
            StageProfile::seq("fragment", 0.0008),
            StageProfile::par("refine", refine),
            StageProfile::par("dedup", dedup),
            StageProfile::par("compress", compress),
            StageProfile::seq("write", 0.0008),
        ],
    )
    .with_fused(vec![
        StageProfile::seq("fragment", 0.0008),
        StageProfile::par("fused", (refine + dedup + compress) * FUSION_SAVINGS),
        StageProfile::seq("write", 0.0008),
    ])
    .with_forward_overhead(0.0002)
}

/// Service-time fraction the fused task keeps: fusing removes the
/// inter-stage forwarding of chunk lists (memory-bound traffic).
pub const FUSION_SAVINGS: f64 = 0.65;

/// The fractional oversubscription service-time penalty appropriate for
/// dedup's cache-sensitive stages (used by the Figure 15 harness): with
/// ~74 runnable workers on 24 contexts, cache pollution and context
/// switching dilate every service by ~20%.
pub const OVERSUB_PENALTY: f64 = 0.20;

/// Payload states along the live pipeline.
mod payload {
    use super::Chunk;

    pub struct Stream(pub Vec<u8>);
    pub struct Chunks(pub Vec<Chunk>);
    pub struct Hashed(pub Vec<(u64, Chunk)>);
    pub struct Deduped {
        pub unique: Vec<Chunk>,
        pub duplicates: usize,
    }
    pub struct Written(pub usize);
}

/// Builds the live dedup pipeline, returning the harness, descriptor, and
/// the shared chunk store (for assertions).
#[must_use]
pub fn live_pipeline() -> (
    LivePipeline,
    Vec<dope_core::TaskSpec>,
    Arc<Mutex<HashSet<u64>>>,
) {
    let pipe = LivePipeline::new();
    let store: Arc<Mutex<HashSet<u64>>> = Arc::new(Mutex::new(HashSet::new()));

    let frag = StageDef::seq("fragment", |item: PipeItem| {
        let stream = item
            .payload
            .downcast::<payload::Stream>()
            .expect("fragment receives a stream");
        let chunks = fragment(&stream.0, 256, 4096, 0x7F);
        PipeItem {
            payload: Box::new(payload::Chunks(chunks)),
            id: item.id,
            submitted: item.submitted,
        }
    });
    let refine = StageDef::par("refine", |item: PipeItem| {
        let coarse = item
            .payload
            .downcast::<payload::Chunks>()
            .expect("refine receives chunks");
        let fine: Vec<Chunk> = coarse
            .0
            .iter()
            .flat_map(|c| {
                fragment(&c.data, 64, 1024, 0x3F)
                    .into_iter()
                    .map(move |mut f| {
                        f.offset += c.offset;
                        f
                    })
            })
            .collect();
        let hashed = fine
            .into_iter()
            .map(|c| (content_hash(&c.data), c))
            .collect();
        PipeItem {
            payload: Box::new(payload::Hashed(hashed)),
            id: item.id,
            submitted: item.submitted,
        }
    });
    let store_stage = Arc::clone(&store);
    let dedup = StageDef::par("dedup", move |item: PipeItem| {
        let hashed = item
            .payload
            .downcast::<payload::Hashed>()
            .expect("dedup receives hashes");
        let mut unique = Vec::new();
        let mut duplicates = 0usize;
        {
            let mut seen = store_stage.lock();
            for (hash, chunk) in hashed.0 {
                if seen.insert(hash) {
                    unique.push(chunk);
                } else {
                    duplicates += 1;
                }
            }
        }
        PipeItem {
            payload: Box::new(payload::Deduped { unique, duplicates }),
            id: item.id,
            submitted: item.submitted,
        }
    });
    let compress = StageDef::par("compress", |item: PipeItem| {
        let deduped = item
            .payload
            .downcast::<payload::Deduped>()
            .expect("compress receives deduped chunks");
        std::hint::black_box(deduped.duplicates);
        let bytes: usize = deduped
            .unique
            .iter()
            .map(|c| compress_block(&c.data).len())
            .sum();
        PipeItem {
            payload: Box::new(payload::Written(bytes)),
            id: item.id,
            submitted: item.submitted,
        }
    });
    let write = StageDef::seq("write", |item: PipeItem| {
        if let Some(written) = item.payload.downcast_ref::<payload::Written>() {
            std::hint::black_box(written.0);
        }
        item
    });

    // Fused: refine + dedup + compress in one parallel task.
    let store_fused = Arc::clone(&store);
    let fused = StageDef::par("fused", move |item: PipeItem| {
        let coarse = item
            .payload
            .downcast::<payload::Chunks>()
            .expect("fused receives chunks");
        let mut bytes = 0usize;
        for c in &coarse.0 {
            for f in fragment(&c.data, 64, 1024, 0x3F) {
                let h = content_hash(&f.data);
                let fresh = store_fused.lock().insert(h);
                if fresh {
                    bytes += compress_block(&f.data).len();
                }
            }
        }
        PipeItem {
            payload: Box::new(payload::Written(bytes)),
            id: item.id,
            submitted: item.submitted,
        }
    });

    let frag2 = frag.clone();
    let write2 = write.clone();
    let descriptor = pipe.descriptor(
        "dedup",
        vec![
            vec![frag, refine, dedup, compress, write],
            vec![frag2, fused, write2],
        ],
    );
    (pipe, descriptor, store)
}

/// Submits `count` stream segments of `segment_len` bytes with the given
/// duplication ratio.
pub fn submit_streams(pipe: &LivePipeline, count: u64, segment_len: usize, duplication: f64) {
    use crate::kernels::chunks::synthetic_stream;
    for id in 0..count {
        let stream = synthetic_stream(segment_len, duplication, id);
        let _ = pipe
            .source
            .enqueue(PipeItem::new(id, Box::new(payload::Stream(stream))));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_model_structure() {
        let m = sim_model();
        assert_eq!(m.stages(0).len(), 5);
        assert_eq!(m.stages(1).len(), 3);
        let fused_sum: f64 = m.stages(0)[1..4].iter().map(|s| s.mean_service_secs).sum();
        let fused = m.stages(1)[1].mean_service_secs;
        assert!((fused - fused_sum * FUSION_SAVINGS).abs() < 1e-9);
    }

    #[test]
    fn live_descriptor_builds() {
        let (_pipe, descriptor, _store) = live_pipeline();
        let shape = dope_core::ProgramShape::of_specs(&descriptor);
        assert_eq!(shape.tasks[0].alternatives[0].len(), 5);
        assert_eq!(shape.tasks[0].alternatives[1].len(), 3);
    }

    #[test]
    fn stages_compose_to_dedup_a_stream() {
        use dope_core::task::NullCx;
        use dope_core::{TaskBody, TaskStatus, Work, WorkerSlot};
        let (pipe, descriptor, store) = live_pipeline();
        submit_streams(&pipe, 2, 20_000, 0.6);
        pipe.source.close();
        // Drive the unfused alternative manually, one worker per stage.
        let factories = match descriptor[0].work() {
            Work::Nest(alts) => alts[0].make_nest(0),
            Work::Leaf(_) => unreachable!(),
        };
        let mut bodies: Vec<Box<dyn TaskBody>> = factories
            .iter()
            .map(|s| match s.work() {
                Work::Leaf(f) => f.make_body(WorkerSlot {
                    replica: 0,
                    worker: 0,
                    extent: 1,
                }),
                Work::Nest(_) => unreachable!(),
            })
            .collect();
        let mut cx = NullCx::default();
        for b in &mut bodies {
            b.init();
        }
        for b in &mut bodies {
            while b.invoke(&mut cx) == TaskStatus::Executing {}
            b.fini(TaskStatus::Finished);
        }
        assert_eq!(pipe.stats.completed(), 2);
        assert!(!store.lock().is_empty(), "chunks were stored");
    }
}
