//! The data-compression service (bzip).
//!
//! Outer loop over files; inner pipeline over a file's blocks. The
//! paper's Table 4 reports an inner `DoP_min` of 4: widths 2-3 pay the
//! pipeline's reader/writer threads without gaining parallel compressors.

use crate::kernels::compress::{compress_block, synthetic_block};
use crate::service::{ChunkFn, Transaction, TwoLevelService};
use crate::AppInfo;
use dope_sim::system::TwoLevelModel;
use dope_sim::AmdahlProfile;
use std::sync::Arc;

/// Table 4 metadata.
#[must_use]
pub fn info() -> AppInfo {
    AppInfo {
        name: "bzip",
        description: "Data compression of SPEC ref input",
        loop_nest_levels: 2,
        inner_dop_min: Some(4),
    }
}

/// Calibrated simulator model: two sequential pipeline endpoints make
/// widths below 4 unprofitable (`DoP_min = 4`).
#[must_use]
pub fn sim_model() -> TwoLevelModel {
    TwoLevelModel::pipeline(
        "compress",
        AmdahlProfile::new(20.0, 0.93, 0.4, 0.05).with_seq_stages(2),
    )
}

/// Workload parameters of the live service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileParams {
    /// Blocks per file.
    pub blocks: usize,
    /// Bytes per block.
    pub block_len: usize,
}

impl Default for FileParams {
    fn default() -> Self {
        FileParams {
            blocks: 8,
            block_len: 4096,
        }
    }
}

/// Builds one compression request: one chunk per block.
#[must_use]
pub fn make_file(id: u64, params: FileParams) -> Transaction {
    let chunks = (0..params.blocks)
        .map(|b| {
            let data = Arc::new(synthetic_block(
                params.block_len,
                id.wrapping_mul(17).wrapping_add(b as u64),
            ));
            Box::new(move || {
                std::hint::black_box(compress_block(&data));
            }) as ChunkFn
        })
        .collect();
    Transaction::new(id, chunks)
}

/// A fresh live compression service with its DoPE descriptor.
#[must_use]
pub fn live_service() -> (TwoLevelService, Vec<dope_core::TaskSpec>) {
    let service = TwoLevelService::new();
    let descriptor = service.descriptor("compress", None);
    (service, descriptor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dop_min_is_four_like_table4() {
        let m = sim_model();
        assert_eq!(m.profile().m_min(24), Some(4));
        assert!(m.profile().exec_time(3) > m.profile().t1());
        assert!(m.profile().speedup(10) > 2.5);
    }

    #[test]
    fn file_has_one_chunk_per_block() {
        let txn = make_file(2, FileParams::default());
        assert_eq!(txn.chunks.len(), 8);
    }
}
