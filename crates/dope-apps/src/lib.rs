//! The six benchmark applications of the DoPE paper.
//!
//! Each application module provides three things:
//!
//! 1. a **compute kernel** ([`kernels`]) doing real work (DCT transform
//!    coding, Monte Carlo pricing, MTF/RLE compression with a verified
//!    round-trip, an oilify filter, feature-vector search,
//!    content-defined-chunking dedup);
//! 2. a **live DoPE task graph** for `dope-runtime`, built with the
//!    generic [`service`] (two-level transaction nests: x264, swaptions,
//!    bzip, gimp) and [`pipeline_live`] (stage pipelines: ferret, dedup)
//!    builders;
//! 3. a **calibrated simulator model** (`dope-sim`) reproducing the
//!    paper's measured characteristics (x264's 6.3x speedup on 8
//!    threads, bzip's inner `DoP_min = 4`, ferret's imbalanced six-stage
//!    pipeline, dedup's cache-sensitive stages).
//!
//! | App | Paper workload | Levels | Inner DoP_min |
//! |-----|----------------|--------|---------------|
//! | [`transcode`] | x264 yuv4mpeg transcoding | 2 | 2 |
//! | [`swaptions`] | Monte Carlo option pricing | 2 | 2 |
//! | [`bzip`] | SPEC ref input compression | 2 | 4 |
//! | [`gimp`] | oilify plugin image editing | 2 | 2 |
//! | [`ferret`] | content-based image search | 1 | — |
//! | [`dedup`] | PARSEC native dedup | 1 | — |

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bzip;
pub mod dedup;
pub mod ferret;
pub mod gimp;
pub mod kernels;
pub mod pipeline_live;
pub mod service;
pub mod swaptions;
pub mod transcode;

/// Per-application metadata for the Table 4 reproduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppInfo {
    /// Application name.
    pub name: &'static str,
    /// One-line description matching the paper's Table 4.
    pub description: &'static str,
    /// Loop nesting levels exposed to DoPE.
    pub loop_nest_levels: u32,
    /// Minimum inner DoP extent at which a transaction speeds up, if the
    /// application is a two-level nest.
    pub inner_dop_min: Option<u32>,
}

/// Metadata for all six applications, in the paper's Table 4 order.
#[must_use]
pub fn all_apps() -> Vec<AppInfo> {
    vec![
        transcode::info(),
        swaptions::info(),
        bzip::info(),
        gimp::info(),
        ferret::info(),
        dedup::info(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_metadata_matches_paper() {
        let apps = all_apps();
        assert_eq!(apps.len(), 6);
        let by_name = |n: &str| apps.iter().find(|a| a.name == n).unwrap().clone();
        assert_eq!(by_name("x264").loop_nest_levels, 2);
        assert_eq!(by_name("x264").inner_dop_min, Some(2));
        assert_eq!(by_name("bzip").inner_dop_min, Some(4));
        assert_eq!(by_name("ferret").loop_nest_levels, 1);
        assert_eq!(by_name("ferret").inner_dop_min, None);
        assert_eq!(by_name("dedup").loop_nest_levels, 1);
    }
}
