//! Generic live two-level transaction service.
//!
//! The paper's response-time applications share one structure: an outer
//! loop dequeues user transactions from a work queue; each transaction's
//! body can run sequentially or be parallelized across an inner task set.
//! This module builds that structure as a DoPE descriptor once, for any
//! kernel:
//!
//! * **parallel alternative** — a per-replica mini-pipeline: a sequential
//!   `read` task dequeues a transaction and scatters its work chunks into
//!   a replica-local queue; a parallel `work` task (the inner DoP knob)
//!   executes chunks; the worker finishing a transaction's last chunk
//!   records its response time;
//! * **sequential alternative** — the paper's `(1, SEQ)`: one task runs
//!   whole transactions inline.

use dope_core::{
    body_fn, QueueStats, TaskBody, TaskCx, TaskKind, TaskSpec, TaskStatus, WorkerSlot,
};
use dope_workload::{DequeueOutcome, ResponseStats, ThroughputMeter, WorkQueue};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One unit of a transaction's work.
pub type ChunkFn = Box<dyn FnOnce() + Send>;

/// A user transaction: an id, a submission timestamp, and the work it
/// decomposes into.
pub struct Transaction {
    /// Request id.
    pub id: u64,
    /// Submission time (response time is measured from here).
    pub submitted: Instant,
    /// The transaction's work, pre-split into independent chunks.
    pub chunks: Vec<ChunkFn>,
}

impl std::fmt::Debug for Transaction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Transaction")
            .field("id", &self.id)
            .field("chunks", &self.chunks.len())
            .finish_non_exhaustive()
    }
}

impl Transaction {
    /// A transaction whose work is `chunks`.
    #[must_use]
    pub fn new(id: u64, chunks: Vec<ChunkFn>) -> Self {
        Transaction {
            id,
            submitted: Instant::now(),
            chunks,
        }
    }
}

/// Shared measurement sink of a live service.
#[derive(Debug)]
pub struct ServiceStats {
    start: Instant,
    response: Mutex<ResponseStats>,
    throughput: Mutex<ThroughputMeter>,
    completed: AtomicU64,
}

impl ServiceStats {
    /// A fresh sink; the clock starts now.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(ServiceStats {
            start: Instant::now(),
            response: Mutex::new(ResponseStats::new()),
            throughput: Mutex::new(ThroughputMeter::new()),
            completed: AtomicU64::new(0),
        })
    }

    /// Records the completion of a transaction submitted at `submitted`.
    pub fn record_completion(&self, submitted: Instant) {
        let now = Instant::now();
        self.response.lock().record((now - submitted).as_secs_f64());
        self.throughput
            .lock()
            .record((now - self.start).as_secs_f64());
        self.completed.fetch_add(1, Ordering::Release);
    }

    /// Transactions completed so far.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Acquire)
    }

    /// A copy of the response-time statistics.
    #[must_use]
    pub fn response(&self) -> ResponseStats {
        self.response.lock().clone()
    }

    /// A copy of the completion meter.
    #[must_use]
    pub fn throughput(&self) -> ThroughputMeter {
        self.throughput.lock().clone()
    }

    /// Seconds since the sink was created.
    #[must_use]
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

/// A live two-level transaction service: work queue plus statistics.
#[derive(Debug)]
pub struct TwoLevelService {
    /// The global work queue transactions arrive on.
    pub queue: WorkQueue<Transaction>,
    /// Completion statistics.
    pub stats: Arc<ServiceStats>,
}

impl Default for TwoLevelService {
    fn default() -> Self {
        TwoLevelService::new()
    }
}

impl TwoLevelService {
    /// A fresh service.
    #[must_use]
    pub fn new() -> Self {
        TwoLevelService {
            queue: WorkQueue::new(),
            stats: ServiceStats::new(),
        }
    }

    /// The DoPE descriptor of the service: a nest named `outer_name`
    /// offering the parallel (read + work) and sequential (whole)
    /// alternatives. `work_cap` caps the inner `work` task's extent (the
    /// paper's `Mmax`).
    #[must_use]
    pub fn descriptor(&self, outer_name: &str, work_cap: Option<u32>) -> Vec<TaskSpec> {
        let queue = self.queue.clone();
        let stats = Arc::clone(&self.stats);
        let queue_seq = self.queue.clone();
        let stats_seq = Arc::clone(&self.stats);
        let source_occupancy = self.queue.clone();

        let parallel: Arc<dyn dope_core::NestFactory> = Arc::new(move |_replica: u32| {
            parallel_nest(queue.clone(), Arc::clone(&stats), work_cap)
        });
        let sequential: Arc<dyn dope_core::NestFactory> = Arc::new(move |_replica: u32| {
            vec![whole_task(queue_seq.clone(), Arc::clone(&stats_seq))]
        });
        vec![
            TaskSpec::nest_choice(outer_name, TaskKind::Par, vec![parallel, sequential])
                .with_load(move || source_occupancy.occupancy()),
        ]
    }

    /// A probe for `DopeBuilder::queue_probe` reporting this service's
    /// work queue.
    pub fn queue_probe(&self) -> impl Fn() -> QueueStats + Send + Sync + 'static {
        let queue = self.queue.clone();
        let stats = Arc::clone(&self.stats);
        move || QueueStats {
            occupancy: queue.occupancy(),
            arrival_rate: {
                let elapsed = stats.elapsed_secs().max(1e-9);
                queue.total_enqueued() as f64 / elapsed
            },
            enqueued: queue.total_enqueued(),
            completed: stats.completed(),
        }
    }

    /// Like [`queue_probe`](TwoLevelService::queue_probe), but every
    /// probe invocation additionally records a `QueueSample` event into
    /// `recorder`.
    ///
    /// Use this *instead of* attaching the same recorder to the
    /// executive's monitor (which already emits a `QueueSample` per
    /// snapshot) when you want queue samples without full executive
    /// tracing.
    pub fn traced_queue_probe(
        &self,
        recorder: dope_trace::Recorder,
    ) -> impl Fn() -> QueueStats + Send + Sync + 'static {
        let probe = self.queue_probe();
        move || {
            let queue = probe();
            recorder.record_with(|| dope_trace::TraceEvent::QueueSample { queue });
            queue
        }
    }
}

/// Transaction metadata shared by its chunks.
struct TxnMeta {
    submitted: Instant,
    remaining: AtomicU32,
}

type ChunkItem = (Arc<TxnMeta>, ChunkFn);

fn parallel_nest(
    source: WorkQueue<Transaction>,
    stats: Arc<ServiceStats>,
    work_cap: Option<u32>,
) -> Vec<TaskSpec> {
    let chunk_q: WorkQueue<ChunkItem> = WorkQueue::new();

    // `read`: dequeue transactions, scatter chunks.
    let read_q = chunk_q.clone();
    let read_stats = Arc::clone(&stats);
    let read = TaskSpec::leaf("read", TaskKind::Seq, move |_slot: WorkerSlot| {
        let source = source.clone();
        let chunk_q = read_q.clone();
        let stats = Arc::clone(&read_stats);
        Box::new(ReadBody {
            source,
            chunk_q,
            stats,
        }) as Box<dyn TaskBody>
    });

    // `work`: execute chunks; the last chunk completes the transaction.
    let work_in = chunk_q.clone();
    let work_stats = Arc::clone(&stats);
    let mut work = TaskSpec::leaf("work", TaskKind::Par, move |_slot: WorkerSlot| {
        let queue = work_in.clone();
        let stats = Arc::clone(&work_stats);
        Box::new(body_fn(move |cx: &mut dyn TaskCx| {
            cx.begin();
            let outcome = queue.dequeue_timeout(Duration::from_millis(2));
            let status = match outcome {
                DequeueOutcome::Item((meta, chunk)) => {
                    chunk();
                    if meta.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                        stats.record_completion(meta.submitted);
                    }
                    TaskStatus::Executing
                }
                DequeueOutcome::Drained => TaskStatus::Finished,
                DequeueOutcome::TimedOut => TaskStatus::Executing,
            };
            cx.end();
            status
        })) as Box<dyn TaskBody>
    })
    .with_load(move || chunk_q.occupancy());
    if let Some(cap) = work_cap {
        work = work.with_max_extent(cap);
    }
    vec![read, work]
}

/// The `read` stage body: owns the drain protocol (paper's `FiniCB`).
struct ReadBody {
    source: WorkQueue<Transaction>,
    chunk_q: WorkQueue<ChunkItem>,
    stats: Arc<ServiceStats>,
}

impl TaskBody for ReadBody {
    fn invoke(&mut self, cx: &mut dyn TaskCx) -> TaskStatus {
        if cx.begin().wants_suspend() {
            cx.end();
            return TaskStatus::Suspended;
        }
        // Backpressure: keep pending transactions in the *global* work
        // queue (where LoadCB and the mechanisms can see them) instead of
        // hoarding them in the replica-local chunk queue.
        if self.chunk_q.len() >= 2 {
            std::thread::sleep(Duration::from_micros(200));
            cx.end();
            return TaskStatus::Executing;
        }
        let outcome = self.source.dequeue_timeout(Duration::from_millis(2));
        let status = match outcome {
            DequeueOutcome::Item(txn) => {
                let chunk_count = txn.chunks.len() as u32;
                if chunk_count == 0 {
                    self.stats.record_completion(txn.submitted);
                } else {
                    let meta = Arc::new(TxnMeta {
                        submitted: txn.submitted,
                        remaining: AtomicU32::new(chunk_count),
                    });
                    for chunk in txn.chunks {
                        // A closed chunk queue only happens during drain;
                        // the transaction is then re-counted as lost, which
                        // the suspend-before-dequeue protocol prevents.
                        let _ = self.chunk_q.enqueue((Arc::clone(&meta), chunk));
                    }
                }
                TaskStatus::Executing
            }
            DequeueOutcome::Drained => TaskStatus::Finished,
            DequeueOutcome::TimedOut => TaskStatus::Executing,
        };
        cx.end();
        status
    }

    fn fini(&mut self, _status: TaskStatus) {
        // Steer the nest into a consistent state: downstream drains fully.
        self.chunk_q.close();
    }
}

fn whole_task(source: WorkQueue<Transaction>, stats: Arc<ServiceStats>) -> TaskSpec {
    TaskSpec::leaf("whole", TaskKind::Seq, move |_slot: WorkerSlot| {
        let source = source.clone();
        let stats = Arc::clone(&stats);
        Box::new(body_fn(move |cx: &mut dyn TaskCx| {
            if cx.begin().wants_suspend() {
                cx.end();
                return TaskStatus::Suspended;
            }
            let outcome = source.dequeue_timeout(Duration::from_millis(2));
            let status = match outcome {
                DequeueOutcome::Item(txn) => {
                    for chunk in txn.chunks {
                        chunk();
                    }
                    stats.record_completion(txn.submitted);
                    TaskStatus::Executing
                }
                DequeueOutcome::Drained => TaskStatus::Finished,
                DequeueOutcome::TimedOut => TaskStatus::Executing,
            };
            cx.end();
            status
        })) as Box<dyn TaskBody>
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dope_core::nest;
    use dope_core::ProgramShape;

    fn spin(us: u64) {
        let t0 = Instant::now();
        while t0.elapsed() < Duration::from_micros(us) {
            std::hint::black_box(0u64);
        }
    }

    fn make_txn(id: u64, chunks: usize) -> Transaction {
        Transaction::new(
            id,
            (0..chunks)
                .map(|_| Box::new(|| spin(50)) as ChunkFn)
                .collect(),
        )
    }

    #[test]
    fn descriptor_shape_is_two_level_with_seq_alternative() {
        let service = TwoLevelService::new();
        let specs = service.descriptor("transcode", Some(8));
        let shape = ProgramShape::of_specs(&specs);
        let nest = nest::find_two_level(&shape).unwrap();
        assert_eq!(nest.parallel_alt, 0);
        assert_eq!(nest.sequential_alt, Some(1));
        assert_eq!(nest::seq_leaves(&shape, &nest), 1);
        // Parallel alternative: read + work.
        let outer = &shape.tasks[0];
        assert_eq!(outer.alternatives[0].len(), 2);
        assert_eq!(outer.alternatives[0][1].max_extent, Some(8));
    }

    #[test]
    fn queue_probe_reports_counts() {
        let service = TwoLevelService::new();
        service.queue.enqueue(make_txn(0, 1)).unwrap();
        let probe = service.queue_probe();
        let stats = probe();
        assert_eq!(stats.occupancy, 1.0);
        assert_eq!(stats.enqueued, 1);
        assert_eq!(stats.completed, 0);
    }

    #[test]
    fn queue_probe_estimates_arrival_rate() {
        let service = TwoLevelService::new();
        let probe = service.queue_probe();
        // Nothing enqueued: the estimate is exactly zero, not NaN, even
        // though almost no time has elapsed.
        assert_eq!(probe().arrival_rate, 0.0);

        for id in 0..8 {
            service.queue.enqueue(make_txn(id, 1)).unwrap();
        }
        std::thread::sleep(Duration::from_millis(20));
        let first = probe();
        assert_eq!(first.enqueued, 8);
        // rate = enqueued / elapsed; elapsed is at least the 20 ms sleep,
        // so the estimate is positive and bounded by 8 / 0.020.
        assert!(first.arrival_rate > 0.0);
        assert!(
            first.arrival_rate <= 8.0 / 0.020,
            "rate {} exceeds enqueued/elapsed bound",
            first.arrival_rate
        );

        // With no further arrivals the cumulative estimate strictly
        // decays as time passes.
        std::thread::sleep(Duration::from_millis(20));
        let second = probe();
        assert_eq!(second.enqueued, 8);
        assert!(second.arrival_rate < first.arrival_rate);
    }

    #[test]
    fn traced_queue_probe_records_samples() {
        let service = TwoLevelService::new();
        service.queue.enqueue(make_txn(0, 1)).unwrap();
        let recorder = dope_trace::Recorder::bounded(8);
        let probe = service.traced_queue_probe(recorder.clone());
        let stats = probe();
        assert_eq!(stats.enqueued, 1);
        let records = recorder.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].event.kind(), "QueueSample");
    }

    #[test]
    fn stats_record_completions() {
        let stats = ServiceStats::new();
        let t = Instant::now();
        stats.record_completion(t);
        stats.record_completion(t);
        assert_eq!(stats.completed(), 2);
        assert_eq!(stats.response().count(), 2);
        assert_eq!(stats.throughput().completed(), 2);
    }

    #[test]
    fn whole_task_processes_and_finishes() {
        let service = TwoLevelService::new();
        service.queue.enqueue(make_txn(1, 3)).unwrap();
        service.queue.close();
        let spec = whole_task(service.queue.clone(), Arc::clone(&service.stats));
        let factory = match spec.work() {
            dope_core::Work::Leaf(f) => Arc::clone(f),
            dope_core::Work::Nest(_) => unreachable!(),
        };
        let mut body = factory.make_body(WorkerSlot {
            replica: 0,
            worker: 0,
            extent: 1,
        });
        let mut cx = dope_core::task::NullCx::default();
        assert_eq!(body.invoke(&mut cx), TaskStatus::Executing);
        assert_eq!(body.invoke(&mut cx), TaskStatus::Finished);
        assert_eq!(service.stats.completed(), 1);
    }
}
