//! The image-editing service (gimp oilify plugin).
//!
//! Outer loop over edit requests; inner DOALL over image row bands.

use crate::kernels::oilify::{oilify_rows, Image};
use crate::service::{ChunkFn, Transaction, TwoLevelService};
use crate::AppInfo;
use dope_sim::system::TwoLevelModel;
use dope_sim::AmdahlProfile;
use std::sync::Arc;

/// Table 4 metadata.
#[must_use]
pub fn info() -> AppInfo {
    AppInfo {
        name: "gimp",
        description: "Image editing using oilify plugin",
        loop_nest_levels: 2,
        inner_dop_min: Some(2),
    }
}

/// Calibrated simulator model.
#[must_use]
pub fn sim_model() -> TwoLevelModel {
    TwoLevelModel::doall("oilify", AmdahlProfile::new(30.0, 0.97, 0.1, 0.08))
}

/// Workload parameters of the live service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EditParams {
    /// Image width.
    pub width: usize,
    /// Image height.
    pub height: usize,
    /// Filter radius.
    pub radius: usize,
    /// Row bands the image splits into.
    pub bands: u32,
}

impl Default for EditParams {
    fn default() -> Self {
        EditParams {
            width: 96,
            height: 96,
            radius: 3,
            bands: 8,
        }
    }
}

/// Builds one edit request: one chunk per row band.
#[must_use]
pub fn make_edit(id: u64, params: EditParams) -> Transaction {
    let image = Arc::new(Image::synthetic(params.width, params.height, id));
    let chunks = (0..params.bands)
        .map(|band| {
            let image = Arc::clone(&image);
            Box::new(move || {
                let mut out = vec![0u8; image.pixels.len()];
                oilify_rows(&image, &mut out, params.radius, band, params.bands);
                std::hint::black_box(out);
            }) as ChunkFn
        })
        .collect();
    Transaction::new(id, chunks)
}

/// A fresh live editing service with its DoPE descriptor.
#[must_use]
pub fn live_service() -> (TwoLevelService, Vec<dope_core::TaskSpec>) {
    let service = TwoLevelService::new();
    let descriptor = service.descriptor("oilify", None);
    (service, descriptor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_model_parallelizes() {
        let m = sim_model();
        assert_eq!(m.profile().m_min(24), Some(2));
        assert!(m.profile().speedup(8) > 4.0);
    }

    #[test]
    fn edit_has_one_chunk_per_band() {
        let txn = make_edit(0, EditParams::default());
        assert_eq!(txn.chunks.len(), 8);
    }
}
