//! The option-pricing service (swaptions).
//!
//! Outer loop over pricing requests; inner DOALL over Monte Carlo trials.

use crate::kernels::montecarlo::{price_partial, Swaption};
use crate::service::{ChunkFn, Transaction, TwoLevelService};
use crate::AppInfo;
use dope_sim::system::TwoLevelModel;
use dope_sim::AmdahlProfile;

/// Table 4 metadata.
#[must_use]
pub fn info() -> AppInfo {
    AppInfo {
        name: "swaptions",
        description: "Option pricing via Monte Carlo simulations",
        loop_nest_levels: 2,
        inner_dop_min: Some(2),
    }
}

/// Calibrated simulator model: trials parallelize almost perfectly.
#[must_use]
pub fn sim_model() -> TwoLevelModel {
    TwoLevelModel::doall("price", AmdahlProfile::new(10.0, 0.99, 0.05, 0.03))
}

/// Workload parameters of the live service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PricingParams {
    /// Monte Carlo trials per request.
    pub trials: u64,
    /// Time steps per path.
    pub steps: u32,
    /// Chunks the trial space splits into.
    pub chunks: u32,
}

impl Default for PricingParams {
    fn default() -> Self {
        PricingParams {
            trials: 2000,
            steps: 16,
            chunks: 8,
        }
    }
}

/// Builds one pricing request: the trial space split into chunks.
#[must_use]
pub fn make_request(id: u64, params: PricingParams) -> Transaction {
    let swaption = Swaption::default();
    let chunks = (0..params.chunks)
        .map(|c| {
            Box::new(move || {
                std::hint::black_box(price_partial(
                    &swaption,
                    params.trials,
                    params.steps,
                    id,
                    c,
                    params.chunks,
                ));
            }) as ChunkFn
        })
        .collect();
    Transaction::new(id, chunks)
}

/// A fresh live pricing service with its DoPE descriptor.
#[must_use]
pub fn live_service() -> (TwoLevelService, Vec<dope_core::TaskSpec>) {
    let service = TwoLevelService::new();
    let descriptor = service.descriptor("price", None);
    (service, descriptor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_model_scales_well() {
        let m = sim_model();
        assert!(m.profile().speedup(8) > 6.0);
        assert_eq!(m.profile().m_min(24), Some(2));
    }

    #[test]
    fn request_splits_trials() {
        let txn = make_request(1, PricingParams::default());
        assert_eq!(txn.chunks.len(), 8);
    }
}
