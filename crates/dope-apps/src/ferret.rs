//! The image search engine (ferret): the paper's showcase application.
//!
//! A single-level six-stage pipeline: load (SEQ), segment, extract,
//! index, rank (all PAR), out (SEQ). The paper evaluates all three goals
//! on it (Figures 12–14) and registers a fused task (59 LoC, Table 4)
//! merging the four parallel stages for TBF.

use crate::kernels::search::{extract, index_probe, rank, segment, Corpus, QueryImage};
use crate::pipeline_live::{LivePipeline, PipeItem, StageDef};
use crate::AppInfo;
use dope_sim::pipeline::{PipelineModel, StageProfile};
use std::sync::Arc;

/// Table 4 metadata.
#[must_use]
pub fn info() -> AppInfo {
    AppInfo {
        name: "ferret",
        description: "Image search engine",
        loop_nest_levels: 1,
        inner_dop_min: None,
    }
}

/// Calibrated simulator model: the `index` stage dominates, so static
/// even distributions starve it (Figure 15's Pthreads-Baseline) while
/// oversubscription and DoPE's balancing feed it.
#[must_use]
pub fn sim_model() -> PipelineModel {
    PipelineModel::new(
        "ferret",
        vec![
            StageProfile::seq("load", 0.0012),
            StageProfile::par("segment", 0.008),
            StageProfile::par("extract", 0.012),
            StageProfile::par("index", 0.060),
            StageProfile::par("rank", 0.025),
            StageProfile::seq("out", 0.0012),
        ],
    )
    .with_fused(vec![
        StageProfile::seq("load", 0.0012),
        // Fusing the four parallel stages keeps a query's feature data in
        // one worker's cache: 8% of the stage time is forwarding.
        StageProfile::par("fused", 0.105 * 0.92),
        StageProfile::seq("out", 0.0012),
    ])
    .with_forward_overhead(0.0005)
}

/// Payload states as an item moves through the live pipeline.
mod payload {
    #[cfg(test)]
    use super::Corpus;
    use super::QueryImage;

    pub struct Loaded(pub QueryImage);
    pub struct Segmented(pub Vec<Vec<u8>>);
    pub struct Featurized(pub [f32; crate::kernels::search::FEATURE_DIM]);
    pub struct Probed {
        pub features: [f32; crate::kernels::search::FEATURE_DIM],
        pub candidates: Vec<usize>,
    }
    pub struct Ranked(pub Vec<(usize, f32)>);

    #[cfg(test)]
    pub fn corpus_for_tests() -> Corpus {
        Corpus::synthetic(256, 1)
    }
}

/// Builds the live ferret pipeline over `corpus`, returning the harness
/// and its DoPE descriptor (unfused and fused alternatives).
#[must_use]
pub fn live_pipeline(corpus: Arc<Corpus>) -> (LivePipeline, Vec<dope_core::TaskSpec>) {
    let pipe = LivePipeline::new();

    let load = StageDef::seq("load", |item: PipeItem| {
        let seed = item.id;
        PipeItem {
            payload: Box::new(payload::Loaded(QueryImage::synthetic(seed))),
            ..item
        }
    });
    let seg = StageDef::par("segment", |item: PipeItem| {
        let loaded = item
            .payload
            .downcast::<payload::Loaded>()
            .expect("segment receives a loaded query");
        PipeItem {
            payload: Box::new(payload::Segmented(segment(&loaded.0))),
            id: item.id,
            submitted: item.submitted,
        }
    });
    let ext = StageDef::par("extract", |item: PipeItem| {
        let tiles = item
            .payload
            .downcast::<payload::Segmented>()
            .expect("extract receives segments");
        PipeItem {
            payload: Box::new(payload::Featurized(extract(&tiles.0))),
            id: item.id,
            submitted: item.submitted,
        }
    });
    let corpus_idx = Arc::clone(&corpus);
    let idx = StageDef::par("index", move |item: PipeItem| {
        let features = item
            .payload
            .downcast::<payload::Featurized>()
            .expect("index receives features");
        let candidates = index_probe(&corpus_idx, &features.0);
        PipeItem {
            payload: Box::new(payload::Probed {
                features: features.0,
                candidates,
            }),
            id: item.id,
            submitted: item.submitted,
        }
    });
    let corpus_rank = Arc::clone(&corpus);
    let rnk = StageDef::par("rank", move |item: PipeItem| {
        let probed = item
            .payload
            .downcast::<payload::Probed>()
            .expect("rank receives candidates");
        let top = rank(&corpus_rank, &probed.features, &probed.candidates, 10);
        PipeItem {
            payload: Box::new(payload::Ranked(top)),
            id: item.id,
            submitted: item.submitted,
        }
    });
    let out = StageDef::seq("out", |item: PipeItem| {
        if let Some(ranked) = item.payload.downcast_ref::<payload::Ranked>() {
            std::hint::black_box(ranked.0.len());
        }
        item
    });

    // Fused alternative: one parallel task runs the whole query.
    let corpus_fused = Arc::clone(&corpus);
    let fused = StageDef::par("fused", move |item: PipeItem| {
        let loaded = item
            .payload
            .downcast::<payload::Loaded>()
            .expect("fused receives a loaded query");
        let tiles = segment(&loaded.0);
        let features = extract(&tiles);
        let candidates = index_probe(&corpus_fused, &features);
        let top = rank(&corpus_fused, &features, &candidates, 10);
        PipeItem {
            payload: Box::new(payload::Ranked(top)),
            id: item.id,
            submitted: item.submitted,
        }
    });

    let load2 = load.clone();
    let out2 = out.clone();
    let descriptor = pipe.descriptor(
        "ferret",
        vec![
            vec![load, seg, ext, idx, rnk, out],
            vec![load2, fused, out2],
        ],
    );
    (pipe, descriptor)
}

/// Submits `count` queries to a live pipeline.
pub fn submit_queries(pipe: &LivePipeline, count: u64) {
    for id in 0..count {
        let _ = pipe.source.enqueue(PipeItem::new(id, Box::new(())));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_model_has_fused_alternative() {
        let m = sim_model();
        assert_eq!(m.alternative_count(), 2);
        assert_eq!(m.stages(0).len(), 6);
        assert_eq!(m.stages(1).len(), 3);
        // The fused stage is slightly cheaper than the sum of the
        // parallel stages (forwarding removed).
        let par_sum: f64 = m.stages(0)[1..5].iter().map(|s| s.mean_service_secs).sum();
        assert!(m.stages(1)[1].mean_service_secs < par_sum);
        assert!(m.stages(1)[1].mean_service_secs > 0.8 * par_sum);
    }

    #[test]
    fn index_stage_dominates() {
        let m = sim_model();
        let index = &m.stages(0)[3];
        assert_eq!(index.name, "index");
        for s in m.stages(0) {
            assert!(s.mean_service_secs <= index.mean_service_secs);
        }
    }

    #[test]
    fn live_descriptor_builds() {
        let corpus = Arc::new(payload::corpus_for_tests());
        let (_pipe, descriptor) = live_pipeline(corpus);
        let shape = dope_core::ProgramShape::of_specs(&descriptor);
        assert_eq!(shape.tasks[0].alternatives[0].len(), 6);
        assert_eq!(shape.tasks[0].alternatives[1].len(), 3);
    }
}
