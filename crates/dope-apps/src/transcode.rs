//! The video-transcoding service (x264): the paper's running example.
//!
//! Outer loop over submitted videos; inner pipeline over the frames of
//! one video. The paper measures a maximum intra-video speedup of 6.3x
//! at 8 threads on the 24-core machine (Figure 2a) and uses `Mmax = 8`.

use crate::kernels::frames::{encode_blocks, Frame};
use crate::service::{ChunkFn, Transaction, TwoLevelService};
use crate::AppInfo;
use dope_sim::system::TwoLevelModel;
use dope_sim::AmdahlProfile;
use std::sync::Arc;

/// The paper's `Mmax` for x264: the inner DoP extent above which parallel
/// efficiency drops below 0.5.
pub const M_MAX: u32 = 8;

/// Table 4 metadata.
#[must_use]
pub fn info() -> AppInfo {
    AppInfo {
        name: "x264",
        description: "Transcoding of yuv4mpeg videos",
        loop_nest_levels: 2,
        inner_dop_min: Some(2),
    }
}

/// Calibrated simulator model: `T_exec(1) ≈ 50 s` per video, speedup
/// ≈ 6.3x at width 8.
#[must_use]
pub fn sim_model() -> TwoLevelModel {
    TwoLevelModel::pipeline("transcode", AmdahlProfile::new(50.4, 0.985, 0.2, 0.12))
}

/// Workload parameters of the live service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VideoParams {
    /// Frames per video.
    pub frames: usize,
    /// Frame width (multiple of 8).
    pub width: usize,
    /// Frame height (multiple of 8).
    pub height: usize,
}

impl Default for VideoParams {
    fn default() -> Self {
        VideoParams {
            frames: 8,
            width: 64,
            height: 64,
        }
    }
}

/// Builds a transcoding request: one chunk per frame.
#[must_use]
pub fn make_video(id: u64, params: VideoParams) -> Transaction {
    let chunks = (0..params.frames)
        .map(|f| {
            let frame = Arc::new(Frame::synthetic(
                params.width,
                params.height,
                id.wrapping_mul(31).wrapping_add(f as u64),
            ));
            Box::new(move || {
                std::hint::black_box(encode_blocks(&frame, 0, 1, 8.0));
            }) as ChunkFn
        })
        .collect();
    Transaction::new(id, chunks)
}

/// A fresh live transcoding service with its DoPE descriptor.
#[must_use]
pub fn live_service() -> (TwoLevelService, Vec<dope_core::TaskSpec>) {
    let service = TwoLevelService::new();
    let descriptor = service.descriptor("transcode", Some(M_MAX));
    (service, descriptor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_model_matches_paper_calibration() {
        let m = sim_model();
        let s8 = m.profile().speedup(8);
        assert!((5.8..=6.8).contains(&s8), "speedup(8) = {s8}");
        assert!((m.profile().t1() - 50.4).abs() < 1e-9);
        assert_eq!(m.profile().m_min(24), Some(2));
    }

    #[test]
    fn video_transaction_has_one_chunk_per_frame() {
        let txn = make_video(3, VideoParams::default());
        assert_eq!(txn.chunks.len(), 8);
    }

    #[test]
    fn live_descriptor_has_two_alternatives() {
        let (_service, descriptor) = live_service();
        let shape = dope_core::ProgramShape::of_specs(&descriptor);
        assert_eq!(shape.tasks[0].alternatives.len(), 2);
    }
}
