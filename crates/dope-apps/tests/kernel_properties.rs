//! Property-based tests of the application kernels: the live runtime
//! parallelizes these, so their partition/merge laws must hold exactly.

use dope_apps::kernels::{chunks, compress, frames, montecarlo, oilify, search};
use proptest::prelude::*;

proptest! {
    /// The compressor round-trips arbitrary byte strings, not just the
    /// synthetic corpus.
    #[test]
    fn compress_roundtrips_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let coded = compress::compress_block(&data);
        prop_assert_eq!(compress::decompress_block(&coded), data);
    }

    /// Frame encoding partitioned over any worker count sums to the
    /// sequential result (bit-exact work partitioning).
    #[test]
    fn frame_encoding_partitions_exactly(
        seed in any::<u64>(),
        extent in 1u32..12,
        quantizer in 2.0f64..32.0,
    ) {
        let frame = frames::Frame::synthetic(32, 32, seed);
        let whole = frames::encode_frame(&frame, quantizer);
        let split: u64 = (0..extent)
            .map(|w| frames::encode_blocks(&frame, w, extent, quantizer))
            .sum();
        prop_assert_eq!(split, whole);
    }

    /// The oilify filter partitioned over row bands matches the
    /// sequential filter for arbitrary dimensions and radii.
    #[test]
    fn oilify_partitions_exactly(
        width in 4usize..40,
        height in 4usize..40,
        radius in 0usize..5,
        extent in 1u32..7,
        seed in any::<u64>(),
    ) {
        let img = oilify::Image::synthetic(width, height, seed);
        let whole = oilify::oilify(&img, radius);
        let mut split = vec![0u8; img.pixels.len()];
        for w in 0..extent {
            oilify::oilify_rows(&img, &mut split, radius, w, extent);
        }
        prop_assert_eq!(split, whole);
    }

    /// Monte Carlo pricing merges exactly across any partitioning: the
    /// per-trial seeding makes the estimate independent of the extent.
    #[test]
    fn pricing_is_partition_invariant(
        trials in 1u64..500,
        extent in 1u32..9,
        seed in any::<u64>(),
    ) {
        let s = montecarlo::Swaption::default();
        let (whole_sum, whole_n) = montecarlo::price_partial(&s, trials, 4, seed, 0, 1);
        let (sum, n) = (0..extent)
            .map(|w| montecarlo::price_partial(&s, trials, 4, seed, w, extent))
            .fold((0.0, 0u64), |(a, b), (c, d)| (a + c, b + d));
        prop_assert_eq!(n, whole_n);
        prop_assert!((sum - whole_sum).abs() < 1e-9 * whole_sum.abs().max(1.0));
    }

    /// Content-defined chunking reassembles to the input, respects the
    /// size bounds, and is deterministic.
    #[test]
    fn chunking_reassembles(
        data in prop::collection::vec(any::<u8>(), 0..8192),
        min_exp in 4u32..7,
    ) {
        let min_len = 1usize << min_exp;
        let max_len = min_len * 8;
        let out = chunks::fragment(&data, min_len, max_len, 0x3F);
        let mut reassembled = Vec::new();
        for (i, c) in out.iter().enumerate() {
            prop_assert_eq!(c.offset, reassembled.len());
            prop_assert!(c.data.len() <= max_len);
            if i + 1 < out.len() {
                prop_assert!(c.data.len() >= min_len.min(16));
            }
            reassembled.extend_from_slice(&c.data);
        }
        prop_assert_eq!(reassembled, data.clone());
        prop_assert_eq!(out, chunks::fragment(&data, min_len, max_len, 0x3F));
    }

    /// Search ranking returns at most `k` results, sorted by similarity,
    /// with indices inside the corpus.
    #[test]
    fn ranking_is_sorted_and_bounded(
        corpus_size in 1usize..300,
        k in 0usize..20,
        seed in any::<u64>(),
    ) {
        let corpus = search::Corpus::synthetic(corpus_size, seed);
        let query = search::QueryImage::synthetic(seed.wrapping_add(1));
        let results = search::search(&corpus, &query, k);
        prop_assert!(results.len() <= k.min(corpus.len()).min(corpus.len()));
        for pair in results.windows(2) {
            prop_assert!(pair[0].1 >= pair[1].1);
        }
        for (idx, _) in &results {
            prop_assert!(*idx < corpus.len());
        }
    }

    /// Dedup stores recognize every repeat of a chunk and none of the
    /// distinct ones (modulo 64-bit hash collisions, absent at this size).
    #[test]
    fn dedup_store_counts_duplicates(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..64), 1..40),
    ) {
        let mut store = chunks::DedupStore::new();
        let mut expected_unique = std::collections::HashSet::new();
        let mut duplicates = 0usize;
        for p in &payloads {
            let chunk = chunks::Chunk { offset: 0, data: p.clone() };
            let fresh = expected_unique.insert(p.clone());
            match store.dedup(&chunk) {
                chunks::Deduped::Unique { .. } => prop_assert!(fresh),
                chunks::Deduped::Duplicate { .. } => {
                    prop_assert!(!fresh);
                    duplicates += 1;
                }
            }
        }
        prop_assert_eq!(store.unique_count(), expected_unique.len());
        prop_assert_eq!(duplicates, payloads.len() - expected_unique.len());
    }
}
