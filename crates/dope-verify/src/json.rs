//! Minimal JSON codec for the `dope-verify` CLI.
//!
//! The workspace's `serde` is an offline no-op shim, so the CLI's input
//! format is implemented by hand: a strict JSON subset (objects, arrays,
//! strings, non-negative integers, `null`, booleans — everything the
//! shape/config encoding needs) with precise error offsets.
//!
//! The document format is:
//!
//! ```json
//! {
//!   "threads": 24,
//!   "shape": { "tasks": [
//!     { "name": "transcode", "kind": "par", "alternatives": [[
//!       { "name": "read", "kind": "seq" },
//!       { "name": "transform", "kind": "par", "max_extent": 16 },
//!       { "name": "write", "kind": "seq" }
//!     ]] }
//!   ]},
//!   "config": { "tasks": [
//!     { "name": "transcode", "extent": 3, "nested": { "alternative": 0, "tasks": [
//!       { "name": "read", "extent": 1 },
//!       { "name": "transform", "extent": 6 },
//!       { "name": "write", "extent": 1 }
//!     ]}}
//!   ]}
//! }
//! ```

use std::fmt;

use dope_core::{Config, NestConfig, ProgramShape, ShapeNode, TaskConfig, TaskKind};

/// A parse or decode failure, with a byte offset when parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input, if the failure was syntactic.
    pub offset: Option<usize>,
}

impl JsonError {
    fn at(offset: usize, message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
            offset: Some(offset),
        }
    }

    fn decode(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
            offset: None,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(offset) => write!(f, "{} (at byte {offset})", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (the only numbers the format uses).
    Number(u64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, preserving insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a [`JsonError`] with a byte offset on malformed input or
/// trailing garbage.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError::at(pos, "trailing characters after document"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), JsonError> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError::at(
            *pos,
            format!("expected `{}`", char::from(byte)),
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::at(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(c) if c.is_ascii_digit() => parse_number(bytes, pos),
        Some(_) => Err(JsonError::at(*pos, "unexpected character")),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    keyword: &str,
    value: Value,
) -> Result<Value, JsonError> {
    if bytes[*pos..].starts_with(keyword.as_bytes()) {
        *pos += keyword.len();
        Ok(value)
    } else {
        Err(JsonError::at(*pos, format!("expected `{keyword}`")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    let start = *pos;
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    if let Some(b'.' | b'e' | b'E' | b'-' | b'+') = bytes.get(*pos) {
        return Err(JsonError::at(
            *pos,
            "only non-negative integers are supported",
        ));
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .map(Value::Number)
        .ok_or_else(|| JsonError::at(start, "invalid number"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    _ => return Err(JsonError::at(*pos, "unsupported escape")),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => return Err(JsonError::at(*pos, "control character in string")),
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| JsonError::at(*pos, "invalid UTF-8"))?;
                let ch = rest.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(JsonError::at(*pos, "expected `,` or `]`")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            _ => return Err(JsonError::at(*pos, "expected `,` or `}`")),
        }
    }
}

/// The decoded CLI input: a shape, a configuration, and a thread budget.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyInput {
    /// The program's parallelism structure.
    pub shape: ProgramShape,
    /// The configuration to analyze.
    pub config: Config,
    /// The administrator's thread budget.
    pub threads: u32,
}

/// Decodes a full CLI document.
///
/// # Errors
///
/// Returns a [`JsonError`] on malformed JSON or on a document missing
/// required fields / using wrong types.
pub fn input_from_json(text: &str) -> Result<VerifyInput, JsonError> {
    let doc = parse(text)?;
    let threads = match doc.get("threads") {
        Some(Value::Number(n)) => {
            u32::try_from(*n).map_err(|_| JsonError::decode("`threads` does not fit in u32"))?
        }
        Some(_) => return Err(JsonError::decode("`threads` must be an integer")),
        None => return Err(JsonError::decode("missing `threads`")),
    };
    let shape_tasks = doc
        .get("shape")
        .and_then(|s| s.get("tasks"))
        .ok_or_else(|| JsonError::decode("missing `shape.tasks`"))?;
    let config_tasks = doc
        .get("config")
        .and_then(|c| c.get("tasks"))
        .ok_or_else(|| JsonError::decode("missing `config.tasks`"))?;
    Ok(VerifyInput {
        shape: ProgramShape::new(decode_shape_nodes(shape_tasks)?),
        config: Config::new(decode_task_configs(config_tasks)?),
        threads,
    })
}

fn as_array<'a>(value: &'a Value, what: &str) -> Result<&'a [Value], JsonError> {
    match value {
        Value::Array(items) => Ok(items),
        _ => Err(JsonError::decode(format!("{what} must be an array"))),
    }
}

fn field_string(value: &Value, key: &str, what: &str) -> Result<String, JsonError> {
    match value.get(key) {
        Some(Value::String(s)) => Ok(s.clone()),
        Some(_) => Err(JsonError::decode(format!("{what}.{key} must be a string"))),
        None => Err(JsonError::decode(format!("{what} is missing `{key}`"))),
    }
}

fn decode_shape_nodes(value: &Value) -> Result<Vec<ShapeNode>, JsonError> {
    as_array(value, "shape tasks")?
        .iter()
        .map(decode_shape_node)
        .collect()
}

fn decode_shape_node(value: &Value) -> Result<ShapeNode, JsonError> {
    let name = field_string(value, "name", "shape node")?;
    let kind = match field_string(value, "kind", "shape node")?.as_str() {
        "seq" => TaskKind::Seq,
        "par" => TaskKind::Par,
        other => {
            return Err(JsonError::decode(format!(
                "shape node kind must be \"seq\" or \"par\", got {other:?}"
            )))
        }
    };
    let max_extent = match value.get("max_extent") {
        None | Some(Value::Null) => None,
        Some(Value::Number(n)) => Some(
            u32::try_from(*n).map_err(|_| JsonError::decode("`max_extent` does not fit in u32"))?,
        ),
        Some(_) => return Err(JsonError::decode("`max_extent` must be an integer or null")),
    };
    let alternatives = match value.get("alternatives") {
        None | Some(Value::Null) => Vec::new(),
        Some(alts) => as_array(alts, "alternatives")?
            .iter()
            .map(decode_shape_nodes)
            .collect::<Result<Vec<_>, _>>()?,
    };
    Ok(ShapeNode {
        name,
        kind,
        max_extent,
        alternatives,
    })
}

fn decode_task_configs(value: &Value) -> Result<Vec<TaskConfig>, JsonError> {
    as_array(value, "config tasks")?
        .iter()
        .map(decode_task_config)
        .collect()
}

fn decode_task_config(value: &Value) -> Result<TaskConfig, JsonError> {
    let name = field_string(value, "name", "config node")?;
    let extent = match value.get("extent") {
        Some(Value::Number(n)) => {
            u32::try_from(*n).map_err(|_| JsonError::decode("`extent` does not fit in u32"))?
        }
        Some(_) => return Err(JsonError::decode("`extent` must be an integer")),
        None => return Err(JsonError::decode("config node is missing `extent`")),
    };
    let nested = match value.get("nested") {
        None | Some(Value::Null) => None,
        Some(nest) => {
            let alternative = match nest.get("alternative") {
                Some(Value::Number(n)) => usize::try_from(*n)
                    .map_err(|_| JsonError::decode("`alternative` does not fit in usize"))?,
                Some(_) => return Err(JsonError::decode("`alternative` must be an integer")),
                None => return Err(JsonError::decode("nested block is missing `alternative`")),
            };
            let tasks = nest
                .get("tasks")
                .ok_or_else(|| JsonError::decode("nested block is missing `tasks`"))?;
            Some(NestConfig {
                alternative,
                tasks: decode_task_configs(tasks)?,
            })
        }
    };
    Ok(TaskConfig {
        name,
        extent,
        nested,
    })
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

fn shape_node_to_json(node: &ShapeNode, out: &mut String) {
    out.push_str(&format!(
        "{{\"name\": \"{}\", \"kind\": \"{}\"",
        escape(&node.name),
        match node.kind {
            TaskKind::Seq => "seq",
            TaskKind::Par => "par",
        }
    ));
    if let Some(max) = node.max_extent {
        out.push_str(&format!(", \"max_extent\": {max}"));
    }
    if !node.alternatives.is_empty() {
        out.push_str(", \"alternatives\": [");
        for (j, alt) in node.alternatives.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push('[');
            for (i, child) in alt.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                shape_node_to_json(child, out);
            }
            out.push(']');
        }
        out.push(']');
    }
    out.push('}');
}

fn task_config_to_json(task: &TaskConfig, out: &mut String) {
    out.push_str(&format!(
        "{{\"name\": \"{}\", \"extent\": {}",
        escape(&task.name),
        task.extent
    ));
    if let Some(nest) = &task.nested {
        out.push_str(&format!(
            ", \"nested\": {{\"alternative\": {}, \"tasks\": [",
            nest.alternative
        ));
        for (i, child) in nest.tasks.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            task_config_to_json(child, out);
        }
        out.push_str("]}");
    }
    out.push('}');
}

/// Encodes a [`VerifyInput`] back to the CLI's JSON format.
///
/// The output round-trips through [`input_from_json`]; used by tests and
/// for generating example documents.
#[must_use]
pub fn input_to_json(input: &VerifyInput) -> String {
    let mut out = String::new();
    out.push_str(&format!("{{\"threads\": {},\n", input.threads));
    out.push_str(" \"shape\": {\"tasks\": [");
    for (i, node) in input.shape.tasks.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        shape_node_to_json(node, &mut out);
    }
    out.push_str("]},\n \"config\": {\"tasks\": [");
    for (i, task) in input.config.tasks.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        task_config_to_json(task, &mut out);
    }
    out.push_str("]}}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> VerifyInput {
        VerifyInput {
            shape: ProgramShape::new(vec![ShapeNode::nest(
                "transcode",
                TaskKind::Par,
                vec![
                    ShapeNode::leaf("read", TaskKind::Seq),
                    ShapeNode::leaf("transform", TaskKind::Par).with_max_extent(16),
                    ShapeNode::leaf("write", TaskKind::Seq),
                ],
            )]),
            config: Config::new(vec![TaskConfig::nest(
                "transcode",
                3,
                0,
                vec![
                    TaskConfig::leaf("read", 1),
                    TaskConfig::leaf("transform", 6),
                    TaskConfig::leaf("write", 1),
                ],
            )]),
            threads: 24,
        }
    }

    #[test]
    fn round_trip() {
        let input = sample();
        let text = input_to_json(&input);
        let back = input_from_json(&text).unwrap();
        assert_eq!(back, input);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let value = parse(" { \"a\\n\" : [ 1 , true , null , \"x\" ] } ").unwrap();
        let arr = value.get("a\n").unwrap();
        assert_eq!(
            arr,
            &Value::Array(vec![
                Value::Number(1),
                Value::Bool(true),
                Value::Null,
                Value::String("x".into()),
            ])
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("1.5").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn decode_reports_missing_fields() {
        let err = input_from_json("{\"threads\": 4}").unwrap_err();
        assert!(err.to_string().contains("shape"), "{err}");
        let err = input_from_json("{\"threads\": 4, \"shape\": {\"tasks\": []}, \"config\": {}}")
            .unwrap_err();
        assert!(err.to_string().contains("config.tasks"), "{err}");
    }

    #[test]
    fn decode_rejects_bad_kind() {
        let text = "{\"threads\": 4, \"shape\": {\"tasks\": [{\"name\": \"t\", \"kind\": \"pipe\"}]}, \"config\": {\"tasks\": []}}";
        let err = input_from_json(text).unwrap_err();
        assert!(err.to_string().contains("seq"), "{err}");
    }

    #[test]
    fn parse_error_carries_offset() {
        let err = parse("[1, ?]").unwrap_err();
        assert_eq!(err.offset, Some(4));
    }
}
