//! JSON document codec for the `dope-verify` CLI.
//!
//! The strict JSON parser and the shape/config tree codecs now live in
//! [`dope_core::json`] (they are shared with the `dope-trace` flight
//! recorder); this module re-exports them so existing callers of
//! `dope_verify::json::{parse, Value, JsonError}` keep compiling, and
//! keeps only what is specific to the CLI: the [`VerifyInput`] document
//! format.
//!
//! The document format is:
//!
//! ```json
//! {
//!   "threads": 24,
//!   "shape": { "tasks": [
//!     { "name": "transcode", "kind": "par", "alternatives": [[
//!       { "name": "read", "kind": "seq" },
//!       { "name": "transform", "kind": "par", "max_extent": 16 },
//!       { "name": "write", "kind": "seq" }
//!     ]] }
//!   ]},
//!   "config": { "tasks": [
//!     { "name": "transcode", "extent": 3, "nested": { "alternative": 0, "tasks": [
//!       { "name": "read", "extent": 1 },
//!       { "name": "transform", "extent": 6 },
//!       { "name": "write", "extent": 1 }
//!     ]}}
//!   ]}
//! }
//! ```

pub use dope_core::json::{parse, JsonError, Value};

use dope_core::json::{
    config_to_value, shape_node_from_value, shape_to_value, task_config_from_value,
};
use dope_core::{Config, ProgramShape};

/// The decoded CLI input: a shape, a configuration, and a thread budget.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyInput {
    /// The program's parallelism structure.
    pub shape: ProgramShape,
    /// The configuration to analyze.
    pub config: Config,
    /// The administrator's thread budget.
    pub threads: u32,
}

/// Decodes a full CLI document.
///
/// # Errors
///
/// Returns a [`JsonError`] on malformed JSON or on a document missing
/// required fields / using wrong types.
pub fn input_from_json(text: &str) -> Result<VerifyInput, JsonError> {
    let doc = parse(text)?;
    let threads = match doc.get("threads") {
        Some(Value::Number(n)) => {
            u32::try_from(*n).map_err(|_| JsonError::decode("`threads` does not fit in u32"))?
        }
        Some(_) => return Err(JsonError::decode("`threads` must be an integer")),
        None => return Err(JsonError::decode("missing `threads`")),
    };
    let shape_tasks = doc
        .get("shape")
        .and_then(|s| s.get("tasks"))
        .ok_or_else(|| JsonError::decode("missing `shape.tasks`"))?;
    let config_tasks = doc
        .get("config")
        .and_then(|c| c.get("tasks"))
        .ok_or_else(|| JsonError::decode("missing `config.tasks`"))?;
    let shape_nodes = shape_tasks
        .as_array()
        .ok_or_else(|| JsonError::decode("shape tasks must be an array"))?
        .iter()
        .map(shape_node_from_value)
        .collect::<Result<Vec<_>, _>>()?;
    let config_nodes = config_tasks
        .as_array()
        .ok_or_else(|| JsonError::decode("config tasks must be an array"))?
        .iter()
        .map(task_config_from_value)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(VerifyInput {
        shape: ProgramShape::new(shape_nodes),
        config: Config::new(config_nodes),
        threads,
    })
}

/// Encodes a [`VerifyInput`] back to the CLI's JSON format.
///
/// The output round-trips through [`input_from_json`]; used by tests and
/// for generating example documents.
#[must_use]
pub fn input_to_json(input: &VerifyInput) -> String {
    let shape = shape_to_value(&input.shape).to_json();
    let config = config_to_value(&input.config).to_json();
    format!(
        "{{\"threads\": {},\n \"shape\": {shape},\n \"config\": {config}}}\n",
        input.threads
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dope_core::{ShapeNode, TaskConfig, TaskKind};

    fn sample() -> VerifyInput {
        VerifyInput {
            shape: ProgramShape::new(vec![ShapeNode::nest(
                "transcode",
                TaskKind::Par,
                vec![
                    ShapeNode::leaf("read", TaskKind::Seq),
                    ShapeNode::leaf("transform", TaskKind::Par).with_max_extent(16),
                    ShapeNode::leaf("write", TaskKind::Seq),
                ],
            )]),
            config: Config::new(vec![TaskConfig::nest(
                "transcode",
                3,
                0,
                vec![
                    TaskConfig::leaf("read", 1),
                    TaskConfig::leaf("transform", 6),
                    TaskConfig::leaf("write", 1),
                ],
            )]),
            threads: 24,
        }
    }

    #[test]
    fn round_trip() {
        let input = sample();
        let text = input_to_json(&input);
        let back = input_from_json(&text).unwrap();
        assert_eq!(back, input);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let value = parse(" { \"a\\n\" : [ 1 , true , null , \"x\" ] } ").unwrap();
        let arr = value.get("a\n").unwrap();
        assert_eq!(
            arr,
            &Value::Array(vec![
                Value::Number(1),
                Value::Bool(true),
                Value::Null,
                Value::String("x".into()),
            ])
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn decode_reports_missing_fields() {
        let err = input_from_json("{\"threads\": 4}").unwrap_err();
        assert!(err.to_string().contains("shape"), "{err}");
        let err = input_from_json("{\"threads\": 4, \"shape\": {\"tasks\": []}, \"config\": {}}")
            .unwrap_err();
        assert!(err.to_string().contains("config.tasks"), "{err}");
    }

    #[test]
    fn decode_rejects_bad_kind() {
        let text = "{\"threads\": 4, \"shape\": {\"tasks\": [{\"name\": \"t\", \"kind\": \"pipe\"}]}, \"config\": {\"tasks\": []}}";
        let err = input_from_json(text).unwrap_err();
        assert!(err.to_string().contains("seq"), "{err}");
    }

    #[test]
    fn parse_error_carries_offset() {
        let err = parse("[1, ?]").unwrap_err();
        assert_eq!(err.offset, Some(4));
    }
}
