//! `dope-verify`: lint a JSON-serialized shape + configuration pair.
//!
//! ```text
//! usage: dope-verify [--deny-warnings] <input.json | ->
//! ```
//!
//! Reads the document (or stdin when the argument is `-`), runs the
//! static analyzer, and prints a diagnostic table. Exit status:
//!
//! * `0` — no errors (warnings allowed unless `--deny-warnings`);
//! * `1` — the configuration has error-severity findings;
//! * `2` — usage, I/O, or parse failure.

use std::io::Read;
use std::process::ExitCode;

use dope_core::Resources;
use dope_verify::json;

const USAGE: &str = "usage: dope-verify [--deny-warnings] <input.json | ->";

fn main() -> ExitCode {
    let mut deny_warnings = false;
    let mut input_path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deny-warnings" => deny_warnings = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with("--") => {
                eprintln!("dope-verify: unknown flag `{arg}`\n{USAGE}");
                return ExitCode::from(2);
            }
            _ if input_path.is_none() => input_path = Some(arg),
            _ => {
                eprintln!("dope-verify: too many arguments\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = input_path else {
        eprintln!("dope-verify: missing input file\n{USAGE}");
        return ExitCode::from(2);
    };

    let text = if path == "-" {
        let mut buffer = String::new();
        match std::io::stdin().read_to_string(&mut buffer) {
            Ok(_) => buffer,
            Err(err) => {
                eprintln!("dope-verify: failed to read stdin: {err}");
                return ExitCode::from(2);
            }
        }
    } else {
        match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("dope-verify: failed to read {path}: {err}");
                return ExitCode::from(2);
            }
        }
    };

    let input = match json::input_from_json(&text) {
        Ok(input) => input,
        Err(err) => {
            eprintln!("dope-verify: {path}: {err}");
            return ExitCode::from(2);
        }
    };

    let report = dope_verify::analyze(
        &input.shape,
        &input.config,
        &Resources::threads(input.threads),
    );
    print!("{}", report.render_table());
    let errors = report.errors().count();
    let warnings = report.warnings().count();
    println!(
        "{} error{}, {} warning{} ({} threads budgeted, {} configured)",
        errors,
        if errors == 1 { "" } else { "s" },
        warnings,
        if warnings == 1 { "" } else { "s" },
        input.threads,
        input.config.total_threads(),
    );
    if errors > 0 || (deny_warnings && warnings > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
