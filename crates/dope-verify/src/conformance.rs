//! Mechanism conformance: drive a mechanism over synthetic monitoring
//! data and statically analyze every configuration it proposes.
//!
//! A mechanism is *conformant* when, for every snapshot in a grid of
//! synthetic [`MonitorSnapshot`]s, each proposal it returns produces no
//! error-severity diagnostics under [`analyze`]
//! (codes on the mechanism's documented exemption list excluded — SEDA
//! is uncoordinated by design and exempt from the budget check
//! [`DiagCode::BudgetExceeded`]; the executive clamps its proposals at
//! the reconfiguration gate instead).
//!
//! The harness lives in the library (not the test tree) so the runtime
//! crate and downstream applications can reuse it for their own
//! mechanisms.

use std::fmt;

use dope_core::diag::{DiagCode, Diagnostic};
use dope_core::{Config, Mechanism, MonitorSnapshot, ProgramShape, Resources, TaskPath, TaskStats};

use crate::analyze;

/// Evidence that a mechanism proposed a non-conformant configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// `Mechanism::name()` of the offender.
    pub mechanism: String,
    /// Index into the snapshot sequence at which the proposal was made
    /// (`usize::MAX` for the initial configuration).
    pub step: usize,
    /// The offending configuration.
    pub config: Config,
    /// Error-severity diagnostics, exemptions already removed.
    pub diagnostics: Vec<Diagnostic>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.step == usize::MAX {
            write!(
                f,
                "mechanism {} proposed non-conformant initial config {}:",
                self.mechanism, self.config
            )?;
        } else {
            write!(
                f,
                "mechanism {} proposed non-conformant config {} at step {}:",
                self.mechanism, self.config, self.step
            )?;
        }
        for d in &self.diagnostics {
            write!(f, "\n  {d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Violation {}

/// Builds a deterministic grid of synthetic snapshots exercising the
/// regimes mechanisms branch on: idle and saturated queues, balanced and
/// skewed stage execution times, light and heavy load, power present and
/// absent, and a growing dispatch counter.
///
/// One [`TaskStats`] entry is synthesized per leaf path of `shape`
/// (following first alternatives), which matches what the runtime
/// monitor publishes.
#[must_use]
pub fn snapshot_grid(shape: &ProgramShape, steps: usize) -> Vec<MonitorSnapshot> {
    const EXECS: [f64; 4] = [1e-4, 1e-3, 1e-2, 0.1];
    const LOADS: [f64; 4] = [0.0, 0.5, 4.0, 32.0];
    const OCCUPANCIES: [f64; 5] = [0.0, 0.5, 2.0, 9.0, 64.0];
    const POWERS: [Option<f64>; 3] = [None, Some(450.0), Some(700.0)];

    let leaves: Vec<TaskPath> = shape.leaf_paths();
    (0..steps)
        .map(|i| {
            let mut snap = MonitorSnapshot::at(0.25 * (i + 1) as f64);
            for (k, path) in leaves.iter().enumerate() {
                // Skew stage cost with the leaf index so slowest-task
                // driven mechanisms see a moving bottleneck.
                let exec = EXECS[(i + k) % EXECS.len()];
                let load = LOADS[(i + 2 * k) % LOADS.len()];
                snap.tasks.insert(
                    path.clone(),
                    TaskStats {
                        invocations: 50 + 10 * i as u64,
                        mean_exec_secs: exec,
                        throughput: if exec > 0.0 { 1.0 / exec } else { 0.0 },
                        load,
                        utilization: 0.25 + 0.5 * ((i % 3) as f64) / 2.0,
                        ..TaskStats::default()
                    },
                );
            }
            snap.queue.occupancy = OCCUPANCIES[i % OCCUPANCIES.len()];
            snap.queue.arrival_rate = LOADS[i % LOADS.len()];
            snap.queue.enqueued = 100 + i as u64;
            snap.queue.completed = 90 + i as u64;
            snap.power_watts = POWERS[i % POWERS.len()];
            snap.dispatches_since_reconfig = i as u64 + 1;
            snap
        })
        .collect()
}

/// Drives `mech` over `snaps` and statically analyzes every
/// configuration it proposes (including its initial configuration).
///
/// Returns the number of proposals that were made and accepted. Codes
/// in `exempt` are ignored at error severity — the caller documents
/// why (e.g. SEDA's budget exemption). Warnings never fail conformance.
///
/// # Errors
///
/// Returns a [`Violation`] carrying the offending configuration and the
/// non-exempt error diagnostics as soon as one proposal fails analysis.
pub fn verify_mechanism(
    mech: &mut dyn Mechanism,
    shape: &ProgramShape,
    fallback: Config,
    resources: &Resources,
    snaps: &[MonitorSnapshot],
    exempt: &[DiagCode],
) -> Result<usize, Box<Violation>> {
    let name = mech.name().to_string();
    let check = move |config: &Config, step: usize| -> Result<(), Box<Violation>> {
        let report = analyze(shape, config, resources);
        let errors: Vec<Diagnostic> = report.errors_excluding(exempt).cloned().collect();
        if errors.is_empty() {
            Ok(())
        } else {
            Err(Box::new(Violation {
                mechanism: name.clone(),
                step,
                config: config.clone(),
                diagnostics: errors,
            }))
        }
    };

    let mut current = match mech.initial(shape, resources) {
        Some(initial) => {
            check(&initial, usize::MAX)?;
            initial
        }
        None => fallback,
    };
    let mut accepted = 0usize;
    for (step, snap) in snaps.iter().enumerate() {
        if let Some(proposal) = mech.reconfigure(snap, &current, shape, resources) {
            check(&proposal, step)?;
            current = proposal;
            mech.applied(&current);
            accepted += 1;
        }
    }
    Ok(accepted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dope_core::{ShapeNode, StaticMechanism, TaskConfig, TaskKind};

    fn shape() -> ProgramShape {
        ProgramShape::new(vec![
            ShapeNode::leaf("in", TaskKind::Seq),
            ShapeNode::leaf("work", TaskKind::Par),
            ShapeNode::leaf("out", TaskKind::Seq),
        ])
    }

    #[test]
    fn grid_is_deterministic_and_covers_leaves() {
        let a = snapshot_grid(&shape(), 12);
        let b = snapshot_grid(&shape(), 12);
        assert_eq!(a.len(), 12);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tasks.len(), 3);
            assert_eq!(x.tasks, y.tasks);
            assert_eq!(x.queue.occupancy, y.queue.occupancy);
        }
        // The grid must visit both an idle and a saturated queue.
        assert!(a.iter().any(|s| s.queue.occupancy == 0.0));
        assert!(a.iter().any(|s| s.queue.occupancy >= 32.0));
        // And both power regimes.
        assert!(a.iter().any(|s| s.power_watts.is_none()));
        assert!(a.iter().any(|s| s.power_watts.is_some()));
    }

    #[test]
    fn static_mechanism_is_conformant() {
        let shape = shape();
        let good = Config::new(vec![
            TaskConfig::leaf("in", 1),
            TaskConfig::leaf("work", 6),
            TaskConfig::leaf("out", 1),
        ]);
        let mut mech = StaticMechanism::new(good.clone());
        let snaps = snapshot_grid(&shape, 16);
        let accepted =
            verify_mechanism(&mut mech, &shape, good, &Resources::threads(8), &snaps, &[]).unwrap();
        // A static mechanism proposes nothing after launch.
        assert_eq!(accepted, 0);
    }

    #[test]
    fn over_budget_initial_is_reported() {
        let shape = shape();
        let wide = Config::new(vec![
            TaskConfig::leaf("in", 1),
            TaskConfig::leaf("work", 64),
            TaskConfig::leaf("out", 1),
        ]);
        let mut mech = StaticMechanism::new(wide.clone());
        let snaps = snapshot_grid(&shape, 4);
        let violation =
            verify_mechanism(&mut mech, &shape, wide, &Resources::threads(8), &snaps, &[])
                .unwrap_err();
        assert_eq!(violation.step, usize::MAX);
        assert!(violation
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::BudgetExceeded));
        let text = violation.to_string();
        assert!(text.contains("initial"), "{text}");
        assert!(text.contains("DV001"), "{text}");
    }

    #[test]
    fn exemptions_silence_the_named_code_only() {
        let shape = shape();
        let wide = Config::new(vec![
            TaskConfig::leaf("in", 1),
            TaskConfig::leaf("work", 64),
            TaskConfig::leaf("out", 1),
        ]);
        let mut mech = StaticMechanism::new(wide.clone());
        let snaps = snapshot_grid(&shape, 4);
        verify_mechanism(
            &mut mech,
            &shape,
            wide.clone(),
            &Resources::threads(8),
            &snaps,
            &[DiagCode::BudgetExceeded],
        )
        .unwrap();

        // A name mismatch is not covered by the budget exemption.
        let mut broken = wide;
        broken.tasks[1].name = "werk".into();
        let mut mech = StaticMechanism::new(broken.clone());
        assert!(verify_mechanism(
            &mut mech,
            &shape,
            broken,
            &Resources::threads(8),
            &snaps,
            &[DiagCode::BudgetExceeded],
        )
        .is_err());
    }
}
