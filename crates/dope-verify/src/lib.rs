//! Static analysis for DoPE parallelism configurations.
//!
//! The runtime's [`Config::validate`](dope_core::Config::validate) is
//! first-error-wins: it answers "may I launch this?" with a single
//! [`Error`](dope_core::Error). This crate answers the developer's
//! question instead — "*everything* that is wrong or suspicious about
//! this configuration" — as a [`Report`] of structured
//! [`Diagnostic`]s, each carrying a stable `DV0xx` code from
//! [`dope_core::diag`], the offending [`TaskPath`], a severity, and a
//! suggested fix.
//!
//! The analyzer is **strictly stronger** than the validator: a
//! configuration with no error-severity diagnostics always passes
//! `Config::validate` (the soundness property, enforced by property
//! tests in `tests/`). The converse is deliberately false — the
//! analyzer also rejects degenerate trees the validator tolerates
//! (empty nests, [`DiagCode::EmptyNest`]) and warns about legal but
//! suspicious configurations (under-subscription, duplicate names,
//! starved pipeline stages, unreachable alternatives).
//!
//! The catalogue is shared with the runtime, but not every code is
//! static: [`DiagCode::TaskFailed`] (DV016) is emitted only by the
//! runtime's supervision layer when a task body fails mid-run — this
//! analyzer never produces it.
//!
//! # Example
//!
//! ```
//! use dope_core::{Config, ProgramShape, Resources, ShapeNode, TaskConfig, TaskKind};
//! use dope_core::diag::DiagCode;
//!
//! let shape = ProgramShape::new(vec![ShapeNode::nest(
//!     "transcode",
//!     TaskKind::Par,
//!     vec![
//!         ShapeNode::leaf("read", TaskKind::Seq),
//!         ShapeNode::leaf("transform", TaskKind::Par).with_max_extent(16),
//!         ShapeNode::leaf("write", TaskKind::Seq),
//!     ],
//! )]);
//! // Two problems at once: a parallel sequential stage and a budget overrun.
//! let config = Config::new(vec![TaskConfig::nest(
//!     "transcode",
//!     8,
//!     0,
//!     vec![
//!         TaskConfig::leaf("read", 2),
//!         TaskConfig::leaf("transform", 6),
//!         TaskConfig::leaf("write", 1),
//!     ],
//! )]);
//! let report = dope_verify::analyze(&shape, &config, &Resources::threads(24));
//! let codes: Vec<_> = report.errors().map(|d| d.code).collect();
//! assert!(codes.contains(&DiagCode::SequentialExtent));
//! assert!(codes.contains(&DiagCode::BudgetExceeded));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod conformance;
pub mod json;
pub mod report;

pub use conformance::{snapshot_grid, verify_mechanism, Violation};
pub use report::Report;

use dope_core::diag::{DiagCode, Diagnostic};
use dope_core::{
    Config, NestConfig, ProgramShape, Resources, ShapeNode, TaskConfig, TaskKind, TaskPath,
};

/// Budget fraction below which [`DiagCode::UnderSubscription`] fires.
///
/// A configuration occupying at most this fraction of the thread budget
/// (for budgets of at least [`UNDER_SUBSCRIPTION_MIN_BUDGET`] threads)
/// leaves most of the machine idle, which defeats the purpose of an
/// adaptive executive.
pub const UNDER_SUBSCRIPTION_FRACTION: f64 = 0.5;

/// Budgets smaller than this never trigger under-subscription warnings.
pub const UNDER_SUBSCRIPTION_MIN_BUDGET: u32 = 8;

/// Analyzes `config` against `shape` under `resources`, collecting every
/// diagnostic the catalogue defines.
///
/// Unlike [`Config::validate`], analysis never stops at the first
/// problem: mismatched levels are still descended (pairing tasks
/// positionally as far as both trees extend), so a single run reports
/// all findings. Shape-only lints ([`lint_shape`]) are included.
#[must_use]
pub fn analyze(shape: &ProgramShape, config: &Config, resources: &Resources) -> Report {
    let mut diags = lint_shape(shape);
    analyze_level(&config.tasks, &shape.tasks, &TaskPath::root(), &mut diags);
    analyze_budget(config, resources, &mut diags);
    Report::new(diags)
}

/// Lints a shape on its own: findings that exist before any
/// configuration is chosen (empty alternatives, duplicate sibling names,
/// redundant alternatives).
#[must_use]
pub fn lint_shape(shape: &ProgramShape) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if shape.tasks.is_empty() {
        diags.push(
            Diagnostic::new(
                DiagCode::EmptyNest,
                TaskPath::root(),
                "program shape declares no tasks",
            )
            .with_suggestion("declare at least one task in the root descriptor"),
        );
    }
    lint_shape_level(&shape.tasks, &TaskPath::root(), &mut diags);
    diags
}

fn lint_shape_level(nodes: &[ShapeNode], prefix: &TaskPath, diags: &mut Vec<Diagnostic>) {
    // DV015: duplicate sibling names make paths ambiguous to humans.
    for (i, node) in nodes.iter().enumerate() {
        if nodes[..i].iter().any(|earlier| earlier.name == node.name) {
            diags.push(
                Diagnostic::new(
                    DiagCode::DuplicateTaskName,
                    prefix.child(i as u16),
                    format!("sibling task name `{}` is used more than once", node.name),
                )
                .with_suggestion("give each sibling task a distinct name"),
            );
        }
    }
    for (i, node) in nodes.iter().enumerate() {
        let path = prefix.child(i as u16);
        for (j, alt) in node.alternatives.iter().enumerate() {
            // DV008: an alternative with no tasks can never do work.
            if alt.is_empty() {
                diags.push(
                    Diagnostic::new(
                        DiagCode::EmptyNest,
                        path.clone(),
                        format!("task `{}` declares an empty alternative {j}", node.name),
                    )
                    .with_suggestion("remove the empty alternative or add tasks to it"),
                );
            }
            // DV009: a structural duplicate of an earlier alternative can
            // never change behaviour, so no mechanism gains anything by
            // selecting it.
            if node.alternatives[..j].iter().any(|earlier| earlier == alt) {
                diags.push(
                    Diagnostic::new(
                        DiagCode::UnreachableAlternative,
                        path.clone(),
                        format!(
                            "task `{}` alternative {j} duplicates an earlier alternative",
                            node.name
                        ),
                    )
                    .with_suggestion("remove the redundant alternative"),
                );
            }
            lint_shape_level(alt, &path, diags);
        }
    }
}

fn analyze_budget(config: &Config, resources: &Resources, diags: &mut Vec<Diagnostic>) {
    let required = config.total_threads();
    let budget = resources.threads;
    if required > budget {
        diags.push(
            Diagnostic::new(
                DiagCode::BudgetExceeded,
                TaskPath::root(),
                format!("configuration needs {required} threads but only {budget} are available"),
            )
            .with_suggestion(format!(
                "reduce extents until the total drops by {}",
                required - budget
            )),
        );
    } else if budget >= UNDER_SUBSCRIPTION_MIN_BUDGET
        && f64::from(required) <= f64::from(budget) * UNDER_SUBSCRIPTION_FRACTION
    {
        diags.push(
            Diagnostic::new(
                DiagCode::UnderSubscription,
                TaskPath::root(),
                format!(
                    "configuration uses {required} of {budget} budgeted threads ({}%)",
                    (100 * required) / budget.max(1)
                ),
            )
            .with_suggestion("raise extents of parallel tasks to use the idle budget"),
        );
    }
}

fn analyze_level(
    tasks: &[TaskConfig],
    nodes: &[ShapeNode],
    prefix: &TaskPath,
    diags: &mut Vec<Diagnostic>,
) {
    // DV011: arity mismatch. Analysis continues over the common prefix so
    // deeper findings are still reported.
    if tasks.len() != nodes.len() {
        diags.push(
            Diagnostic::new(
                DiagCode::ArityMismatch,
                prefix.clone(),
                format!(
                    "descriptor has {} tasks but configuration has {}",
                    nodes.len(),
                    tasks.len()
                ),
            )
            .with_suggestion(format!(
                "configure exactly {} tasks at this level",
                nodes.len()
            )),
        );
    }
    for (i, (task, node)) in tasks.iter().zip(nodes).enumerate() {
        let path = prefix.child(i as u16);
        analyze_node(task, node, &path, diags);
    }
    analyze_starvation(tasks, prefix, diags);
}

fn analyze_node(task: &TaskConfig, node: &ShapeNode, path: &TaskPath, diags: &mut Vec<Diagnostic>) {
    // DV005: names must agree so reports and mechanisms talk about the
    // same tasks.
    if task.name != node.name {
        diags.push(
            Diagnostic::new(
                DiagCode::NameMismatch,
                path.clone(),
                format!("expected task `{}`, found `{}`", node.name, task.name),
            )
            .with_suggestion(format!("rename the configured task to `{}`", node.name)),
        );
    }
    // DV007: zero extent means the task never runs.
    if task.extent == 0 {
        diags.push(
            Diagnostic::new(
                DiagCode::ZeroExtent,
                path.clone(),
                format!("task `{}` was assigned extent zero", task.name),
            )
            .with_suggestion("assign an extent of at least 1"),
        );
    }
    // DV003: sequential tasks cannot be replicated.
    if node.kind == TaskKind::Seq && task.extent > 1 {
        diags.push(
            Diagnostic::new(
                DiagCode::SequentialExtent,
                path.clone(),
                format!(
                    "sequential task `{}` was assigned extent {} (must be 1)",
                    task.name, task.extent
                ),
            )
            .with_suggestion("set the extent of sequential tasks to 1"),
        );
    }
    // DV006: extents above the declared cap overload the task.
    if let Some(max) = node.max_extent {
        if task.extent > max {
            diags.push(
                Diagnostic::new(
                    DiagCode::MaxExtentExceeded,
                    path.clone(),
                    format!(
                        "task `{}` extent {} exceeds declared cap {max}",
                        task.name, task.extent
                    ),
                )
                .with_suggestion(format!("clamp the extent to at most {max}")),
            );
        }
    }
    match (&task.nested, node.is_leaf()) {
        (None, true) => {}
        (Some(nest), false) => analyze_nest(task, nest, node, path, diags),
        // DV012: leaf/nest structure must agree.
        (Some(_), true) => {
            diags.push(
                Diagnostic::new(
                    DiagCode::StructureMismatch,
                    path.clone(),
                    format!("configuration nests leaf task `{}`", task.name),
                )
                .with_suggestion("configure this task as a leaf (no nested block)"),
            );
        }
        (None, false) => {
            diags.push(
                Diagnostic::new(
                    DiagCode::StructureMismatch,
                    path.clone(),
                    format!("configuration treats nested task `{}` as a leaf", task.name),
                )
                .with_suggestion("add a nested block choosing one of the declared alternatives"),
            );
        }
    }
}

fn analyze_nest(
    task: &TaskConfig,
    nest: &NestConfig,
    node: &ShapeNode,
    path: &TaskPath,
    diags: &mut Vec<Diagnostic>,
) {
    match node.alternatives.get(nest.alternative) {
        // DV004: the chosen alternative must exist.
        None => {
            diags.push(
                Diagnostic::new(
                    DiagCode::AltOutOfRange,
                    path.clone(),
                    format!(
                        "task `{}` has {} parallelism descriptors but alternative {} was requested",
                        task.name,
                        node.alternatives.len(),
                        nest.alternative
                    ),
                )
                .with_suggestion(format!(
                    "choose an alternative below {}",
                    node.alternatives.len()
                )),
            );
        }
        Some(alt) => {
            // DV008: a nest whose chosen alternative is empty replicates
            // nothing. `Config::validate` tolerates this (0 == 0 arity),
            // which is exactly why the analyzer flags it.
            if alt.is_empty() && nest.tasks.is_empty() {
                diags.push(
                    Diagnostic::new(
                        DiagCode::EmptyNest,
                        path.clone(),
                        format!(
                            "task `{}` selects empty alternative {}: the nest does no work",
                            task.name, nest.alternative
                        ),
                    )
                    .with_suggestion("select an alternative that contains tasks"),
                );
            }
            analyze_level(&nest.tasks, alt, path, diags);
        }
    }
}

/// DV010: inside a multi-stage nest (a pipeline), a stage with extent
/// zero while a sibling has capacity stalls the whole pipeline — every
/// item must flow through every stage.
fn analyze_starvation(tasks: &[TaskConfig], prefix: &TaskPath, diags: &mut Vec<Diagnostic>) {
    if tasks.len() < 2 {
        return;
    }
    let any_active = tasks.iter().any(|t| t.extent > 0);
    if !any_active {
        return;
    }
    for (i, task) in tasks.iter().enumerate() {
        if task.extent == 0 {
            diags.push(
                Diagnostic::new(
                    DiagCode::PipeStarvation,
                    prefix.child(i as u16),
                    format!(
                        "pipeline stage `{}` has extent 0 while sibling stages are active; \
                         items will pile up and the pipeline will starve",
                        task.name
                    ),
                )
                .with_suggestion("give every pipeline stage at least one worker"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dope_core::diag::Severity;

    fn transcode_shape() -> ProgramShape {
        ProgramShape::new(vec![ShapeNode::nest(
            "transcode",
            TaskKind::Par,
            vec![
                ShapeNode::leaf("read", TaskKind::Seq),
                ShapeNode::leaf("transform", TaskKind::Par).with_max_extent(16),
                ShapeNode::leaf("write", TaskKind::Seq),
            ],
        )])
    }

    fn transcode_config(outer: u32, transform: u32) -> Config {
        Config::new(vec![TaskConfig::nest(
            "transcode",
            outer,
            0,
            vec![
                TaskConfig::leaf("read", 1),
                TaskConfig::leaf("transform", transform),
                TaskConfig::leaf("write", 1),
            ],
        )])
    }

    fn codes(report: &Report) -> Vec<DiagCode> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_config_has_no_diagnostics() {
        let report = analyze(
            &transcode_shape(),
            &transcode_config(3, 6),
            &Resources::threads(24),
        );
        assert!(report.is_clean(), "{report}");
    }

    // DV001 ------------------------------------------------------------

    #[test]
    fn dv001_budget_exceeded_fires() {
        let report = analyze(
            &transcode_shape(),
            &transcode_config(4, 8),
            &Resources::threads(24),
        );
        assert!(codes(&report).contains(&DiagCode::BudgetExceeded));
        assert!(report.has_errors());
    }

    #[test]
    fn dv001_quiet_within_budget() {
        let report = analyze(
            &transcode_shape(),
            &transcode_config(3, 6),
            &Resources::threads(24),
        );
        assert!(!codes(&report).contains(&DiagCode::BudgetExceeded));
    }

    // DV002 ------------------------------------------------------------

    #[test]
    fn dv002_under_subscription_warns() {
        let report = analyze(
            &transcode_shape(),
            &transcode_config(1, 1),
            &Resources::threads(24),
        );
        let diag = report
            .diagnostics
            .iter()
            .find(|d| d.code == DiagCode::UnderSubscription)
            .expect("under-subscription warning");
        assert_eq!(diag.severity, Severity::Warning);
        assert!(!report.has_errors());
    }

    #[test]
    fn dv002_quiet_on_small_budgets_and_good_usage() {
        // Budget below the minimum: never warns.
        let small = analyze(
            &transcode_shape(),
            &transcode_config(1, 1),
            &Resources::threads(4),
        );
        assert!(!codes(&small).contains(&DiagCode::UnderSubscription));
        // Above half the budget: no warning.
        let busy = analyze(
            &transcode_shape(),
            &transcode_config(2, 6),
            &Resources::threads(24),
        );
        assert!(!codes(&busy).contains(&DiagCode::UnderSubscription));
    }

    // DV003 ------------------------------------------------------------

    #[test]
    fn dv003_sequential_extent_fires() {
        let mut config = transcode_config(1, 12);
        config.tasks[0].nested.as_mut().unwrap().tasks[0].extent = 2;
        let report = analyze(&transcode_shape(), &config, &Resources::threads(24));
        let diag = report
            .diagnostics
            .iter()
            .find(|d| d.code == DiagCode::SequentialExtent)
            .expect("sequential-extent error");
        assert_eq!(diag.path.to_string(), "0.0");
    }

    #[test]
    fn dv003_quiet_for_parallel_tasks() {
        let report = analyze(
            &transcode_shape(),
            &transcode_config(2, 8),
            &Resources::threads(24),
        );
        assert!(!codes(&report).contains(&DiagCode::SequentialExtent));
    }

    // DV004 ------------------------------------------------------------

    #[test]
    fn dv004_alt_out_of_range_fires() {
        let mut config = transcode_config(2, 8);
        config.tasks[0].nested.as_mut().unwrap().alternative = 3;
        let report = analyze(&transcode_shape(), &config, &Resources::threads(24));
        assert!(codes(&report).contains(&DiagCode::AltOutOfRange));
    }

    #[test]
    fn dv004_quiet_for_declared_alternative() {
        let report = analyze(
            &transcode_shape(),
            &transcode_config(2, 8),
            &Resources::threads(24),
        );
        assert!(!codes(&report).contains(&DiagCode::AltOutOfRange));
    }

    // DV005 ------------------------------------------------------------

    #[test]
    fn dv005_name_mismatch_fires() {
        let mut config = transcode_config(2, 8);
        config.tasks[0].name = "transmogrify".into();
        let report = analyze(&transcode_shape(), &config, &Resources::threads(24));
        let diag = report
            .diagnostics
            .iter()
            .find(|d| d.code == DiagCode::NameMismatch)
            .expect("name-mismatch error");
        assert!(diag.message.contains("transmogrify"));
        assert!(diag.suggestion.as_deref().unwrap().contains("transcode"));
    }

    #[test]
    fn dv005_quiet_when_names_agree() {
        let report = analyze(
            &transcode_shape(),
            &transcode_config(2, 8),
            &Resources::threads(24),
        );
        assert!(!codes(&report).contains(&DiagCode::NameMismatch));
    }

    // DV006 ------------------------------------------------------------

    #[test]
    fn dv006_max_extent_fires() {
        let report = analyze(
            &transcode_shape(),
            &transcode_config(1, 17),
            &Resources::threads(64),
        );
        assert!(codes(&report).contains(&DiagCode::MaxExtentExceeded));
    }

    #[test]
    fn dv006_quiet_at_the_cap() {
        let report = analyze(
            &transcode_shape(),
            &transcode_config(1, 16),
            &Resources::threads(64),
        );
        assert!(!codes(&report).contains(&DiagCode::MaxExtentExceeded));
    }

    // DV007 / DV010 ----------------------------------------------------

    #[test]
    fn dv007_and_dv010_fire_for_starved_stage() {
        let mut config = transcode_config(2, 8);
        config.tasks[0].nested.as_mut().unwrap().tasks[1].extent = 0;
        let report = analyze(&transcode_shape(), &config, &Resources::threads(24));
        let c = codes(&report);
        assert!(c.contains(&DiagCode::ZeroExtent));
        assert!(c.contains(&DiagCode::PipeStarvation));
        let starve = report
            .diagnostics
            .iter()
            .find(|d| d.code == DiagCode::PipeStarvation)
            .unwrap();
        assert_eq!(starve.path.to_string(), "0.1");
    }

    #[test]
    fn dv010_quiet_when_every_stage_has_workers() {
        let report = analyze(
            &transcode_shape(),
            &transcode_config(2, 8),
            &Resources::threads(24),
        );
        assert!(!codes(&report).contains(&DiagCode::PipeStarvation));
    }

    #[test]
    fn dv010_quiet_for_single_task_level() {
        // A root with one nested task whose extent is zero is DV007 only:
        // there is no pipeline to starve.
        let shape = ProgramShape::new(vec![ShapeNode::leaf("solo", TaskKind::Par)]);
        let config = Config::new(vec![TaskConfig::leaf("solo", 0)]);
        let report = analyze(&shape, &config, &Resources::threads(4));
        let c = codes(&report);
        assert!(c.contains(&DiagCode::ZeroExtent));
        assert!(!c.contains(&DiagCode::PipeStarvation));
    }

    // DV008 ------------------------------------------------------------

    #[test]
    fn dv008_empty_nest_fires() {
        let shape = ProgramShape::new(vec![ShapeNode {
            name: "hollow".into(),
            kind: TaskKind::Par,
            max_extent: None,
            alternatives: vec![vec![]],
        }]);
        let config = Config::new(vec![TaskConfig::nest("hollow", 2, 0, vec![])]);
        // validate() tolerates this; the analyzer must not.
        config.validate(&shape, 8).unwrap();
        let report = analyze(&shape, &config, &Resources::threads(8));
        assert!(codes(&report).contains(&DiagCode::EmptyNest));
        assert!(report.has_errors());
    }

    #[test]
    fn dv008_quiet_for_populated_nests() {
        let report = analyze(
            &transcode_shape(),
            &transcode_config(2, 8),
            &Resources::threads(24),
        );
        assert!(!codes(&report).contains(&DiagCode::EmptyNest));
    }

    // DV009 ------------------------------------------------------------

    #[test]
    fn dv009_unreachable_alternative_warns() {
        let inner = vec![ShapeNode::leaf("stage", TaskKind::Par)];
        let shape = ProgramShape::new(vec![ShapeNode {
            name: "outer".into(),
            kind: TaskKind::Par,
            max_extent: None,
            alternatives: vec![inner.clone(), inner],
        }]);
        let config = Config::new(vec![TaskConfig::nest(
            "outer",
            1,
            0,
            vec![TaskConfig::leaf("stage", 4)],
        )]);
        let report = analyze(&shape, &config, &Resources::threads(4));
        let diag = report
            .diagnostics
            .iter()
            .find(|d| d.code == DiagCode::UnreachableAlternative)
            .expect("unreachable-alternative warning");
        assert_eq!(diag.severity, Severity::Warning);
    }

    #[test]
    fn dv009_quiet_for_distinct_alternatives() {
        let shape = ProgramShape::new(vec![ShapeNode {
            name: "outer".into(),
            kind: TaskKind::Par,
            max_extent: None,
            alternatives: vec![
                vec![ShapeNode::leaf("split", TaskKind::Par)],
                vec![ShapeNode::leaf("fused", TaskKind::Par)],
            ],
        }]);
        assert!(lint_shape(&shape)
            .iter()
            .all(|d| d.code != DiagCode::UnreachableAlternative));
    }

    // DV011 ------------------------------------------------------------

    #[test]
    fn dv011_arity_mismatch_fires_and_analysis_continues() {
        let mut config = transcode_config(2, 8);
        config.tasks[0].nested.as_mut().unwrap().tasks.pop();
        // Also break a name deeper in, to prove the walk continues.
        config.tasks[0].nested.as_mut().unwrap().tasks[0].name = "reed".into();
        let report = analyze(&transcode_shape(), &config, &Resources::threads(24));
        let c = codes(&report);
        assert!(c.contains(&DiagCode::ArityMismatch));
        assert!(c.contains(&DiagCode::NameMismatch));
    }

    #[test]
    fn dv011_quiet_when_arities_agree() {
        let report = analyze(
            &transcode_shape(),
            &transcode_config(2, 8),
            &Resources::threads(24),
        );
        assert!(!codes(&report).contains(&DiagCode::ArityMismatch));
    }

    // DV012 ------------------------------------------------------------

    #[test]
    fn dv012_structure_mismatch_fires_both_ways() {
        // Nest where the shape declares a leaf.
        let mut nested_leaf = transcode_config(2, 8);
        nested_leaf.tasks[0].nested.as_mut().unwrap().tasks[1] =
            TaskConfig::nest("transform", 2, 0, vec![TaskConfig::leaf("x", 1)]);
        let report = analyze(&transcode_shape(), &nested_leaf, &Resources::threads(24));
        assert!(codes(&report).contains(&DiagCode::StructureMismatch));

        // Leaf where the shape declares a nest.
        let flat = Config::new(vec![TaskConfig::leaf("transcode", 2)]);
        let report = analyze(&transcode_shape(), &flat, &Resources::threads(24));
        assert!(codes(&report).contains(&DiagCode::StructureMismatch));
    }

    #[test]
    fn dv012_quiet_when_structure_agrees() {
        let report = analyze(
            &transcode_shape(),
            &transcode_config(2, 8),
            &Resources::threads(24),
        );
        assert!(!codes(&report).contains(&DiagCode::StructureMismatch));
    }

    // DV015 ------------------------------------------------------------

    #[test]
    fn dv015_duplicate_sibling_names_warn() {
        let shape = ProgramShape::new(vec![
            ShapeNode::leaf("stage", TaskKind::Par),
            ShapeNode::leaf("stage", TaskKind::Par),
        ]);
        let diags = lint_shape(&shape);
        let dup = diags
            .iter()
            .find(|d| d.code == DiagCode::DuplicateTaskName)
            .expect("duplicate-name warning");
        assert_eq!(dup.severity, Severity::Warning);
        assert_eq!(dup.path.to_string(), "1");
    }

    #[test]
    fn dv015_quiet_for_distinct_names() {
        assert!(lint_shape(&transcode_shape())
            .iter()
            .all(|d| d.code != DiagCode::DuplicateTaskName));
    }

    // Aggregation -------------------------------------------------------

    #[test]
    fn multiple_findings_are_all_reported() {
        let mut config = transcode_config(4, 20);
        config.tasks[0].nested.as_mut().unwrap().tasks[0].extent = 3;
        config.tasks[0].nested.as_mut().unwrap().tasks[2].name = "wrote".into();
        let report = analyze(&transcode_shape(), &config, &Resources::threads(24));
        let c = codes(&report);
        assert!(c.contains(&DiagCode::SequentialExtent));
        assert!(c.contains(&DiagCode::MaxExtentExceeded));
        assert!(c.contains(&DiagCode::NameMismatch));
        assert!(c.contains(&DiagCode::BudgetExceeded));
        assert!(report.errors().count() >= 4, "{report}");
    }
}
