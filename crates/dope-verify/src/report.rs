//! Analysis reports: ordered collections of diagnostics with rendering.

use std::fmt;

use dope_core::diag::{DiagCode, Diagnostic, Severity};

/// The result of one analysis pass: every diagnostic found, in
/// traversal order (shape lints first, then the config walk, then
/// whole-tree budget findings).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Report {
    /// All findings, warnings and errors alike.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Wraps a list of diagnostics.
    #[must_use]
    pub fn new(diagnostics: Vec<Diagnostic>) -> Self {
        Report { diagnostics }
    }

    /// `true` if no diagnostics at all were produced.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// `true` if at least one error-severity diagnostic was produced.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// Error-severity diagnostics, in report order.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Warning-severity diagnostics, in report order.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// Error-severity diagnostics whose code is **not** in `exempt`.
    ///
    /// Used by the conformance harness: uncoordinated mechanisms (SEDA)
    /// are exempt from specific codes by documented contract.
    pub fn errors_excluding<'a>(
        &'a self,
        exempt: &'a [DiagCode],
    ) -> impl Iterator<Item = &'a Diagnostic> {
        self.errors().filter(move |d| !exempt.contains(&d.code))
    }

    /// Renders the report as an aligned text table (used by the CLI).
    ///
    /// ```text
    /// SEVERITY  CODE   PATH   MESSAGE
    /// error     DV001  <root> configuration needs 40 threads ...
    /// ```
    #[must_use]
    pub fn render_table(&self) -> String {
        if self.diagnostics.is_empty() {
            return "no findings\n".to_string();
        }
        let mut rows: Vec<[String; 4]> = vec![[
            "SEVERITY".into(),
            "CODE".into(),
            "PATH".into(),
            "MESSAGE".into(),
        ]];
        for d in &self.diagnostics {
            let mut message = d.message.clone();
            if let Some(s) = &d.suggestion {
                message.push_str(" — fix: ");
                message.push_str(s);
            }
            rows.push([
                d.severity.to_string(),
                d.code.to_string(),
                d.path.to_string(),
                message,
            ]);
        }
        let mut widths = [0usize; 3];
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        for row in &rows {
            for (w, cell) in widths.iter().zip(row.iter()) {
                out.push_str(cell);
                out.extend(std::iter::repeat_n(' ', w - cell.len() + 2));
            }
            out.push_str(&row[3]);
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return f.write_str("no findings");
        }
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                f.write_str("\n")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dope_core::TaskPath;

    fn sample() -> Report {
        Report::new(vec![
            Diagnostic::new(
                DiagCode::BudgetExceeded,
                TaskPath::root(),
                "needs 40 threads, 24 available",
            ),
            Diagnostic::new(
                DiagCode::UnderSubscription,
                TaskPath::root(),
                "uses 2 of 24 threads",
            )
            .with_suggestion("raise extents"),
        ])
    }

    #[test]
    fn severity_partition() {
        let report = sample();
        assert!(report.has_errors());
        assert!(!report.is_clean());
        assert_eq!(report.errors().count(), 1);
        assert_eq!(report.warnings().count(), 1);
    }

    #[test]
    fn exemptions_filter_errors() {
        let report = sample();
        assert_eq!(
            report.errors_excluding(&[DiagCode::BudgetExceeded]).count(),
            0
        );
        assert_eq!(report.errors_excluding(&[]).count(), 1);
    }

    #[test]
    fn table_contains_all_rows_and_header() {
        let table = sample().render_table();
        assert!(table.contains("SEVERITY"), "{table}");
        assert!(table.contains("DV001"), "{table}");
        assert!(table.contains("DV002"), "{table}");
        assert!(table.contains("fix: raise extents"), "{table}");
        assert_eq!(table.lines().count(), 3);
    }

    #[test]
    fn empty_report_renders_no_findings() {
        let report = Report::default();
        assert!(report.is_clean());
        assert_eq!(report.render_table(), "no findings\n");
        assert_eq!(report.to_string(), "no findings");
    }
}
