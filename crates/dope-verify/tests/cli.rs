//! End-to-end tests of the `dope-verify` binary against the checked-in
//! example documents.

use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

fn testdata(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("testdata")
        .join(name)
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dope-verify"))
        .args(args)
        .stdin(Stdio::null())
        .output()
        .expect("spawn dope-verify")
}

#[test]
fn clean_input_exits_zero() {
    let out = run(&[testdata("transcode-ok.json").to_str().unwrap()]);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("no findings"), "{stdout}");
    assert!(stdout.contains("0 errors"), "{stdout}");
}

#[test]
fn bad_input_prints_table_and_fails() {
    let out = run(&[testdata("transcode-bad.json").to_str().unwrap()]);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    for code in ["DV001", "DV003", "DV006", "DV007", "DV010"] {
        assert!(stdout.contains(code), "missing {code} in:\n{stdout}");
    }
    assert!(stdout.contains("SEVERITY"), "{stdout}");
    assert!(stdout.contains("4 errors, 1 warning"), "{stdout}");
}

#[test]
fn missing_file_exits_two() {
    let out = run(&[testdata("does-not-exist.json").to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("failed to read"), "{stderr}");
}

#[test]
fn malformed_json_exits_two() {
    use std::io::Write;
    let mut child = Command::new(env!("CARGO_BIN_EXE_dope-verify"))
        .arg("-")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn dope-verify");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"{\"threads\": }")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("byte"), "{stderr}");
}

#[test]
fn unknown_flag_exits_two() {
    let out = run(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("usage"), "{stderr}");
}
