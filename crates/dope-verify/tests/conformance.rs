//! Conformance tests: every shipped mechanism, fed a deterministic grid
//! of synthetic monitoring snapshots, must only ever propose
//! configurations that pass the static analyzer with no errors.
//!
//! One test per mechanism so a regression names its offender directly.
//!
//! # The SEDA exemption
//!
//! SEDA is *uncoordinated by design*: each stage controller sizes its
//! own thread pool from local queue observations, with no global budget
//! (paper §7.2; the original SEDA paper has no admission budget either).
//! Its proposals may therefore exceed `Resources::threads`, which the
//! executive handles by rejecting over-budget proposals at the
//! reconfiguration gate. SEDA is accordingly exempt from
//! [`DiagCode::BudgetExceeded`] (DV001) — and from that code *only*; it
//! must still match the shape, keep extents positive, and so on. The
//! `seda_violates_only_the_budget` test pins this down.

use dope_core::diag::DiagCode;
use dope_core::{Config, Mechanism, ProgramShape, Resources, ShapeNode, TaskConfig, TaskKind};
use dope_mechanisms::{Fdp, Oracle, Proportional, Seda, Tbf, Tpc, WqLinear, WqLinearH, WqtH};
use dope_verify::{snapshot_grid, verify_mechanism};

const STEPS: usize = 48;

fn pipeline_shape() -> ProgramShape {
    ProgramShape::new(vec![ShapeNode {
        name: "pipe".into(),
        kind: TaskKind::Par,
        max_extent: Some(1),
        alternatives: vec![
            vec![
                ShapeNode::leaf("in", TaskKind::Seq),
                ShapeNode::leaf("a", TaskKind::Par),
                ShapeNode::leaf("b", TaskKind::Par),
                ShapeNode::leaf("out", TaskKind::Seq),
            ],
            vec![
                ShapeNode::leaf("in", TaskKind::Seq),
                ShapeNode::leaf("fused", TaskKind::Par),
                ShapeNode::leaf("out", TaskKind::Seq),
            ],
        ],
    }])
}

fn pipeline_initial() -> Config {
    Config::new(vec![TaskConfig::nest(
        "pipe",
        1,
        0,
        vec![
            TaskConfig::leaf("in", 1),
            TaskConfig::leaf("a", 1),
            TaskConfig::leaf("b", 1),
            TaskConfig::leaf("out", 1),
        ],
    )])
}

fn two_level_shape() -> ProgramShape {
    ProgramShape::new(vec![ShapeNode {
        name: "txn".into(),
        kind: TaskKind::Par,
        max_extent: None,
        alternatives: vec![
            vec![
                ShapeNode::leaf("read", TaskKind::Seq),
                ShapeNode::leaf("work", TaskKind::Par),
            ],
            vec![ShapeNode::leaf("whole", TaskKind::Seq)],
        ],
    }])
}

fn two_level_initial(shape: &ProgramShape, threads: u32) -> Config {
    dope_core::nest::config_for_width(
        shape,
        &dope_core::nest::find_two_level(shape).expect("two-level"),
        threads,
        1,
    )
}

/// Runs one pipeline-goal mechanism through the grid on several budgets.
fn check_pipeline(mech: &mut dyn Mechanism, exempt: &[DiagCode]) {
    let shape = pipeline_shape();
    let snaps = snapshot_grid(&shape, STEPS);
    for threads in [4, 9, 24, 32] {
        let res = Resources::threads(threads).with_power_budget(630.0);
        if let Err(violation) =
            verify_mechanism(mech, &shape, pipeline_initial(), &res, &snaps, exempt)
        {
            panic!("budget {threads}: {violation}");
        }
    }
}

/// Runs one queue-goal mechanism through the grid on several budgets.
fn check_two_level(mech: &mut dyn Mechanism, exempt: &[DiagCode]) {
    let shape = two_level_shape();
    let snaps = snapshot_grid(&shape, STEPS);
    for threads in [2, 9, 24, 32] {
        let res = Resources::threads(threads).with_power_budget(630.0);
        let initial = two_level_initial(&shape, threads);
        if let Err(violation) = verify_mechanism(mech, &shape, initial, &res, &snaps, exempt) {
            panic!("budget {threads}: {violation}");
        }
    }
}

#[test]
fn fdp_is_conformant() {
    check_pipeline(&mut Fdp::default(), &[]);
}

#[test]
fn tbf_is_conformant() {
    check_pipeline(&mut Tbf::new(), &[]);
    check_pipeline(&mut Tbf::without_fusion(), &[]);
}

#[test]
fn tpc_is_conformant() {
    check_pipeline(&mut Tpc::default(), &[]);
}

#[test]
fn proportional_is_conformant() {
    check_pipeline(&mut Proportional::new(), &[]);
}

#[test]
fn seda_is_conformant_modulo_budget() {
    check_pipeline(&mut Seda::default(), &[DiagCode::BudgetExceeded]);
}

/// Pins the SEDA exemption to exactly DV001: driven hard enough, SEDA
/// does exceed the budget (proving the exemption is load-bearing), but
/// it never produces any *other* error.
#[test]
fn seda_violates_only_the_budget() {
    let shape = pipeline_shape();
    let snaps = snapshot_grid(&shape, STEPS);
    let res = Resources::threads(4);
    let result = verify_mechanism(
        &mut Seda::default(),
        &shape,
        pipeline_initial(),
        &res,
        &snaps,
        &[],
    );
    let violation = result.expect_err("a 4-thread budget must be exceeded under heavy load");
    assert!(
        violation
            .diagnostics
            .iter()
            .all(|d| d.code == DiagCode::BudgetExceeded),
        "{violation}"
    );
}

#[test]
fn oracle_is_conformant() {
    check_two_level(&mut Oracle::from_table(vec![(2.0, 8), (8.0, 2)], 1), &[]);
}

#[test]
fn wq_linear_is_conformant() {
    check_two_level(&mut WqLinear::new(1, 8, 8.0), &[]);
    check_two_level(&mut WqLinear::default(), &[]);
}

#[test]
fn wq_linear_h_is_conformant() {
    check_two_level(&mut WqLinearH::new(1, 8, 8.0, 3), &[]);
    check_two_level(&mut WqLinearH::default(), &[]);
}

#[test]
fn wqt_h_is_conformant() {
    check_two_level(&mut WqtH::new(4.0, 8, 2, 2), &[]);
    check_two_level(&mut WqtH::default(), &[]);
}
