//! Ablations of the design choices DESIGN.md calls out.
//!
//! Four sweeps, each isolating one knob of a mechanism:
//!
//! 1. **WQT-H hysteresis lengths** — the paper: "The hysteresis allows
//!    the system to infer a load pattern and avoid toggling states
//!    frequently", with `N_off >> N_on` as the conservative extreme.
//! 2. **WQ-Linear `Qmax`** — derived from the acceptable response-time
//!    degradation (Equation 3); too small collapses to throughput mode
//!    early, too large holds latency mode into saturation.
//! 3. **TBF imbalance threshold** — when fusion triggers (§7.2's 0.5).
//! 4. **TPC meter rate** — the paper notes the PDU's 13 samples/min
//!    "limited the speed with which the controller responds".

use dope_core::{Mechanism, Resources};
use dope_mechanisms::{Tbf, Tpc, WqLinear, WqLinearH, WqtH};
use dope_platform::PowerModel;
use dope_sim::pipeline::{run_pipeline, PipelineParams, PowerSim, Source};
use dope_sim::system::{run_system, SystemParams};
use dope_workload::ArrivalSchedule;

/// One WQT-H hysteresis point.
#[derive(Debug, Clone, Copy)]
pub struct HysteresisPoint {
    /// PAR -> SEQ hysteresis length (tasks).
    pub n_on: u64,
    /// SEQ -> PAR hysteresis length (tasks).
    pub n_off: u64,
    /// Mean response time at the probed load.
    pub mean_response: f64,
    /// Applied reconfigurations over the run.
    pub reconfigurations: u64,
}

/// Sweeps WQT-H hysteresis lengths on x264 at a mid load factor.
#[must_use]
pub fn wqt_h_hysteresis(load: f64, requests: usize) -> Vec<HysteresisPoint> {
    let model = dope_apps::transcode::sim_model();
    let max_thr = model.max_throughput(24, 1);
    let schedule = ArrivalSchedule::for_load_factor(load, max_thr, requests, 99);
    let res = Resources::threads(24);
    [(1u64, 1u64), (4, 4), (16, 16), (2, 64)]
        .into_iter()
        .map(|(n_on, n_off)| {
            let mut mech = WqtH::new(4.0, 8, n_on, n_off);
            let out = run_system(&model, &schedule, &mut mech, res, &SystemParams::default());
            HysteresisPoint {
                n_on,
                n_off,
                mean_response: out.mean_response(),
                reconfigurations: out.config_changes,
            }
        })
        .collect()
}

/// One WQ-Linear `Qmax` point.
#[derive(Debug, Clone, Copy)]
pub struct QmaxPoint {
    /// The `Qmax` setting.
    pub q_max: f64,
    /// Mean response at light load (0.3).
    pub light: f64,
    /// Mean response at heavy load (1.0).
    pub heavy: f64,
}

/// Sweeps WQ-Linear's `Qmax` on x264.
#[must_use]
pub fn wq_linear_qmax(requests: usize) -> Vec<QmaxPoint> {
    let model = dope_apps::transcode::sim_model();
    let max_thr = model.max_throughput(24, 1);
    let res = Resources::threads(24);
    [4.0, 8.0, 16.0, 32.0, 64.0]
        .into_iter()
        .map(|q_max| {
            let respond = |load: f64| {
                let schedule = ArrivalSchedule::for_load_factor(load, max_thr, requests, 31);
                let mut mech = WqLinear::new(1, 8, q_max);
                run_system(&model, &schedule, &mut mech, res, &SystemParams::default())
                    .mean_response()
            };
            QmaxPoint {
                q_max,
                light: respond(0.3),
                heavy: respond(1.0),
            }
        })
        .collect()
}

/// One TBF-threshold point.
#[derive(Debug, Clone, Copy)]
pub struct FusionPoint {
    /// Imbalance threshold above which TBF fuses.
    pub threshold: f64,
    /// Stable throughput on ferret (queries/s).
    pub throughput: f64,
    /// Whether the final configuration uses the fused descriptor.
    pub fused: bool,
}

/// Sweeps TBF's fusion threshold on ferret.
#[must_use]
pub fn tbf_threshold(horizon: f64) -> Vec<FusionPoint> {
    let model = dope_apps::ferret::sim_model();
    [0.2, 0.5, 0.8, 0.95]
        .into_iter()
        .map(|threshold| {
            let mut mech = Tbf::new().with_imbalance_threshold(threshold);
            let out = run_pipeline(
                &model,
                &Source::Saturated,
                &mut mech,
                Resources::threads(24),
                &PipelineParams {
                    horizon_secs: horizon,
                    ..PipelineParams::default()
                },
            );
            let fused = out.final_config.tasks[0]
                .nested
                .as_ref()
                .is_some_and(|n| n.alternative == 1);
            FusionPoint {
                threshold,
                throughput: out.stable_throughput(horizon * 0.5),
                fused,
            }
        })
        .collect()
}

/// One TPC meter-rate point.
#[derive(Debug, Clone, Copy)]
pub struct MeterPoint {
    /// Meter sampling interval in seconds.
    pub interval_secs: f64,
    /// Stable throughput under the cap.
    pub throughput: f64,
    /// Stable mean power.
    pub stable_power: f64,
    /// Simulated time until power first reached 95% of the target.
    pub ramp_secs: f64,
}

/// Sweeps TPC's power-meter rate on ferret at a 90%-of-peak target.
#[must_use]
pub fn tpc_meter_rate(horizon: f64) -> Vec<MeterPoint> {
    let model = dope_apps::ferret::sim_model();
    let power_model = PowerModel::default();
    let target = 0.9 * power_model.peak_power();
    [1.0, 60.0 / 13.0, 15.0, 45.0]
        .into_iter()
        .map(|interval| {
            let mut mech = Tpc::default();
            let out = run_pipeline(
                &model,
                &Source::Saturated,
                &mut mech,
                Resources::threads(24).with_power_budget(target),
                &PipelineParams {
                    horizon_secs: horizon,
                    power: Some(PowerSim {
                        model: power_model,
                        sample_interval_secs: interval,
                        seed: 17,
                    }),
                    ..PipelineParams::default()
                },
            );
            let ramp_secs = out
                .power_series
                .points()
                .iter()
                .find(|&&(_, p)| p >= 0.95 * target)
                .map_or(horizon, |&(t, _)| t);
            MeterPoint {
                interval_secs: interval,
                throughput: out.stable_throughput(horizon * 0.5),
                stable_power: out.power_series.mean_after(horizon * 0.5).unwrap_or(0.0),
                ramp_secs,
            }
        })
        .collect()
}

/// Compares plain WQ-Linear with the hysteretic variant under a noisy
/// near-saturation Poisson load (where the queue flaps around the
/// Equation 2 break points); returns `(plain, hysteretic)` outcomes as
/// `(mean_response, reconfigurations)`.
#[must_use]
pub fn wq_linear_hysteresis(requests: usize) -> ((f64, u64), (f64, u64)) {
    let model = dope_apps::transcode::sim_model();
    let max_thr = model.max_throughput(24, 1);
    let res = Resources::threads(24);
    let run_with = |mech: &mut dyn Mechanism| {
        let schedule = ArrivalSchedule::poisson(0.9 * max_thr, requests, 5);
        let out = run_system(&model, &schedule, mech, res, &SystemParams::default());
        (out.mean_response(), out.config_changes)
    };
    let plain = run_with(&mut WqLinear::new(1, 8, 16.0));
    let hysteretic = run_with(&mut WqLinearH::new(1, 8, 16.0, 4));
    (plain, hysteretic)
}

/// Runs and prints all ablations.
pub fn report(quick: bool) {
    let requests = crate::request_count(quick);
    let horizon = if quick { 90.0 } else { 240.0 };

    println!("== Ablation: WQT-H hysteresis lengths (x264, load 0.7) ==");
    println!(
        "{}",
        crate::row(&[
            "N_on".into(),
            "N_off".into(),
            "resp (s)".into(),
            "reconfigs".into()
        ])
    );
    for p in wqt_h_hysteresis(0.7, requests) {
        println!(
            "{}",
            crate::row(&[
                p.n_on.to_string(),
                p.n_off.to_string(),
                crate::cell(p.mean_response),
                p.reconfigurations.to_string(),
            ])
        );
    }

    println!("\n== Ablation: WQ-Linear Qmax (x264) ==");
    println!(
        "{}",
        crate::row(&["Qmax".into(), "resp@0.3".into(), "resp@1.0".into()])
    );
    for p in wq_linear_qmax(requests) {
        println!(
            "{}",
            crate::row(&[
                format!("{:.0}", p.q_max),
                crate::cell(p.light),
                crate::cell(p.heavy),
            ])
        );
    }

    println!("\n== Ablation: TBF fusion threshold (ferret) ==");
    println!(
        "{}",
        crate::row(&["threshold".into(), "thr (q/s)".into(), "fused".into()])
    );
    for p in tbf_threshold(horizon) {
        println!(
            "{}",
            crate::row(&[
                format!("{:.2}", p.threshold),
                crate::cell(p.throughput),
                p.fused.to_string(),
            ])
        );
    }

    println!("\n== Ablation: TPC power-meter interval (ferret, 630 W) ==");
    println!(
        "{}",
        crate::row(&[
            "interval(s)".into(),
            "thr (q/s)".into(),
            "power (W)".into(),
            "ramp (s)".into(),
        ])
    );
    for p in tpc_meter_rate(horizon.max(180.0)) {
        println!(
            "{}",
            crate::row(&[
                format!("{:.1}", p.interval_secs),
                crate::cell(p.throughput),
                crate::cell(p.stable_power),
                format!("{:.0}", p.ramp_secs),
            ])
        );
    }

    let ((plain_r, plain_c), (hyst_r, hyst_c)) = wq_linear_hysteresis(requests);
    println!("\n== Ablation: WQ-Linear vs WQ-Linear-H (x264, load 0.9) ==");
    println!(
        "plain:      resp {plain_r:.2} s, {plain_c} reconfigurations\nhysteretic: resp {hyst_r:.2} s, {hyst_c} reconfigurations"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservative_hysteresis_reconfigures_less() {
        let points = wqt_h_hysteresis(0.7, 300);
        let eager = &points[0]; // (1, 1)
        let conservative = &points[3]; // (2, 64)
        assert!(conservative.reconfigurations <= eager.reconfigurations);
    }

    #[test]
    fn small_qmax_hurts_light_load_large_qmax_hurts_heavy() {
        let points = wq_linear_qmax(300);
        let small = points.first().unwrap();
        let large = points.last().unwrap();
        // A tiny Qmax drops out of latency mode on the slightest queue:
        // worse light-load response than a large Qmax.
        assert!(small.light >= large.light * 0.99);
        // A huge Qmax holds wide configurations into saturation: worse
        // heavy-load response than a small Qmax.
        assert!(large.heavy >= small.heavy * 0.99);
    }

    #[test]
    fn lower_thresholds_fuse_ferret() {
        let points = tbf_threshold(60.0);
        assert!(points[0].fused, "threshold 0.2 must fuse");
        assert!(!points[3].fused, "threshold 0.95 must not fuse");
        // Fusion is the better configuration for ferret.
        assert!(points[0].throughput > points[3].throughput);
    }

    #[test]
    fn slower_meters_ramp_slower() {
        let points = tpc_meter_rate(180.0);
        let fast = &points[0];
        let slow = &points[3];
        assert!(fast.ramp_secs <= slow.ramp_secs);
    }

    #[test]
    fn hysteretic_wq_linear_reconfigures_less() {
        let ((_, plain_c), (_, hyst_c)) = wq_linear_hysteresis(300);
        assert!(hyst_c <= plain_c);
    }
}
