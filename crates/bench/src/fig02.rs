//! Figure 2: the video-transcoding motivation experiment.
//!
//! (a) per-video execution time and (b) system throughput versus load for
//! the two static configurations `<(24, DOALL), (1, SEQ)>` and
//! `<(3, DOALL), (8, PIPE)>`; (c) end-user response time for both statics
//! plus an oracle that picks the ideal inner DoP at every load factor.

use dope_core::{Resources, StaticMechanism};
use dope_sim::system::{run_system, SystemOutcome, SystemParams, TwoLevelModel};
use dope_workload::ArrivalSchedule;

/// One load point of the Figure 2 sweep.
#[derive(Debug, Clone)]
pub struct LoadPoint {
    /// Load factor (arrival rate / max sequential throughput).
    pub load: f64,
    /// Sequential-transaction outcome (`<24, (1, SEQ)>`).
    pub seq: SystemOutcome,
    /// Parallel-transaction outcome (`<3, (8, PIPE)>`).
    pub par: SystemOutcome,
    /// Oracle outcome and its chosen width.
    pub oracle: SystemOutcome,
    /// The width the oracle chose at this load.
    pub oracle_width: u32,
}

/// Runs the Figure 2 sweep.
#[must_use]
pub fn run(loads: &[f64], requests: usize) -> Vec<LoadPoint> {
    let model = dope_apps::transcode::sim_model();
    let max_thr = model.max_throughput(24, 1);
    let params = SystemParams::default();
    let res = Resources::threads(24);
    let widths: Vec<u32> = vec![1, 3, 4, 5, 6, 8];

    loads
        .iter()
        .map(|&load| {
            let schedule = ArrivalSchedule::for_load_factor(load, max_thr, requests, 42);
            let run_width = |width: u32| {
                let mut mech = StaticMechanism::new(model.config_for_width(24, width));
                run_system(&model, &schedule, &mut mech, res, &params)
            };
            let seq = run_width(1);
            let par = run_width(8);
            // Oracle: the width with the lowest mean response at this load.
            let (oracle_width, oracle) = widths
                .iter()
                .map(|&w| (w, run_width(w)))
                .min_by(|a, b| {
                    a.1.mean_response()
                        .partial_cmp(&b.1.mean_response())
                        .expect("finite response times")
                })
                .expect("non-empty width set");
            LoadPoint {
                load,
                seq,
                par,
                oracle,
                oracle_width,
            }
        })
        .collect()
}

/// Runs and prints the three Figure 2 panels.
pub fn report(quick: bool) -> Vec<LoadPoint> {
    let points = run(&crate::load_factors(quick), crate::request_count(quick));
    let model: TwoLevelModel = dope_apps::transcode::sim_model();
    let _ = &model;

    println!("== Figure 2(a): x264 per-video execution time (s) vs load ==");
    println!(
        "{}",
        crate::row(&["load".into(), "<24,(1,SEQ)>".into(), "<3,(8,PIPE)>".into()])
    );
    for p in &points {
        println!(
            "{}",
            crate::row(&[
                format!("{:.1}", p.load),
                crate::cell(p.seq.mean_exec_secs),
                crate::cell(p.par.mean_exec_secs),
            ])
        );
    }

    println!("\n== Figure 2(b): x264 throughput (videos/s) vs load ==");
    println!(
        "{}",
        crate::row(&["load".into(), "<24,(1,SEQ)>".into(), "<3,(8,PIPE)>".into()])
    );
    for p in &points {
        println!(
            "{}",
            crate::row(&[
                format!("{:.1}", p.load),
                crate::cell(p.seq.system_throughput()),
                crate::cell(p.par.system_throughput()),
            ])
        );
    }

    println!("\n== Figure 2(c): x264 mean response time (s) vs load ==");
    println!(
        "{}",
        crate::row(&[
            "load".into(),
            "<24,(1,SEQ)>".into(),
            "<3,(8,PIPE)>".into(),
            "oracle".into(),
            "ideal DoP".into(),
        ])
    );
    for p in &points {
        println!(
            "{}",
            crate::row(&[
                format!("{:.1}", p.load),
                crate::cell(p.seq.mean_response()),
                crate::cell(p.par.mean_response()),
                crate::cell(p.oracle.mean_response()),
                format!("{}", p.oracle_width),
            ])
        );
    }
    points
}

/// Sanity checks the paper's qualitative claims on a sweep result.
#[must_use]
pub fn shape_holds(points: &[LoadPoint]) -> bool {
    let light = points.first().expect("at least one load point");
    let heavy = points.last().expect("at least one load point");
    // Fig 2(a): intra-video parallelism shortens execution dramatically.
    let exec_gain = light.seq.mean_exec_secs / light.par.mean_exec_secs;
    // Fig 2(b)/(c): at saturation the sequential configuration wins.
    let heavy_crossover = heavy.seq.mean_response() < heavy.par.mean_response();
    // Fig 2(c): the oracle is never worse than either static.
    let oracle_dominates = points.iter().all(|p| {
        p.oracle.mean_response() <= p.seq.mean_response() + 1e-9
            && p.oracle.mean_response() <= p.par.mean_response() + 1e-9
    });
    exec_gain > 4.0 && heavy_crossover && oracle_dominates
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_shape_holds_on_quick_sweep() {
        let points = run(&[0.2, 1.0], 500);
        assert!(shape_holds(&points));
        // Oracle picks a wide DoP at light load and narrows it as load
        // grows (Figure 2c's "ideal parallelism configuration for each
        // load factor" annotation).
        assert!(points[0].oracle_width >= 6);
        assert!(points[1].oracle_width <= 4);
        assert!(points[1].oracle_width < points[0].oracle_width);
    }
}
