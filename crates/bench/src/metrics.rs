//! `--metrics[=PATH]` support for the figure binaries.
//!
//! The figure harnesses already aggregate their sweeps into tables; this
//! module additionally renders them as a final [`MetricsRegistry`] dump
//! in Prometheus text format — the same exposition the live endpoint
//! serves — so dashboards built against the runtime's metric names can
//! be smoke-tested against simulated data:
//!
//! * [`fig11_registry`] — one `dope_response_seconds{app,mechanism}`
//!   histogram per Figure 11 cell group (the bounded response
//!   accumulators merged across the load sweep);
//! * [`fig15_registry`] — one `dope_pipeline_throughput{app,mechanism}`
//!   gauge per Figure 15 cell.
//!
//! Run `cargo run -p dope-bench --release --bin fig11 -- --metrics` (or
//! `--metrics=PATH`) to write the dump next to the figure output.

use dope_metrics::{names, MetricsRegistry};

/// Parses `--metrics` / `--metrics=PATH` out of the argument list.
#[must_use]
pub fn metrics_path(args: &[String], default_path: &str) -> Option<String> {
    args.iter().find_map(|arg| {
        if arg == "--metrics" {
            Some(default_path.to_string())
        } else {
            arg.strip_prefix("--metrics=").map(ToString::to_string)
        }
    })
}

/// Builds the Figure 11 registry: per-(app, mechanism) response-time
/// histograms merged across the load sweep.
#[must_use]
pub fn fig11_registry(sweeps: &[crate::fig11::AppSweep]) -> MetricsRegistry {
    let registry = MetricsRegistry::new();
    for sweep in sweeps {
        for (mechanism, response) in &sweep.responses {
            let hist = registry.histogram_with_labels(
                names::RESPONSE_SECONDS,
                "End-to-end response time (seconds)",
                &[("app", sweep.name), ("mechanism", mechanism)],
            );
            hist.merge_local(response.histogram());
        }
    }
    registry
}

/// Builds the Figure 15 registry: per-(app, mechanism) stable-throughput
/// gauges.
#[must_use]
pub fn fig15_registry(results: &[crate::fig15::AppResults]) -> MetricsRegistry {
    let registry = MetricsRegistry::new();
    for app in results {
        for (mechanism, throughput) in &app.rows {
            registry
                .gauge_with_labels(
                    names::PIPELINE_THROUGHPUT,
                    "Pipeline sink throughput (items per second)",
                    &[("app", app.name), ("mechanism", mechanism)],
                )
                .set(*throughput);
        }
    }
    registry
}

/// Writes a rendered registry dump to `path`, reporting on stderr.
pub fn write_dump(registry: &MetricsRegistry, path: &str) {
    let text = registry.render();
    match std::fs::write(path, &text) {
        Ok(()) => eprintln!(
            "metrics: wrote {} series to {path} (Prometheus text format)",
            text.lines().filter(|l| !l.starts_with('#')).count()
        ),
        Err(err) => eprintln!("metrics: cannot write {path}: {err}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_path_parses_flags() {
        let args = vec!["--quick".to_string(), "--metrics".to_string()];
        assert_eq!(metrics_path(&args, "d.prom"), Some("d.prom".to_string()));
        let args = vec!["--metrics=x.prom".to_string()];
        assert_eq!(metrics_path(&args, "d.prom"), Some("x.prom".to_string()));
        assert_eq!(metrics_path(&[], "d.prom"), None);
    }

    #[test]
    fn fig11_registry_exports_response_histograms() {
        let sweeps = crate::fig11::run(&[0.5], 100);
        let registry = fig11_registry(&sweeps);
        let text = registry.render();
        assert!(
            text.contains("dope_response_seconds_bucket{app=\"x264 (video transcoding)\""),
            "{text}"
        );
        assert!(
            text.contains("mechanism=\"WQ-Linear\"") && text.contains("_count"),
            "{text}"
        );
    }

    #[test]
    fn fig15_registry_exports_throughput_gauges() {
        let results = vec![crate::fig15::AppResults {
            name: "ferret",
            rows: vec![("DoPE-TBF", 42.5)],
        }];
        let text = fig15_registry(&results).render();
        assert!(
            text.contains("dope_pipeline_throughput{app=\"ferret\",mechanism=\"DoPE-TBF\"} 42.5"),
            "{text}"
        );
    }
}
