//! Figure 14: ferret under the Throughput Power Controller.
//!
//! "For a peak power target specified by the administrator, DoPE first
//! ramps up the DoP extent until the power budget is fully used. DoPE
//! then explores different parallelism configurations and stabilizes on
//! the one with the best throughput without exceeding the power budget."
//! The target is 90% of peak total power (= 60% of the dynamic CPU
//! range).

use dope_core::Resources;
use dope_mechanisms::Tpc;
use dope_platform::PowerModel;
use dope_sim::pipeline::{run_pipeline, PipelineOutcome, PipelineParams, PowerSim, Source};

/// The administrator's power target: 90% of peak.
#[must_use]
pub fn power_target() -> f64 {
    0.9 * PowerModel::default().peak_power()
}

/// Runs ferret under TPC with the AP7892-rate power meter.
#[must_use]
pub fn run(quick: bool) -> PipelineOutcome {
    let model = dope_apps::ferret::sim_model();
    let mut mech = Tpc::default();
    run_pipeline(
        &model,
        &Source::Saturated,
        &mut mech,
        Resources::threads(24).with_power_budget(power_target()),
        &PipelineParams {
            control_period_secs: 1.0,
            horizon_secs: if quick { 240.0 } else { 600.0 },
            power: Some(PowerSim::default()),
            ..PipelineParams::default()
        },
    )
}

/// Runs and prints the power/throughput time series.
pub fn report(quick: bool) -> PipelineOutcome {
    let out = run(quick);
    let target = power_target();
    println!("== Figure 14: ferret power & throughput under TPC (target {target:.0} W) ==");
    println!(
        "{}",
        crate::row(&["t (s)".into(), "power (W)".into(), "thr (q/s)".into()])
    );
    let thr: std::collections::BTreeMap<u64, f64> = out
        .throughput_series
        .points()
        .iter()
        .map(|&(t, v)| (t as u64, v))
        .collect();
    for &(t, p) in out.power_series.points() {
        let ti = t as u64;
        if ti.is_multiple_of(10) {
            println!(
                "{}",
                crate::row(&[
                    format!("{ti}"),
                    crate::cell(p),
                    crate::cell(thr.get(&ti).copied().unwrap_or(0.0)),
                ])
            );
        }
    }
    println!(
        "mean power: {:.1} W   stable throughput: {:.1} queries/s",
        out.mean_power_watts.unwrap_or(0.0),
        out.stable_throughput(out.horizon_secs * 0.5)
    );
    out
}

/// Ramp then stabilize under the budget: power approaches the target from
/// below and the stable region stays at or under it (within meter noise).
#[must_use]
pub fn shape_holds(out: &PipelineOutcome) -> bool {
    let target = power_target();
    let first = out
        .power_series
        .points()
        .first()
        .map_or(f64::MAX, |&(_, p)| p);
    let stable: Vec<f64> = out
        .power_series
        .points()
        .iter()
        .filter(|&&(t, _)| t > out.horizon_secs * 0.5)
        .map(|&(_, p)| p)
        .collect();
    if stable.is_empty() {
        return false;
    }
    let stable_mean = stable.iter().sum::<f64>() / stable.len() as f64;
    // Started well below the target, ramped up close to it, stayed under
    // (10 W of slack for meter noise).
    first < target - 30.0 && stable_mean > target - 60.0 && stable_mean < target + 10.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tpc_ramps_to_target_and_holds() {
        let out = run(true);
        assert!(
            shape_holds(&out),
            "power series: {:?}",
            out.power_series.points().len()
        );
    }

    #[test]
    fn throughput_is_positive_under_cap() {
        let out = run(true);
        assert!(out.stable_throughput(out.horizon_secs * 0.5) > 0.0);
    }
}
