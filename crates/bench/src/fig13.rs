//! Figure 13: ferret throughput over time under TBF.
//!
//! "DoPE searches the parallelism configuration space before stabilizing
//! on the one with the maximum throughput under the constraint of 24
//! hardware threads."

use dope_core::Resources;
use dope_mechanisms::Tbf;
use dope_sim::pipeline::{run_pipeline, PipelineOutcome, PipelineParams, Source};

/// Runs ferret under TBF with a saturated (batch) workload.
#[must_use]
pub fn run(quick: bool) -> PipelineOutcome {
    let model = dope_apps::ferret::sim_model();
    let mut mech = Tbf::new();
    run_pipeline(
        &model,
        &Source::Saturated,
        &mut mech,
        Resources::threads(24),
        &PipelineParams {
            control_period_secs: 1.0,
            horizon_secs: if quick { 60.0 } else { 180.0 },
            ..PipelineParams::default()
        },
    )
}

/// Runs and prints the throughput time series.
pub fn report(quick: bool) -> PipelineOutcome {
    let out = run(quick);
    println!("== Figure 13: ferret throughput (queries/s) over time, DoPE-TBF ==");
    println!("{}", crate::row(&["t (s)".into(), "throughput".into()]));
    for &(t, v) in out.throughput_series.points() {
        if (t.round() - t).abs() < 1e-9 && (t as u64).is_multiple_of(5) {
            println!("{}", crate::row(&[format!("{t:.0}"), crate::cell(v)]));
        }
    }
    println!(
        "reconfigurations: {}   stable throughput: {:.1} queries/s",
        out.config_history.len(),
        out.stable_throughput(out.horizon_secs * 0.5)
    );
    out
}

/// Search-then-stabilize: the stable region outperforms the first seconds
/// and the configuration settles.
#[must_use]
pub fn shape_holds(out: &PipelineOutcome) -> bool {
    let early = out
        .throughput_series
        .points()
        .iter()
        .take(5)
        .map(|&(_, v)| v)
        .sum::<f64>()
        / 5.0;
    let stable = out.stable_throughput(out.horizon_secs * 0.5);
    let late_changes = out
        .config_history
        .iter()
        .filter(|&&(t, _)| t > out.horizon_secs * 0.5)
        .count();
    stable > early && late_changes <= 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tbf_searches_then_stabilizes() {
        let out = run(true);
        assert!(shape_holds(&out), "history: {:?}", out.config_history.len());
        assert!(out.completed > 0);
    }
}
