//! Figure 11: response time versus load under Static, WQT-H, and
//! WQ-Linear for the four two-level applications.

use dope_core::{Mechanism, Resources, StaticMechanism};
use dope_mechanisms::{WqLinear, WqtH};
use dope_sim::system::{run_system, SystemParams, TwoLevelModel};
use dope_workload::{ArrivalSchedule, ResponseStats};

/// Mechanism column labels, in `rows` order.
pub const MECHANISMS: [&str; 4] = ["static-seq", "static-par", "WQT-H", "WQ-Linear"];

/// Mechanism parameters for one application.
#[derive(Debug, Clone, Copy)]
pub struct AppTuning {
    /// The paper's `Mmax` for the application.
    pub m_max: u32,
    /// WQ-Linear's `Mmin`.
    pub m_min: u32,
    /// WQ-Linear's `Qmax` (occupancy at which the extent bottoms out).
    pub q_max: f64,
    /// WQT-H's queue threshold `T`.
    pub threshold: f64,
}

/// One application of the Figure 11 sweep.
#[derive(Debug)]
pub struct AppSweep {
    /// Application name.
    pub name: &'static str,
    /// `(load, static_seq, static_par, wqt_h, wq_linear)` mean response
    /// times in seconds.
    pub rows: Vec<(f64, f64, f64, f64, f64)>,
    /// Same shape as `rows` but reporting the p99 response time
    /// (histogram-backed, see `dope_workload::ResponseStats`).
    pub p99_rows: Vec<(f64, f64, f64, f64, f64)>,
    /// Per-mechanism response statistics merged across the load sweep,
    /// in [`MECHANISMS`] order — the source of the `--metrics` registry
    /// dump.
    pub responses: Vec<(&'static str, ResponseStats)>,
}

/// The four applications with their tunings.
#[must_use]
pub fn apps() -> Vec<(&'static str, TwoLevelModel, AppTuning)> {
    vec![
        (
            "x264 (video transcoding)",
            dope_apps::transcode::sim_model(),
            AppTuning {
                m_max: 8,
                m_min: 1,
                q_max: 12.0,
                threshold: 4.0,
            },
        ),
        (
            "swaptions (option pricing)",
            dope_apps::swaptions::sim_model(),
            AppTuning {
                m_max: 8,
                m_min: 1,
                q_max: 12.0,
                threshold: 4.0,
            },
        ),
        (
            "bzip (data compression)",
            dope_apps::bzip::sim_model(),
            AppTuning {
                // DoP_min = 4: WQ-Linear's intermediate widths 2-3 are
                // unhelpful, the paper's §8.2.1 caveat.
                m_max: 10,
                m_min: 1,
                q_max: 12.0,
                threshold: 4.0,
            },
        ),
        (
            "gimp (image editing)",
            dope_apps::gimp::sim_model(),
            AppTuning {
                m_max: 8,
                m_min: 1,
                q_max: 12.0,
                threshold: 4.0,
            },
        ),
    ]
}

/// Runs the sweep for every application.
#[must_use]
pub fn run(loads: &[f64], requests: usize) -> Vec<AppSweep> {
    let params = SystemParams::default();
    let res = Resources::threads(24);
    apps()
        .into_iter()
        .map(|(name, model, tuning)| {
            let max_thr = model.max_throughput(24, 1);
            let mut merged: Vec<(&'static str, ResponseStats)> = MECHANISMS
                .iter()
                .map(|&mech| (mech, ResponseStats::new()))
                .collect();
            let mut rows = Vec::with_capacity(loads.len());
            let mut p99_rows = Vec::with_capacity(loads.len());
            for &load in loads {
                let schedule = ArrivalSchedule::for_load_factor(load, max_thr, requests, 7);
                let mut run_mech = |slot: usize, mech: &mut dyn Mechanism| {
                    let out = run_system(&model, &schedule, mech, res, &params);
                    merged[slot].1.merge(&out.response);
                    let p99 = out.response.percentile(0.99).unwrap_or(0.0);
                    (out.mean_response(), p99)
                };
                let static_seq =
                    run_mech(0, &mut StaticMechanism::new(model.config_for_width(24, 1)));
                let static_par = run_mech(
                    1,
                    &mut StaticMechanism::new(model.config_for_width(24, tuning.m_max)),
                );
                let wqt_h = run_mech(2, &mut WqtH::new(tuning.threshold, tuning.m_max, 4, 4));
                let wq_linear = run_mech(
                    3,
                    &mut WqLinear::new(tuning.m_min, tuning.m_max, tuning.q_max),
                );
                rows.push((load, static_seq.0, static_par.0, wqt_h.0, wq_linear.0));
                p99_rows.push((load, static_seq.1, static_par.1, wqt_h.1, wq_linear.1));
            }
            AppSweep {
                name,
                rows,
                p99_rows,
                responses: merged,
            }
        })
        .collect()
}

fn print_panel(title: &str, rows: &[(f64, f64, f64, f64, f64)]) {
    println!("{title}");
    let mut header = vec!["load".to_string()];
    header.extend(MECHANISMS.iter().map(|m| (*m).to_string()));
    println!("{}", crate::row(&header));
    for &(load, s, p, h, l) in rows {
        println!(
            "{}",
            crate::row(&[
                format!("{load:.1}"),
                crate::cell(s),
                crate::cell(p),
                crate::cell(h),
                crate::cell(l),
            ])
        );
    }
    println!();
}

/// Runs and prints all four panels: the paper's mean response times plus
/// a histogram-backed p99 panel per application.
pub fn report(quick: bool) -> Vec<AppSweep> {
    let sweeps = run(&crate::load_factors(quick), crate::request_count(quick));
    for sweep in &sweeps {
        print_panel(
            &format!("== Figure 11: {} — mean response time (s) ==", sweep.name),
            &sweep.rows,
        );
        print_panel(
            &format!(
                "== Figure 11: {} — p99 response time (s, histogram-backed) ==",
                sweep.name
            ),
            &sweep.p99_rows,
        );
    }
    sweeps
}

/// Checks the paper's qualitative claims.
#[must_use]
pub fn shape_holds(sweep: &AppSweep) -> bool {
    let light = sweep.rows.first().expect("rows");
    let heavy = sweep.rows.last().expect("rows");
    // Light load: adaptive mechanisms track the parallel static (fast).
    let light_ok = light.3 <= light.1 * 1.05 && light.4 <= light.1 * 1.05;
    // Heavy load: adaptive mechanisms avoid the parallel static's collapse.
    let heavy_ok = heavy.3 <= heavy.2 * 1.05 && heavy.4 <= heavy.2 * 1.05;
    light_ok && heavy_ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_mechanisms_dominate_at_extremes() {
        let sweeps = run(&[0.2, 1.0], 500);
        for sweep in &sweeps {
            assert!(shape_holds(sweep), "{}: {:?}", sweep.name, sweep.rows);
        }
    }

    #[test]
    fn p99_panel_and_merged_responses_are_populated() {
        let loads = [0.5, 1.0];
        let requests = 200;
        let sweeps = run(&loads, requests);
        for sweep in &sweeps {
            assert_eq!(sweep.p99_rows.len(), sweep.rows.len());
            for (mean_row, p99_row) in sweep.rows.iter().zip(&sweep.p99_rows) {
                assert_eq!(mean_row.0, p99_row.0, "load column must match");
                // Tail latency sits at or above the bulk of the
                // distribution (generous slack for histogram error).
                for (mean, p99) in [
                    (mean_row.1, p99_row.1),
                    (mean_row.2, p99_row.2),
                    (mean_row.3, p99_row.3),
                    (mean_row.4, p99_row.4),
                ] {
                    assert!(p99 > 0.0, "{}: missing p99", sweep.name);
                    assert!(
                        p99 >= mean * 0.5,
                        "{}: p99 {p99} << mean {mean}",
                        sweep.name
                    );
                }
            }
            assert_eq!(sweep.responses.len(), MECHANISMS.len());
            for (mech, response) in &sweep.responses {
                assert_eq!(
                    response.count(),
                    loads.len() * requests,
                    "{}/{mech}: responses must merge across the sweep",
                    sweep.name
                );
            }
        }
    }
}
