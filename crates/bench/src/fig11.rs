//! Figure 11: response time versus load under Static, WQT-H, and
//! WQ-Linear for the four two-level applications.

use dope_core::{Mechanism, Resources, StaticMechanism};
use dope_mechanisms::{WqLinear, WqtH};
use dope_sim::system::{run_system, SystemParams, TwoLevelModel};
use dope_workload::ArrivalSchedule;

/// Mechanism parameters for one application.
#[derive(Debug, Clone, Copy)]
pub struct AppTuning {
    /// The paper's `Mmax` for the application.
    pub m_max: u32,
    /// WQ-Linear's `Mmin`.
    pub m_min: u32,
    /// WQ-Linear's `Qmax` (occupancy at which the extent bottoms out).
    pub q_max: f64,
    /// WQT-H's queue threshold `T`.
    pub threshold: f64,
}

/// One application of the Figure 11 sweep.
#[derive(Debug)]
pub struct AppSweep {
    /// Application name.
    pub name: &'static str,
    /// `(load, static_seq, static_par, wqt_h, wq_linear)` mean response
    /// times in seconds.
    pub rows: Vec<(f64, f64, f64, f64, f64)>,
}

/// The four applications with their tunings.
#[must_use]
pub fn apps() -> Vec<(&'static str, TwoLevelModel, AppTuning)> {
    vec![
        (
            "x264 (video transcoding)",
            dope_apps::transcode::sim_model(),
            AppTuning {
                m_max: 8,
                m_min: 1,
                q_max: 12.0,
                threshold: 4.0,
            },
        ),
        (
            "swaptions (option pricing)",
            dope_apps::swaptions::sim_model(),
            AppTuning {
                m_max: 8,
                m_min: 1,
                q_max: 12.0,
                threshold: 4.0,
            },
        ),
        (
            "bzip (data compression)",
            dope_apps::bzip::sim_model(),
            AppTuning {
                // DoP_min = 4: WQ-Linear's intermediate widths 2-3 are
                // unhelpful, the paper's §8.2.1 caveat.
                m_max: 10,
                m_min: 1,
                q_max: 12.0,
                threshold: 4.0,
            },
        ),
        (
            "gimp (image editing)",
            dope_apps::gimp::sim_model(),
            AppTuning {
                m_max: 8,
                m_min: 1,
                q_max: 12.0,
                threshold: 4.0,
            },
        ),
    ]
}

/// Runs the sweep for every application.
#[must_use]
pub fn run(loads: &[f64], requests: usize) -> Vec<AppSweep> {
    let params = SystemParams::default();
    let res = Resources::threads(24);
    apps()
        .into_iter()
        .map(|(name, model, tuning)| {
            let max_thr = model.max_throughput(24, 1);
            let rows = loads
                .iter()
                .map(|&load| {
                    let schedule = ArrivalSchedule::for_load_factor(load, max_thr, requests, 7);
                    let run_mech = |mech: &mut dyn Mechanism| {
                        run_system(&model, &schedule, mech, res, &params).mean_response()
                    };
                    let static_seq =
                        run_mech(&mut StaticMechanism::new(model.config_for_width(24, 1)));
                    let static_par = run_mech(&mut StaticMechanism::new(
                        model.config_for_width(24, tuning.m_max),
                    ));
                    let wqt_h = run_mech(&mut WqtH::new(tuning.threshold, tuning.m_max, 4, 4));
                    let wq_linear =
                        run_mech(&mut WqLinear::new(tuning.m_min, tuning.m_max, tuning.q_max));
                    (load, static_seq, static_par, wqt_h, wq_linear)
                })
                .collect();
            AppSweep { name, rows }
        })
        .collect()
}

/// Runs and prints all four panels.
pub fn report(quick: bool) -> Vec<AppSweep> {
    let sweeps = run(&crate::load_factors(quick), crate::request_count(quick));
    for sweep in &sweeps {
        println!("== Figure 11: {} — mean response time (s) ==", sweep.name);
        println!(
            "{}",
            crate::row(&[
                "load".into(),
                "static-seq".into(),
                "static-par".into(),
                "WQT-H".into(),
                "WQ-Linear".into(),
            ])
        );
        for &(load, s, p, h, l) in &sweep.rows {
            println!(
                "{}",
                crate::row(&[
                    format!("{load:.1}"),
                    crate::cell(s),
                    crate::cell(p),
                    crate::cell(h),
                    crate::cell(l),
                ])
            );
        }
        println!();
    }
    sweeps
}

/// Checks the paper's qualitative claims.
#[must_use]
pub fn shape_holds(sweep: &AppSweep) -> bool {
    let light = sweep.rows.first().expect("rows");
    let heavy = sweep.rows.last().expect("rows");
    // Light load: adaptive mechanisms track the parallel static (fast).
    let light_ok = light.3 <= light.1 * 1.05 && light.4 <= light.1 * 1.05;
    // Heavy load: adaptive mechanisms avoid the parallel static's collapse.
    let heavy_ok = heavy.3 <= heavy.2 * 1.05 && heavy.4 <= heavy.2 * 1.05;
    light_ok && heavy_ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_mechanisms_dominate_at_extremes() {
        let sweeps = run(&[0.2, 1.0], 500);
        for sweep in &sweeps {
            assert!(shape_holds(sweep), "{}: {:?}", sweep.name, sweep.rows);
        }
    }
}
