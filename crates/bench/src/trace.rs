//! Flight-recorder captures of representative figure runs.
//!
//! The figure harnesses aggregate hundreds of simulation runs into a few
//! table rows — useful for checking the paper's claims, useless for
//! understanding *one* adaptation trajectory. This module records a
//! single representative run per figure as a `dope-trace` JSONL file:
//!
//! * [`record_fig11`] — the x264 transaction server under WQ-Linear at
//!   0.8 load (one cell of Figure 11);
//! * [`record_fig15`] — the ferret pipeline under TBF with a saturated
//!   source (one cell of Figure 15).
//!
//! Run `cargo run -p dope-bench --release --bin fig11 -- --trace` (or
//! `--trace=PATH`) to write the capture next to the figure output, then
//! inspect it with `dope-trace timeline PATH` or check determinism with
//! `dope-trace replay PATH` (system traces only; pipeline shapes have no
//! two-level nest to rebuild).

use dope_core::Resources;
use dope_mechanisms::{Tbf, WqLinear};
use dope_sim::pipeline::{run_pipeline_observed, PipelineParams, Source};
use dope_sim::system::{run_system_observed, SystemParams};
use dope_trace::{Recorder, RecordingObserver};
use dope_workload::ArrivalSchedule;

/// Records one Figure 11 cell (x264 under WQ-Linear, load factor 0.8)
/// and returns the trace as JSONL.
#[must_use]
pub fn record_fig11(quick: bool) -> String {
    let model = dope_apps::transcode::sim_model();
    let mut mechanism = WqLinear::new(1, 8, 12.0);
    let params = SystemParams::default();
    let res = Resources::threads(24);
    let requests = if quick {
        100
    } else {
        crate::request_count(quick)
    };
    let schedule = ArrivalSchedule::for_load_factor(0.8, model.max_throughput(24, 1), requests, 7);

    let recorder = Recorder::bounded(1 << 16);
    let mut observer = RecordingObserver::new(recorder.clone()).with_goal("MinResponseTime");
    let outcome = run_system_observed(
        &model,
        &schedule,
        &mut mechanism,
        res,
        &params,
        &mut observer,
    );
    observer.finished(outcome.completed, outcome.config_changes);
    recorder.to_jsonl()
}

/// Records one Figure 15 cell (ferret under TBF, saturated source) and
/// returns the trace as JSONL.
#[must_use]
pub fn record_fig15(quick: bool) -> String {
    let model = dope_apps::ferret::sim_model();
    let mut mechanism = Tbf::new();
    let params = PipelineParams {
        control_period_secs: 1.0,
        horizon_secs: if quick { 90.0 } else { 240.0 },
        ..PipelineParams::default()
    };

    let recorder = Recorder::bounded(1 << 16);
    let mut observer = RecordingObserver::new(recorder.clone()).with_goal("MaxThroughput");
    let outcome = run_pipeline_observed(
        &model,
        &Source::Saturated,
        &mut mechanism,
        Resources::threads(24),
        &params,
        &mut observer,
    );
    observer.finished(outcome.completed, outcome.config_history.len() as u64);
    recorder.to_jsonl()
}

/// Handles a `--trace[=PATH]` argument for a figure binary: records the
/// JSONL produced by `record` and writes it to `PATH` (default
/// `default_path`), reporting on stderr.
pub fn write_trace(jsonl: &str, path: &str) {
    match std::fs::write(path, jsonl) {
        Ok(()) => eprintln!(
            "trace: wrote {} events to {path} (inspect with `dope-trace timeline {path}`)",
            jsonl.lines().count()
        ),
        Err(err) => eprintln!("trace: cannot write {path}: {err}"),
    }
}

/// Parses `--trace` / `--trace=PATH` out of the argument list.
#[must_use]
pub fn trace_path(args: &[String], default_path: &str) -> Option<String> {
    args.iter().find_map(|arg| {
        if arg == "--trace" {
            Some(default_path.to_string())
        } else {
            arg.strip_prefix("--trace=").map(ToString::to_string)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dope_trace::{parse_jsonl, replay_into_sim, TraceEvent};

    #[test]
    fn fig11_trace_parses_and_replays() {
        let jsonl = record_fig11(true);
        let records = parse_jsonl(&jsonl).expect("trace parses");
        assert_eq!(records[0].event.kind(), "Launched");
        assert_eq!(records.last().unwrap().event.kind(), "Finished");
        let outcome = replay_into_sim(&records).expect("replay");
        assert!(
            outcome.matches(),
            "fig11 trace must replay to the same accepted-config sequence"
        );
        assert!(
            outcome.recorded.len() > 1,
            "WQ-Linear at 0.8 load must reconfigure at least once"
        );
    }

    #[test]
    fn fig15_trace_parses_and_reconfigures() {
        let jsonl = record_fig15(true);
        let records = parse_jsonl(&jsonl).expect("trace parses");
        assert_eq!(records[0].event.kind(), "Launched");
        let epochs = records
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::ReconfigureEpoch { .. }))
            .count();
        assert!(epochs >= 1, "TBF must reconfigure the ferret pipeline");
    }

    #[test]
    fn trace_path_parses_flags() {
        let args = vec!["--quick".to_string(), "--trace".to_string()];
        assert_eq!(trace_path(&args, "d.jsonl"), Some("d.jsonl".to_string()));
        let args = vec!["--trace=x.jsonl".to_string()];
        assert_eq!(trace_path(&args, "d.jsonl"), Some("x.jsonl".to_string()));
        assert_eq!(trace_path(&[], "d.jsonl"), None);
    }
}
