//! Tables 3 and 4: mechanism implementation sizes and application
//! metadata.

/// Source text of each mechanism implementation, embedded at compile time.
const MECHANISM_SOURCES: &[(&str, &str, u32)] = &[
    (
        "WQT-H",
        include_str!("../../dope-mechanisms/src/wqt_h.rs"),
        28,
    ),
    (
        "WQ-Linear",
        include_str!("../../dope-mechanisms/src/wq_linear.rs"),
        9,
    ),
    ("TBF", include_str!("../../dope-mechanisms/src/tbf.rs"), 89),
    ("FDP", include_str!("../../dope-mechanisms/src/fdp.rs"), 94),
    (
        "SEDA",
        include_str!("../../dope-mechanisms/src/seda.rs"),
        30,
    ),
    ("TPC", include_str!("../../dope-mechanisms/src/tpc.rs"), 154),
];

/// Counts effective implementation lines: everything before the test
/// module, excluding blanks, comments, and doc comments.
#[must_use]
pub fn effective_loc(source: &str) -> usize {
    source
        .split("#[cfg(test)]")
        .next()
        .unwrap_or(source)
        .lines()
        .map(str::trim)
        .filter(|l| {
            !l.is_empty() && !l.starts_with("//") && !l.starts_with("///") && !l.starts_with("//!")
        })
        .count()
}

/// One Table 3 row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MechanismLoc {
    /// Mechanism name.
    pub name: &'static str,
    /// Lines of code in this reproduction.
    pub ours: usize,
    /// Lines of code the paper reports.
    pub paper: u32,
}

/// Computes Table 3.
#[must_use]
pub fn table3() -> Vec<MechanismLoc> {
    MECHANISM_SOURCES
        .iter()
        .map(|&(name, source, paper)| MechanismLoc {
            name,
            ours: effective_loc(source),
            paper,
        })
        .collect()
}

/// Prints Table 3.
pub fn report_table3() -> Vec<MechanismLoc> {
    let rows = table3();
    println!("== Table 3: lines of code per mechanism ==");
    println!(
        "{}",
        crate::row(&["mechanism".into(), "this repo".into(), "paper".into()])
    );
    for r in &rows {
        println!(
            "{}",
            crate::row(&[r.name.into(), r.ours.to_string(), r.paper.to_string()])
        );
    }
    rows
}

/// Prints Table 4 (application metadata).
pub fn report_table4() {
    println!("== Table 4: applications enhanced using DoPE ==");
    println!(
        "{}",
        crate::row(&[
            "app".into(),
            "levels".into(),
            "DoP_min".into(),
            "description".into(),
        ])
    );
    for app in dope_apps::all_apps() {
        println!(
            "{}  {}",
            crate::row(&[
                app.name.into(),
                app.loop_nest_levels.to_string(),
                app.inner_dop_min.map_or("-".to_string(), |d| d.to_string()),
            ]),
            app.description
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_paper_mechanism_is_counted() {
        let rows = table3();
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.ours > 0, "{} has no source lines", r.name);
        }
    }

    #[test]
    fn loc_counter_skips_comments_and_tests() {
        let src = "/// doc\n// comment\nfn a() {}\n\n#[cfg(test)]\nmod tests { fn b() {} }\n";
        assert_eq!(effective_loc(src), 1);
    }

    #[test]
    fn mechanism_ordering_matches_paper_table() {
        // The paper's Table 3 order, with relative sizes broadly similar:
        // WQ-Linear is the smallest, TPC among the largest.
        let rows = table3();
        let by_name = |n: &str| rows.iter().find(|r| r.name == n).unwrap().ours;
        assert!(by_name("WQ-Linear") < by_name("TBF"));
        assert!(by_name("WQ-Linear") < by_name("TPC"));
    }
}
