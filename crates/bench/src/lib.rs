//! Benchmark harness regenerating every table and figure of the DoPE
//! paper's evaluation (§8).
//!
//! Each module reproduces one artifact on the simulated 24-context
//! testbed (see `DESIGN.md` for the substitution rationale) and prints the
//! same rows/series the paper reports:
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`fig02`] | Figure 2: x264 execution time / throughput / response time vs load, with the oracle |
//! | [`fig11`] | Figure 11: response time vs load under Static, WQT-H, WQ-Linear for four applications |
//! | [`fig12`] | Figure 12: ferret response time vs load (static even, oversubscribed, DoPE) |
//! | [`fig13`] | Figure 13: ferret throughput over time under TBF |
//! | [`fig14`] | Figure 14: ferret power/throughput over time under TPC |
//! | [`fig15`] | Figure 15: ferret and dedup throughput across mechanisms |
//! | [`tables`] | Tables 3 (mechanism LoC) and 4 (application metadata) |
//! | [`ablations`] | sensitivity sweeps of the mechanisms' knobs (beyond the paper) |
//! | [`trace`] | flight-recorder captures of representative fig11/fig15 runs |
//! | [`metrics`] | `--metrics` Prometheus-text registry dumps for fig11/fig15 |
//! | [`perf`] | perf gate: pinned microbenches emitting `BENCH_perf.json` (beyond the paper) |
//! | [`overload`] | overload probe: admission policies under 10x offered load (beyond the paper) |
//!
//! Run any artifact with `cargo run -p dope-bench --release --bin <id>`;
//! `cargo bench` runs quick versions of all of them.

#![warn(missing_docs)]

pub mod ablations;
pub mod fig02;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod metrics;
pub mod overload;
pub mod perf;
pub mod tables;
pub mod trace;

/// The paper's load-factor sweep.
#[must_use]
pub fn load_factors(quick: bool) -> Vec<f64> {
    if quick {
        vec![0.2, 0.5, 0.8, 1.0]
    } else {
        (1..=10).map(|i| f64::from(i) / 10.0).collect()
    }
}

/// Number of requests per load point ("N was set to 500", §8.2).
///
/// The count is *not* reduced in quick mode: the response-time crossover
/// of Figure 2(c) is a queueing transient that needs the full run length.
#[must_use]
pub fn request_count(_quick: bool) -> usize {
    500
}

/// Formats one table row of fixed-width cells.
#[must_use]
pub fn row(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| format!("{c:>12}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Formats a float cell.
#[must_use]
pub fn cell(v: f64) -> String {
    if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}
