//! Figure 15: throughput improvement over the static even distribution
//! for ferret and dedup across mechanisms.
//!
//! Paper values: ferret — Pthreads-OS 2.12x; dedup — Pthreads-OS 0.89x;
//! DoPE-TBF best everywhere; geomean improvement of the DoPEd
//! applications 2.36x (+136%).

use dope_core::{Mechanism, Resources, StaticMechanism};
use dope_mechanisms::{Fdp, Seda, Tbf};
use dope_sim::pipeline::{run_pipeline, PipelineModel, PipelineParams, Source};

/// Throughput of one (application, mechanism) cell, normalized later.
#[derive(Debug, Clone)]
pub struct AppResults {
    /// Application name.
    pub name: &'static str,
    /// `(mechanism, queries/s)` in report order.
    pub rows: Vec<(&'static str, f64)>,
}

fn stable_throughput(
    model: &PipelineModel,
    mech: &mut dyn Mechanism,
    oversub: bool,
    oversub_penalty: f64,
    quick: bool,
) -> f64 {
    let params = PipelineParams {
        control_period_secs: 1.0,
        horizon_secs: if quick { 90.0 } else { 240.0 },
        allow_oversubscription: oversub,
        oversub_penalty_frac: oversub_penalty,
        ..PipelineParams::default()
    };
    let out = run_pipeline(
        model,
        &Source::Saturated,
        mech,
        Resources::threads(24),
        &params,
    );
    out.stable_throughput(params.horizon_secs * 0.5)
}

/// Runs all mechanisms for one application model.
#[must_use]
pub fn run_app(
    name: &'static str,
    model: &PipelineModel,
    oversub_penalty: f64,
    quick: bool,
) -> AppResults {
    let rows = vec![
        (
            "Pthreads-Baseline",
            stable_throughput(
                model,
                &mut StaticMechanism::new(model.config_even(24)),
                false,
                oversub_penalty,
                quick,
            ),
        ),
        (
            "Pthreads-OS",
            stable_throughput(
                model,
                &mut StaticMechanism::new(model.config_oversubscribed(24)),
                true,
                oversub_penalty,
                quick,
            ),
        ),
        (
            "DoPE-SEDA",
            // SEDA resizes per-stage pools without global coordination, so
            // it may oversubscribe; it faces the same penalty as the OS
            // baseline.
            stable_throughput(model, &mut Seda::default(), true, oversub_penalty, quick),
        ),
        (
            "DoPE-FDP",
            stable_throughput(model, &mut Fdp::default(), false, oversub_penalty, quick),
        ),
        (
            "DoPE-TB",
            stable_throughput(
                model,
                &mut Tbf::without_fusion(),
                false,
                oversub_penalty,
                quick,
            ),
        ),
        (
            "DoPE-TBF",
            stable_throughput(model, &mut Tbf::new(), false, oversub_penalty, quick),
        ),
    ];
    AppResults { name, rows }
}

/// Runs ferret and dedup.
#[must_use]
pub fn run(quick: bool) -> Vec<AppResults> {
    vec![
        run_app("ferret", &dope_apps::ferret::sim_model(), 0.02, quick),
        run_app(
            "dedup",
            &dope_apps::dedup::sim_model(),
            dope_apps::dedup::OVERSUB_PENALTY,
            quick,
        ),
    ]
}

/// Normalized improvement of `mechanism` over the baseline.
#[must_use]
pub fn normalized(results: &AppResults, mechanism: &str) -> f64 {
    let base = results.rows[0].1;
    results
        .rows
        .iter()
        .find(|(m, _)| *m == mechanism)
        .map_or(0.0, |(_, t)| t / base)
}

/// Runs and prints the normalized table.
pub fn report(quick: bool) -> Vec<AppResults> {
    let results = run(quick);
    println!("== Figure 15: throughput normalized to Pthreads-Baseline ==");
    let mechs: Vec<&str> = results[0].rows.iter().map(|(m, _)| *m).collect();
    let mut header = vec!["app".to_string()];
    header.extend(mechs.iter().map(|m| (*m).to_string()));
    println!("{}", crate::row(&header));
    for app in &results {
        let mut cells = vec![app.name.to_string()];
        for (m, _) in &app.rows {
            cells.push(format!("{:.2}x", normalized(app, m)));
        }
        println!("{}", crate::row(&cells));
    }
    let geomean =
        (normalized(&results[0], "DoPE-TBF") * normalized(&results[1], "DoPE-TBF")).sqrt();
    println!("\nDoPE-TBF geomean improvement: {geomean:.2}x (paper: 2.36x)");
    results
}

/// The paper's qualitative claims.
#[must_use]
pub fn shape_holds(results: &[AppResults]) -> bool {
    let ferret = &results[0];
    let dedup = &results[1];
    // ferret: OS well above baseline; dedup: OS at or below baseline.
    let os_split =
        normalized(ferret, "Pthreads-OS") > 1.5 && normalized(dedup, "Pthreads-OS") < 1.05;
    // TBF is the best mechanism for both applications.
    let tbf_best = results.iter().all(|app| {
        let tbf = normalized(app, "DoPE-TBF");
        app.rows
            .iter()
            .all(|(m, _)| *m == "DoPE-TBF" || normalized(app, m) <= tbf * 1.02)
    });
    // Fusion helps: TBF >= TB.
    let fusion_helps = results
        .iter()
        .all(|app| normalized(app, "DoPE-TBF") >= normalized(app, "DoPE-TB") * 0.98);
    os_split && tbf_best && fusion_helps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure15_shape_holds() {
        let results = run(true);
        assert!(shape_holds(&results), "{results:?}");
    }

    #[test]
    fn tbf_geomean_improvement_is_substantial() {
        let results = run(true);
        let geomean =
            (normalized(&results[0], "DoPE-TBF") * normalized(&results[1], "DoPE-TBF")).sqrt();
        assert!(geomean > 1.5, "geomean {geomean}");
    }
}
