//! Figure 12: ferret response time versus load.
//!
//! Compares the static even distribution `(<1,6,6,6,6,1>, PIPE)`, the
//! static oversubscribed distribution (24 threads per parallel task), and
//! DoPE's load-aware allocation.

use dope_core::{Mechanism, Resources, StaticMechanism};
use dope_mechanisms::Proportional;
use dope_sim::pipeline::{run_pipeline, PipelineModel, PipelineParams, Source};
use dope_workload::ArrivalSchedule;

/// One row of the Figure 12 sweep.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Load factor.
    pub load: f64,
    /// Static even distribution's mean response (s).
    pub even: f64,
    /// Static oversubscribed distribution's mean response (s).
    pub oversubscribed: f64,
    /// DoPE's mean response (s).
    pub dope: f64,
}

fn params(quick: bool) -> PipelineParams {
    PipelineParams {
        control_period_secs: 0.5,
        horizon_secs: if quick { 200.0 } else { 600.0 },
        oversub_penalty_frac: 0.02,
        ..PipelineParams::default()
    }
}

/// Ferret's maximum sustainable throughput (queries/s) under the best
/// static allocation, used to normalize the load axis.
#[must_use]
pub fn max_throughput(model: &PipelineModel, quick: bool) -> f64 {
    let mut mech = Proportional::new();
    let out = run_pipeline(
        model,
        &Source::Saturated,
        &mut mech,
        Resources::threads(24),
        &params(quick),
    );
    out.stable_throughput(out.horizon_secs * 0.5)
}

/// Runs the Figure 12 sweep.
#[must_use]
pub fn run(loads: &[f64], requests: usize, quick: bool) -> Vec<Row> {
    let model = dope_apps::ferret::sim_model();
    let max_thr = max_throughput(&model, quick);
    let res = Resources::threads(24);
    loads
        .iter()
        .map(|&load| {
            let schedule = ArrivalSchedule::for_load_factor(load, max_thr, requests, 23);
            let open = Source::Open(schedule);
            let respond = |mech: &mut dyn Mechanism, oversub: bool| {
                let mut p = params(quick);
                p.allow_oversubscription = oversub;
                let out = run_pipeline(&model, &open, mech, res, &p);
                out.response.mean().unwrap_or(p.horizon_secs)
            };
            let even = respond(&mut StaticMechanism::new(model.config_even(24)), false);
            let oversubscribed = respond(
                &mut StaticMechanism::new(model.config_oversubscribed(24)),
                true,
            );
            let dope = respond(&mut Proportional::new(), false);
            Row {
                load,
                even,
                oversubscribed,
                dope,
            }
        })
        .collect()
}

/// Runs and prints the sweep.
pub fn report(quick: bool) -> Vec<Row> {
    let rows = run(
        &crate::load_factors(quick),
        crate::request_count(quick),
        quick,
    );
    println!("== Figure 12: ferret mean response time (s) vs load ==");
    println!(
        "{}",
        crate::row(&[
            "load".into(),
            "even".into(),
            "oversub".into(),
            "DoPE".into()
        ])
    );
    for r in &rows {
        println!(
            "{}",
            crate::row(&[
                format!("{:.1}", r.load),
                crate::cell(r.even),
                crate::cell(r.oversubscribed),
                crate::cell(r.dope),
            ])
        );
    }
    rows
}

/// The qualitative claims this model reproduces: both oversubscription
/// and DoPE dominate the static even distribution at moderate-to-heavy
/// load (by a widening margin), and DoPE achieves that **without**
/// oversubscribing — 24 threads instead of 98.
///
/// The paper additionally measures DoPE *below* the oversubscribed
/// static; that gap comes from real OS scheduling/memory overheads that
/// this simulator only charges per item (see `EXPERIMENTS.md`), so here
/// DoPE is required to stay within a small factor of it instead.
#[must_use]
pub fn shape_holds(rows: &[Row]) -> bool {
    rows.iter().filter(|r| r.load >= 0.5).all(|r| {
        r.oversubscribed <= r.even * 1.05
            && r.dope <= r.even * 1.05
            && r.dope <= r.oversubscribed * 3.0
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dope_dominates_statics() {
        let rows = run(&[0.6, 0.9], 150, true);
        assert!(shape_holds(&rows), "{rows:?}");
    }
}
