//! The overload probe: admission policies under 10x offered load.
//!
//! Four deterministic simulations of the same application
//! (`docs/overload.md` walks through the equivalent live capture):
//!
//! 1. **saturation** — offered load 1.0 under `Open` admission; its
//!    system throughput is the goodput yardstick;
//! 2. **open overload** — offered load 10x under `Open`: the unbounded
//!    queue grows for the whole run and the p99 response time grows
//!    with it (the disease);
//! 3. **shed overload** — the same 10x storm through
//!    `Shed { high_water }`: the gate drops what the system cannot
//!    serve, so the p99 of *admitted* requests stays bounded while
//!    goodput holds near saturation (the cure, paid in dropped
//!    requests);
//! 4. **block overload** — the same storm through
//!    `Block { capacity }`: nothing is dropped, the arrival process is
//!    throttled instead, and the blocking delay shows up in response
//!    time (the closed-loop alternative).
//!
//! [`crate::perf::gate_failures`] enforces the frontier in-run: the
//! shed p99 must stay at least [`P99_RATIO_FLOOR`]x under the open p99,
//! shed goodput must reach [`GOODPUT_FLOOR`] of saturation throughput,
//! and the block run must complete every offered request.

use dope_core::json::Value;
use dope_core::{AdmissionPolicy, Resources, StaticMechanism};
use dope_sim::profile::AmdahlProfile;
use dope_sim::system::{run_system, SystemOutcome, SystemParams, TwoLevelModel};
use dope_workload::ArrivalSchedule;

/// The shed run's p99 must be at least this many times smaller than the
/// open run's p99 at the same offered load.
pub const P99_RATIO_FLOOR: f64 = 4.0;

/// The shed run's system throughput must reach this fraction of the
/// saturation run's ("goodput >= 90 % of saturation").
pub const GOODPUT_FLOOR: f64 = 0.9;

/// The overload factor: offered load as a multiple of the saturation
/// arrival rate.
pub const OVERLOAD_FACTOR: f64 = 10.0;

fn model() -> TwoLevelModel {
    TwoLevelModel::pipeline("serve", AmdahlProfile::new(10.0, 0.97, 0.1, 0.05))
}

fn run_once(admission: AdmissionPolicy, load: f64, requests: usize) -> SystemOutcome {
    let m = model();
    let max_thr = m.max_throughput(24, 1);
    let schedule = ArrivalSchedule::for_load_factor(load, max_thr, requests, 7);
    let mut mech = StaticMechanism::new(m.config_for_width(24, 1));
    run_system(
        &m,
        &schedule,
        &mut mech,
        Resources::threads(24),
        &SystemParams {
            admission,
            ..SystemParams::default()
        },
    )
}

fn p99(outcome: &SystemOutcome) -> f64 {
    outcome.response.percentile(0.99).unwrap_or(0.0)
}

/// Runs the four simulations and assembles the report section.
#[must_use]
pub fn run(quick: bool) -> Value {
    // Goodput is measured over the full makespan, drain tail included,
    // so the storm must be long enough that steady state dominates the
    // tail — the simulations are analytic and cheap, so even quick mode
    // affords a long storm.
    let requests: usize = if quick { 2000 } else { 10_000 };
    let high_water: u32 = 8;
    let capacity: u32 = 8;

    let saturation = run_once(AdmissionPolicy::Open, 1.0, requests);
    let open = run_once(AdmissionPolicy::Open, OVERLOAD_FACTOR, requests);
    let shed = run_once(
        AdmissionPolicy::Shed { high_water },
        OVERLOAD_FACTOR,
        requests,
    );
    let block = run_once(
        AdmissionPolicy::Block { capacity },
        OVERLOAD_FACTOR,
        requests,
    );

    let fields = vec![
        ("requests", Value::Number(requests as u64)),
        ("load_factor", Value::from_f64(OVERLOAD_FACTOR)),
        ("high_water", Value::Number(u64::from(high_water))),
        ("capacity", Value::Number(u64::from(capacity))),
        (
            "saturation_throughput",
            Value::from_f64(saturation.system_throughput()),
        ),
        ("open_p99_secs", Value::from_f64(p99(&open))),
        ("shed_p99_secs", Value::from_f64(p99(&shed))),
        ("block_p99_secs", Value::from_f64(p99(&block))),
        (
            "shed_goodput_throughput",
            Value::from_f64(shed.system_throughput()),
        ),
        ("shed_completed", Value::Number(shed.completed)),
        ("shed_dropped", Value::Number(shed.admission.shed())),
        (
            "shed_fraction",
            Value::from_f64(shed.admission.shed_fraction()),
        ),
        ("block_completed", Value::Number(block.completed)),
        (
            "block_lost",
            Value::Number(block.admission.offered.saturating_sub(block.completed)),
        ),
    ];
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_probe_satisfies_its_own_gates() {
        let section = run(true);
        let get = |key: &str| section.get(key).and_then(Value::as_f64).unwrap();
        let open_p99 = get("open_p99_secs");
        let shed_p99 = get("shed_p99_secs");
        assert!(
            open_p99 / shed_p99 >= P99_RATIO_FLOOR,
            "open {open_p99} vs shed {shed_p99}"
        );
        let saturation = get("saturation_throughput");
        let goodput = get("shed_goodput_throughput");
        assert!(
            goodput >= GOODPUT_FLOOR * saturation,
            "goodput {goodput} vs saturation {saturation}"
        );
        assert_eq!(get("block_lost"), 0.0, "block must lose nothing");
        assert!(get("shed_dropped") > 0.0, "10x load must shed");
    }
}
