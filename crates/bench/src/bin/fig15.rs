//! Regenerates the paper's fig15 artifact. Run with --release.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let _ = dope_bench::fig15::report(quick);
}
