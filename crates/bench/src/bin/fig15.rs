//! Regenerates the paper's fig15 artifact. Run with --release.
//!
//! Pass `--trace[=PATH]` to additionally record one representative run
//! (ferret under TBF, saturated source) as a `dope-trace` JSONL flight
//! recording (default `fig15-ferret-tbf.jsonl`), and/or
//! `--metrics[=PATH]` to dump per-(app, mechanism) throughput gauges as
//! a Prometheus-text registry (default `fig15-metrics.prom`).
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let results = dope_bench::fig15::report(quick);
    if let Some(path) = dope_bench::trace::trace_path(&args, "fig15-ferret-tbf.jsonl") {
        let jsonl = dope_bench::trace::record_fig15(quick);
        dope_bench::trace::write_trace(&jsonl, &path);
    }
    if let Some(path) = dope_bench::metrics::metrics_path(&args, "fig15-metrics.prom") {
        let registry = dope_bench::metrics::fig15_registry(&results);
        dope_bench::metrics::write_dump(&registry, &path);
    }
}
