//! Regenerates the paper's Table 3 (mechanism lines of code).
fn main() {
    let _ = dope_bench::tables::report_table3();
}
