//! Regenerates the paper's fig11 artifact. Run with --release.
//!
//! Pass `--trace[=PATH]` to additionally record one representative run
//! (x264 under WQ-Linear at 0.8 load) as a `dope-trace` JSONL flight
//! recording (default `fig11-x264-wqlinear.jsonl`), and/or
//! `--metrics[=PATH]` to dump the sweep's response-time histograms as a
//! Prometheus-text registry (default `fig11-metrics.prom`).
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let sweeps = dope_bench::fig11::report(quick);
    if let Some(path) = dope_bench::trace::trace_path(&args, "fig11-x264-wqlinear.jsonl") {
        let jsonl = dope_bench::trace::record_fig11(quick);
        dope_bench::trace::write_trace(&jsonl, &path);
    }
    if let Some(path) = dope_bench::metrics::metrics_path(&args, "fig11-metrics.prom") {
        let registry = dope_bench::metrics::fig11_registry(&sweeps);
        dope_bench::metrics::write_dump(&registry, &path);
    }
}
