//! Regenerates the paper's fig11 artifact. Run with --release.
//!
//! Pass `--trace[=PATH]` to additionally record one representative run
//! (x264 under WQ-Linear at 0.8 load) as a `dope-trace` JSONL flight
//! recording (default `fig11-x264-wqlinear.jsonl`).
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let _ = dope_bench::fig11::report(quick);
    if let Some(path) = dope_bench::trace::trace_path(&args, "fig11-x264-wqlinear.jsonl") {
        let jsonl = dope_bench::trace::record_fig11(quick);
        dope_bench::trace::write_trace(&jsonl, &path);
    }
}
