//! Regenerates the paper's Table 4 (application metadata).
fn main() {
    dope_bench::tables::report_table4();
}
