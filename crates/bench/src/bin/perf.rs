//! The perf-gate binary: runs the pinned microbenches and writes
//! `BENCH_perf.json`.
//!
//! ```text
//! cargo run --release -p dope-bench --bin perf -- [--quick] \
//!     [--out=PATH] [--compare=BASELINE] [--threshold=FRACTION]
//! ```
//!
//! Exits non-zero when an in-run gate fails (the sharded record path
//! must beat the in-process mutex reference) or, with `--compare`, when
//! any tracked metric regresses past the threshold against the
//! baseline report.
//!
//! `--check=PATH` runs no benches: it validates an existing report
//! against the strict codec and schema tag, then exits.

use dope_bench::perf;
use dope_core::json::parse;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut quick = false;
    let mut out_path = String::from("BENCH_perf.json");
    let mut compare_path: Option<String> = None;
    let mut threshold = perf::DEFAULT_THRESHOLD;
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else if let Some(path) = arg.strip_prefix("--check=") {
            return check_report(path);
        } else if let Some(path) = arg.strip_prefix("--out=") {
            out_path = path.to_string();
        } else if let Some(path) = arg.strip_prefix("--compare=") {
            compare_path = Some(path.to_string());
        } else if let Some(value) = arg.strip_prefix("--threshold=") {
            match value.parse::<f64>() {
                Ok(t) if t > 0.0 => threshold = t,
                _ => {
                    eprintln!("perf: --threshold must be a positive fraction, got `{value}`");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            eprintln!(
                "perf: unknown argument `{arg}` \
                 (expected --quick, --out=PATH, --compare=PATH, --threshold=X, --check=PATH)"
            );
            return ExitCode::FAILURE;
        }
    }

    let report = perf::run(quick);
    print!("{}", perf::summary(&report));

    let text = perf::to_validated_json(&report);
    if let Err(err) = std::fs::write(&out_path, &text) {
        eprintln!("perf: failed to write {out_path}: {err}");
        return ExitCode::FAILURE;
    }
    println!("perf: report written to {out_path}");

    let mut failed = false;
    for failure in perf::gate_failures(&report) {
        eprintln!("perf: GATE FAILURE: {failure}");
        failed = true;
    }

    if let Some(path) = compare_path {
        let baseline = match std::fs::read_to_string(&path) {
            Ok(text) => match parse(&text) {
                Ok(value) => value,
                Err(err) => {
                    eprintln!("perf: baseline {path} is not valid JSON: {err}");
                    return ExitCode::FAILURE;
                }
            },
            Err(err) => {
                eprintln!("perf: failed to read baseline {path}: {err}");
                return ExitCode::FAILURE;
            }
        };
        let regressions = perf::compare(&report, &baseline, threshold);
        if regressions.is_empty() {
            println!(
                "perf: no regressions vs {path} (threshold +{:.0} %)",
                threshold * 100.0
            );
        }
        for regression in &regressions {
            eprintln!("perf: REGRESSION: {regression}");
            failed = true;
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Validates an existing report file: it must parse under the strict
/// codec and carry the expected schema tag.
fn check_report(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("perf: failed to read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let report = match parse(&text) {
        Ok(value) => value,
        Err(err) => {
            eprintln!("perf: {path} rejected by the strict codec: {err}");
            return ExitCode::FAILURE;
        }
    };
    match report.get("schema").and_then(|v| v.as_str()) {
        Some(schema) if schema == perf::SCHEMA => {
            println!("perf: {path} is a valid {schema} report");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!(
                "perf: {path} has schema {other:?}, expected {:?}",
                perf::SCHEMA
            );
            ExitCode::FAILURE
        }
    }
}
