//! Runs the mechanism ablation sweeps (beyond the paper's figures).
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    dope_bench::ablations::report(quick);
}
