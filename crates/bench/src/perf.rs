//! The perf gate: pinned microbenches emitting `BENCH_perf.json`.
//!
//! Five probes, each guarding one latency the DoPE stack promises to
//! keep small (see `docs/performance.md`):
//!
//! 1. **record path** — ns/op of the sharded task-completion record,
//!    single-threaded and contended, measured side by side with a
//!    replica of the retired shared-mutex design
//!    ([`dope_runtime::perf::bench_record_path`]) so every report
//!    carries a same-machine before/after;
//! 2. **snapshot** — `Monitor::snapshot` latency over a populated path
//!    set ([`dope_runtime::perf::bench_snapshot`]);
//! 3. **reconfigure** — pause/relaunch latency of a real suspend +
//!    relaunch cycle, read back from a flight recording of a live
//!    transcode run;
//! 4. **partial reconfig pause** — the same single-leaf extent change
//!    applied as a partial (delta) drain versus a forced full drain on a
//!    wide program with slow sibling tasks; the gate demands the delta
//!    path pause at least 4x less than the full drain;
//! 5. **fig11** — wall time of an end-to-end figure-11 sweep, the
//!    macro-level canary;
//! 6. **overload** — admission policies under 10x offered load
//!    ([`crate::overload`]): with `Shed`, the p99 of admitted requests
//!    must stay bounded (at least 4x under the open queue's p99) while
//!    goodput holds at >= 90 % of saturation throughput, and `Block`
//!    must complete every offered request.
//!
//! The report is strict-codec JSON (`dope_core::json`), diffable with
//! [`compare`] against a checked-in baseline
//! (`results/perf-baseline.json`); [`gate_failures`] additionally
//! enforces the in-run invariants that the sharded record path beats the
//! mutex reference and that the delta drain beats the full drain.

use dope_apps::transcode;
use dope_core::json::{parse, Value};
use dope_core::{
    body_fn, Config, Goal, Mechanism, MonitorSnapshot, ProgramShape, Resources, TaskBody,
    TaskConfig, TaskKind, TaskSpec, TaskStatus, WorkerSlot,
};
use dope_mechanisms::WqLinear;
use dope_trace::{Recorder, TraceEvent};
use dope_workload::{DequeueOutcome, WorkQueue};
use std::time::{Duration, Instant};

/// Schema tag carried by every report.
pub const SCHEMA: &str = "dope-bench-perf/v1";

/// Comparison threshold used when the caller does not pass one: a
/// metric may grow by 75 % before the gate fails. Deliberately
/// generous — the gate exists to catch gross regressions (a lock back
/// on the hot path, an accidentally quadratic snapshot), not scheduler
/// jitter.
pub const DEFAULT_THRESHOLD: f64 = 0.75;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Runs every probe and assembles the `BENCH_perf.json` report.
///
/// `quick` shrinks iteration counts to CI-smoke size (about a second of
/// wall time); the full configuration pins each probe long enough for
/// stable numbers.
#[must_use]
pub fn run(quick: bool) -> Value {
    let record_iters: u64 = if quick { 200_000 } else { 2_000_000 };
    let threads: u32 = 8;
    let snapshot_paths: u32 = 8;
    let snapshot_records: u64 = if quick { 20_000 } else { 200_000 };
    let snapshot_samples: u32 = if quick { 20 } else { 100 };

    println!("perf: record path ({record_iters} iters, {threads} threads)");
    let record = dope_runtime::perf::bench_record_path(record_iters, threads);

    println!("perf: snapshot ({snapshot_paths} paths x {snapshot_records} records)");
    let snapshot =
        dope_runtime::perf::bench_snapshot(snapshot_paths, snapshot_records, snapshot_samples);

    println!("perf: reconfigure pause (live transcode run)");
    let reconfigure = bench_reconfigure(quick);

    println!("perf: partial reconfig pause (delta vs full drain)");
    let partial_reconfig = bench_partial_reconfig(quick);

    println!("perf: overload (admission policies at 10x offered load)");
    let overload = crate::overload::run(quick);

    let fig11_loads = if quick {
        vec![0.8]
    } else {
        crate::load_factors(true)
    };
    let fig11_requests = if quick {
        200
    } else {
        crate::request_count(true)
    };
    println!(
        "perf: fig11 sweep ({} load(s) x {fig11_requests} requests)",
        fig11_loads.len()
    );
    let t0 = Instant::now();
    let sweeps = crate::fig11::run(&fig11_loads, fig11_requests);
    let fig11_wall = t0.elapsed().as_secs_f64();
    let fig11_apps = sweeps.len() as u64;

    obj(vec![
        ("schema", Value::String(SCHEMA.to_string())),
        ("quick", Value::Bool(quick)),
        (
            "record_path",
            obj(vec![
                ("iters_per_thread", Value::Number(record.iters_per_thread)),
                ("threads", Value::Number(u64::from(record.threads))),
                (
                    "sharded_single_ns",
                    Value::from_f64(record.sharded_single_ns),
                ),
                (
                    "sharded_contended_ns",
                    Value::from_f64(record.sharded_contended_ns),
                ),
                ("mutex_single_ns", Value::from_f64(record.mutex_single_ns)),
                (
                    "mutex_contended_ns",
                    Value::from_f64(record.mutex_contended_ns),
                ),
            ]),
        ),
        (
            "snapshot",
            obj(vec![
                ("paths", Value::Number(u64::from(snapshot.paths))),
                ("records_per_path", Value::Number(snapshot.records_per_path)),
                ("snapshot_micros", Value::from_f64(snapshot.snapshot_micros)),
            ]),
        ),
        ("reconfigure", reconfigure),
        ("partial_reconfig_pause", partial_reconfig),
        ("overload", overload),
        (
            "fig11",
            obj(vec![
                ("apps", Value::Number(fig11_apps)),
                ("loads", Value::Number(fig11_loads.len() as u64)),
                ("requests", Value::Number(fig11_requests as u64)),
                ("wall_secs", Value::from_f64(fig11_wall)),
            ]),
        ),
    ])
}

/// Runs a short live transcode under WQ-Linear with a flight recorder
/// attached and reads the reconfiguration pause/relaunch latencies back
/// out of the recording.
fn bench_reconfigure(quick: bool) -> Value {
    let videos: u64 = if quick { 24 } else { 96 };
    let (service, descriptor) = transcode::live_service();
    let recorder = Recorder::bounded(4096);
    let launched = dope_runtime::Dope::builder(Goal::MinResponseTime { threads: 4 })
        .mechanism(Box::new(WqLinear::new(1, 4, 8.0)))
        .control_period(Duration::from_millis(10))
        .queue_probe(service.queue_probe())
        .recorder(recorder.clone())
        .launch(descriptor);
    let dope = match launched {
        Ok(dope) => dope,
        Err(err) => {
            return obj(vec![(
                "error",
                Value::String(format!("launch failed: {err}")),
            )])
        }
    };
    let params = transcode::VideoParams {
        frames: 4,
        width: 32,
        height: 32,
    };
    for id in 0..videos {
        let _ = service.queue.enqueue(transcode::make_video(id, params));
    }
    service.queue.close();
    let _ = dope.wait();

    let mut pauses = Vec::new();
    let mut relaunches = Vec::new();
    for record in recorder.records() {
        if let TraceEvent::ReconfigureEpoch {
            pause_secs,
            relaunch_secs,
            ..
        } = record.event
        {
            pauses.push(pause_secs);
            relaunches.push(relaunch_secs);
        }
    }
    let mean = |xs: &[f64]| {
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    };
    obj(vec![
        ("videos", Value::Number(videos)),
        ("epochs", Value::Number(pauses.len() as u64)),
        ("mean_pause_ms", Value::from_f64(mean(&pauses) * 1e3)),
        ("mean_relaunch_ms", Value::from_f64(mean(&relaunches) * 1e3)),
    ])
}

/// Proposes a pinned starting configuration, then one target
/// configuration at the first consult, then holds.
struct OneBump {
    fired: bool,
    start: Config,
    target: Config,
}

impl Mechanism for OneBump {
    fn name(&self) -> &'static str {
        "OneBump"
    }
    fn initial(&mut self, _shape: &ProgramShape, _res: &Resources) -> Option<Config> {
        Some(self.start.clone())
    }
    fn reconfigure(
        &mut self,
        _snap: &MonitorSnapshot,
        _current: &Config,
        _shape: &ProgramShape,
        _res: &Resources,
    ) -> Option<Config> {
        if self.fired {
            None
        } else {
            self.fired = true;
            Some(self.target.clone())
        }
    }
}

/// A leaf that drains its own queue at a fixed per-item cost, honoring
/// the suspend directive after every item — each item boundary is a
/// consistent point.
fn paced_drain_spec(name: &'static str, queue: WorkQueue<u64>, work: Duration) -> TaskSpec {
    TaskSpec::leaf(name, TaskKind::Par, move |_slot: WorkerSlot| {
        let queue = queue.clone();
        Box::new(body_fn(move |cx| {
            cx.begin();
            let item = queue.dequeue_timeout(Duration::from_millis(2));
            cx.end();
            match item {
                DequeueOutcome::Item(_) => {
                    std::thread::sleep(work);
                    if cx.directive().wants_suspend() {
                        TaskStatus::Suspended
                    } else {
                        TaskStatus::Executing
                    }
                }
                DequeueOutcome::Drained => TaskStatus::Finished,
                DequeueOutcome::TimedOut => {
                    if cx.directive().wants_suspend() {
                        TaskStatus::Suspended
                    } else {
                        TaskStatus::Executing
                    }
                }
            }
        })) as Box<dyn TaskBody>
    })
}

/// Measures the pause cost of the same single-leaf extent change taken
/// as a partial (delta) drain versus a forced full drain.
///
/// The program is one fine-grained leaf (1 ms items — the path whose
/// extent changes) next to seven coarse leaves (30 ms items). A full
/// drain must wait for the slowest in-flight coarse item before the
/// boundary, so its pause is dominated by work that has nothing to do
/// with the change; the delta path drains only the fine leaf. The gate
/// requires the partial pause to be at least 4x smaller.
fn bench_partial_reconfig(quick: bool) -> Value {
    const COARSE_PATHS: u64 = 7;
    let fine_items: u64 = if quick { 150 } else { 400 };
    let coarse_items: u64 = if quick { 8 } else { 16 };
    let fine_work = Duration::from_millis(1);
    let coarse_work = Duration::from_millis(30);

    let run_once = |delta: bool| -> (f64, u64) {
        let mut specs = Vec::new();
        let mut start_tasks = Vec::new();
        let fine_queue = WorkQueue::new();
        for i in 0..fine_items {
            let _ = fine_queue.enqueue(i);
        }
        fine_queue.close();
        specs.push(paced_drain_spec("fine", fine_queue, fine_work));
        start_tasks.push(TaskConfig::leaf("fine", 1));
        let coarse_names: [&'static str; COARSE_PATHS as usize] =
            ["c1", "c2", "c3", "c4", "c5", "c6", "c7"];
        for name in coarse_names {
            let queue = WorkQueue::new();
            for i in 0..coarse_items {
                let _ = queue.enqueue(i);
            }
            queue.close();
            specs.push(paced_drain_spec(name, queue, coarse_work));
            start_tasks.push(TaskConfig::leaf(name, 1));
        }
        let start = Config::new(start_tasks);
        let mut target = start.clone();
        if let Some(task) = target.tasks.first_mut() {
            task.extent = 2;
        }
        let recorder = Recorder::bounded(4096);
        let launched = dope_runtime::Dope::builder(Goal::MaxThroughput { threads: 9 })
            .mechanism(Box::new(OneBump {
                fired: false,
                start,
                target,
            }))
            .control_period(Duration::from_millis(10))
            .delta_reconfig(delta)
            .recorder(recorder.clone())
            .launch(specs);
        let Ok(dope) = launched else {
            return (0.0, 0);
        };
        let _ = dope.wait();
        let pauses: Vec<f64> = recorder
            .records()
            .iter()
            .filter_map(|record| match &record.event {
                TraceEvent::ReconfigureEpoch { pause_secs, .. } => Some(*pause_secs),
                _ => None,
            })
            .collect();
        if pauses.is_empty() {
            (0.0, 0)
        } else {
            let mean = pauses.iter().sum::<f64>() / pauses.len() as f64;
            (mean * 1e3, pauses.len() as u64)
        }
    };

    let (partial_pause_ms, partial_epochs) = run_once(true);
    let (full_pause_ms, full_epochs) = run_once(false);
    let pause_ratio = if partial_pause_ms > 0.0 {
        full_pause_ms / partial_pause_ms
    } else {
        0.0
    };
    obj(vec![
        ("paths", Value::Number(1 + COARSE_PATHS)),
        ("fine_items", Value::Number(fine_items)),
        ("coarse_items", Value::Number(coarse_items)),
        ("partial_pause_ms", Value::from_f64(partial_pause_ms)),
        ("partial_epochs", Value::Number(partial_epochs)),
        ("full_pause_ms", Value::from_f64(full_pause_ms)),
        ("full_epochs", Value::Number(full_epochs)),
        ("pause_ratio", Value::from_f64(pause_ratio)),
    ])
}

fn metric(report: &Value, section: &str, key: &str) -> Option<f64> {
    report.get(section)?.get(key)?.as_f64()
}

/// In-run invariants a report must satisfy regardless of any baseline:
/// the sharded record path must beat the mutex reference measured in
/// the same process on the same machine. Returns violation messages
/// (empty = pass).
#[must_use]
pub fn gate_failures(report: &Value) -> Vec<String> {
    let mut failures = Vec::new();
    let pairs = [
        ("sharded_single_ns", "mutex_single_ns"),
        ("sharded_contended_ns", "mutex_contended_ns"),
    ];
    for (sharded_key, mutex_key) in pairs {
        match (
            metric(report, "record_path", sharded_key),
            metric(report, "record_path", mutex_key),
        ) {
            (Some(sharded), Some(mutex)) => {
                if sharded >= mutex {
                    failures.push(format!(
                        "record_path.{sharded_key} = {sharded:.1} ns does not beat \
                         the in-run mutex reference {mutex_key} = {mutex:.1} ns"
                    ));
                }
            }
            _ => failures.push(format!(
                "report is missing record_path.{sharded_key} / record_path.{mutex_key}"
            )),
        }
    }
    if report.get("partial_reconfig_pause").is_some() {
        match (
            metric(report, "partial_reconfig_pause", "partial_pause_ms"),
            metric(report, "partial_reconfig_pause", "full_pause_ms"),
        ) {
            (Some(partial), Some(full)) if partial > 0.0 => {
                let ratio = full / partial;
                if ratio < 4.0 {
                    failures.push(format!(
                        "partial_reconfig_pause: partial pause {partial:.2} ms is only \
                         {ratio:.1}x better than the full drain's {full:.2} ms \
                         (the delta path must pause at least 4x less)"
                    ));
                }
            }
            _ => failures.push(
                "report is missing or zeroed partial_reconfig_pause.partial_pause_ms / \
                 partial_reconfig_pause.full_pause_ms"
                    .to_string(),
            ),
        }
    }
    if report.get("overload").is_some() {
        match (
            metric(report, "overload", "open_p99_secs"),
            metric(report, "overload", "shed_p99_secs"),
        ) {
            (Some(open), Some(shed)) if shed > 0.0 => {
                let ratio = open / shed;
                if ratio < crate::overload::P99_RATIO_FLOOR {
                    failures.push(format!(
                        "overload: shed p99 {shed:.2} s is only {ratio:.1}x under the \
                         open queue's {open:.2} s (the gate must bound admitted-request \
                         latency at least {:.0}x below open admission)",
                        crate::overload::P99_RATIO_FLOOR
                    ));
                }
            }
            _ => failures.push(
                "report is missing or zeroed overload.open_p99_secs / overload.shed_p99_secs"
                    .to_string(),
            ),
        }
        match (
            metric(report, "overload", "saturation_throughput"),
            metric(report, "overload", "shed_goodput_throughput"),
        ) {
            (Some(saturation), Some(goodput)) if saturation > 0.0 => {
                let fraction = goodput / saturation;
                if fraction < crate::overload::GOODPUT_FLOOR {
                    failures.push(format!(
                        "overload: shed goodput {goodput:.2}/s is only {:.0} % of the \
                         saturation throughput {saturation:.2}/s (must hold >= {:.0} %)",
                        fraction * 100.0,
                        crate::overload::GOODPUT_FLOOR * 100.0
                    ));
                }
            }
            _ => failures.push(
                "report is missing or zeroed overload.saturation_throughput / \
                 overload.shed_goodput_throughput"
                    .to_string(),
            ),
        }
        match metric(report, "overload", "block_lost") {
            Some(lost) => {
                if lost != 0.0 {
                    failures.push(format!(
                        "overload: Block admission lost {lost:.0} request(s) — closed-loop \
                         backpressure must complete every offer"
                    ));
                }
            }
            None => failures.push("report is missing overload.block_lost".to_string()),
        }
    }
    failures
}

/// The (section, key) pairs [`compare`] diffs; for each, larger is
/// worse.
pub const COMPARED_METRICS: &[(&str, &str)] = &[
    ("record_path", "sharded_single_ns"),
    ("record_path", "sharded_contended_ns"),
    ("snapshot", "snapshot_micros"),
    ("reconfigure", "mean_pause_ms"),
    ("partial_reconfig_pause", "full_pause_ms"),
    ("overload", "shed_p99_secs"),
    ("fig11", "wall_secs"),
];

/// Configuration keys per section: a section is only comparable when
/// every one of these matches between the two reports (a 200-request
/// sweep is not slower than a 500-request one just because it ran
/// longer).
const SECTION_CONFIG: &[(&str, &[&str])] = &[
    ("record_path", &["iters_per_thread", "threads"]),
    ("snapshot", &["paths", "records_per_path"]),
    ("reconfigure", &["videos"]),
    (
        "partial_reconfig_pause",
        &["paths", "fine_items", "coarse_items"],
    ),
    (
        "overload",
        &["requests", "load_factor", "high_water", "capacity"],
    ),
    ("fig11", &["loads", "requests", "apps"]),
];

fn config_matches(current: &Value, baseline: &Value, section: &str) -> bool {
    let keys = SECTION_CONFIG
        .iter()
        .find(|(s, _)| *s == section)
        .map_or(&[][..], |(_, keys)| keys);
    keys.iter().all(|key| {
        metric(current, section, key).map(f64::to_bits)
            == metric(baseline, section, key).map(f64::to_bits)
    })
}

/// Diffs `current` against `baseline`: any [`COMPARED_METRICS`] entry
/// that grew by more than `threshold` (fractional, e.g. 0.75 = +75 %)
/// is a regression. Metrics absent or zero on either side are skipped —
/// a missing probe is a schema problem, not a perf regression — as are
/// sections whose run configuration (iteration counts, request counts)
/// differs between the two reports. Returns regression messages (empty
/// = pass).
#[must_use]
pub fn compare(current: &Value, baseline: &Value, threshold: f64) -> Vec<String> {
    let mut regressions = Vec::new();
    for &(section, key) in COMPARED_METRICS {
        if !config_matches(current, baseline, section) {
            continue;
        }
        let (Some(cur), Some(base)) = (
            metric(current, section, key),
            metric(baseline, section, key),
        ) else {
            continue;
        };
        if base <= 0.0 || cur <= 0.0 {
            continue;
        }
        let growth = cur / base - 1.0;
        if growth > threshold {
            regressions.push(format!(
                "{section}.{key}: {cur:.1} vs baseline {base:.1} \
                 (+{:.0} %, threshold +{:.0} %)",
                growth * 100.0,
                threshold * 100.0
            ));
        }
    }
    regressions
}

/// Renders the report as a short human-readable summary.
#[must_use]
pub fn summary(report: &Value) -> String {
    let mut out = String::from("== perf gate ==\n");
    for &(section, key) in &[
        ("record_path", "sharded_single_ns"),
        ("record_path", "sharded_contended_ns"),
        ("record_path", "mutex_single_ns"),
        ("record_path", "mutex_contended_ns"),
        ("snapshot", "snapshot_micros"),
        ("reconfigure", "mean_pause_ms"),
        ("reconfigure", "mean_relaunch_ms"),
        ("partial_reconfig_pause", "partial_pause_ms"),
        ("partial_reconfig_pause", "full_pause_ms"),
        ("partial_reconfig_pause", "pause_ratio"),
        ("overload", "saturation_throughput"),
        ("overload", "open_p99_secs"),
        ("overload", "shed_p99_secs"),
        ("overload", "shed_goodput_throughput"),
        ("overload", "shed_fraction"),
        ("fig11", "wall_secs"),
    ] {
        if let Some(v) = metric(report, section, key) {
            out.push_str(&format!("{section:>12}.{key:<22} {v:>12.2}\n"));
        }
    }
    out
}

/// Round-trips the report through the strict JSON codec, panicking on
/// any asymmetry — run before every write so a malformed report can
/// never become the checked-in baseline.
#[must_use]
pub fn to_validated_json(report: &Value) -> String {
    let text = report.to_json();
    let reparsed = parse(&text).expect("perf report must round-trip the strict codec");
    assert_eq!(&reparsed, report, "perf report JSON round-trip drifted");
    text + "\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report(sharded: f64, mutex: f64, snap: f64) -> Value {
        obj(vec![
            ("schema", Value::String(SCHEMA.to_string())),
            (
                "record_path",
                obj(vec![
                    ("sharded_single_ns", Value::from_f64(sharded)),
                    ("sharded_contended_ns", Value::from_f64(sharded * 1.1)),
                    ("mutex_single_ns", Value::from_f64(mutex)),
                    ("mutex_contended_ns", Value::from_f64(mutex * 4.0)),
                ]),
            ),
            (
                "snapshot",
                obj(vec![("snapshot_micros", Value::from_f64(snap))]),
            ),
        ])
    }

    #[test]
    fn gate_accepts_sharded_wins_and_rejects_losses() {
        assert!(gate_failures(&tiny_report(12.0, 150.0, 80.0)).is_empty());
        // sharded 700/770 ns vs mutex 150/600 ns: both comparisons lose.
        let failures = gate_failures(&tiny_report(700.0, 150.0, 80.0));
        assert_eq!(failures.len(), 2, "{failures:?}");
    }

    #[test]
    fn compare_flags_only_gross_growth() {
        let base = tiny_report(10.0, 150.0, 100.0);
        let same = tiny_report(11.0, 150.0, 110.0);
        assert!(compare(&same, &base, 0.5).is_empty());
        let slow = tiny_report(40.0, 150.0, 400.0);
        let regressions = compare(&slow, &base, 0.5);
        assert_eq!(regressions.len(), 3, "{regressions:?}");
        // Missing sections in the baseline are skipped, not errors.
        let sparse = obj(vec![("schema", Value::String(SCHEMA.to_string()))]);
        assert!(compare(&slow, &sparse, 0.5).is_empty());
    }

    #[test]
    fn gate_enforces_the_partial_pause_ratio() {
        let with_ratio = |partial: f64, full: f64| {
            obj(vec![
                ("schema", Value::String(SCHEMA.to_string())),
                (
                    "record_path",
                    obj(vec![
                        ("sharded_single_ns", Value::from_f64(12.0)),
                        ("sharded_contended_ns", Value::from_f64(14.0)),
                        ("mutex_single_ns", Value::from_f64(150.0)),
                        ("mutex_contended_ns", Value::from_f64(600.0)),
                    ]),
                ),
                (
                    "partial_reconfig_pause",
                    obj(vec![
                        ("partial_pause_ms", Value::from_f64(partial)),
                        ("full_pause_ms", Value::from_f64(full)),
                    ]),
                ),
            ])
        };
        assert!(gate_failures(&with_ratio(2.0, 20.0)).is_empty());
        let weak = gate_failures(&with_ratio(8.0, 20.0));
        assert_eq!(weak.len(), 1, "{weak:?}");
        // A probe that never saw a reconfiguration is a failure, not a pass.
        let empty = gate_failures(&with_ratio(0.0, 20.0));
        assert_eq!(empty.len(), 1, "{empty:?}");
        // Reports without the section (pre-probe baselines) are not judged.
        assert!(gate_failures(&tiny_report(12.0, 150.0, 80.0)).is_empty());
    }

    #[test]
    fn gate_enforces_the_overload_frontier() {
        let with_overload = |shed_p99: f64, goodput: f64, lost: f64| {
            obj(vec![
                ("schema", Value::String(SCHEMA.to_string())),
                (
                    "record_path",
                    obj(vec![
                        ("sharded_single_ns", Value::from_f64(12.0)),
                        ("sharded_contended_ns", Value::from_f64(14.0)),
                        ("mutex_single_ns", Value::from_f64(150.0)),
                        ("mutex_contended_ns", Value::from_f64(600.0)),
                    ]),
                ),
                (
                    "overload",
                    obj(vec![
                        ("open_p99_secs", Value::from_f64(40.0)),
                        ("shed_p99_secs", Value::from_f64(shed_p99)),
                        ("saturation_throughput", Value::from_f64(10.0)),
                        ("shed_goodput_throughput", Value::from_f64(goodput)),
                        ("block_lost", Value::from_f64(lost)),
                    ]),
                ),
            ])
        };
        // Bounded p99, healthy goodput, lossless block: pass.
        assert!(gate_failures(&with_overload(2.0, 9.5, 0.0)).is_empty());
        // p99 only 2x under open: the latency bound fails.
        assert_eq!(gate_failures(&with_overload(20.0, 9.5, 0.0)).len(), 1);
        // Goodput collapsed to 50 % of saturation: the goodput floor fails.
        assert_eq!(gate_failures(&with_overload(2.0, 5.0, 0.0)).len(), 1);
        // Block lost requests: closed-loop backpressure is broken.
        assert_eq!(gate_failures(&with_overload(2.0, 9.5, 3.0)).len(), 1);
    }

    #[test]
    fn compare_skips_sections_with_mismatched_config() {
        let snap = |records: u64, micros: f64| {
            obj(vec![(
                "snapshot",
                obj(vec![
                    ("paths", Value::Number(8)),
                    ("records_per_path", Value::Number(records)),
                    ("snapshot_micros", Value::from_f64(micros)),
                ]),
            )])
        };
        // 10x slower but over 10x the records: not comparable, skipped.
        assert!(compare(&snap(200_000, 150.0), &snap(20_000, 15.0), 0.5).is_empty());
        // Same config, 10x slower: flagged.
        assert_eq!(
            compare(&snap(20_000, 150.0), &snap(20_000, 15.0), 0.5).len(),
            1
        );
    }

    #[test]
    fn report_round_trips_the_strict_codec() {
        let report = tiny_report(10.0, 150.0, 100.0);
        let text = to_validated_json(&report);
        assert_eq!(parse(text.trim()).expect("parse"), report);
        assert!(summary(&report).contains("sharded_single_ns"));
    }
}
