//! The perf gate: pinned microbenches emitting `BENCH_perf.json`.
//!
//! Four probes, each guarding one latency the DoPE stack promises to
//! keep small (see `docs/performance.md`):
//!
//! 1. **record path** — ns/op of the sharded task-completion record,
//!    single-threaded and contended, measured side by side with a
//!    replica of the retired shared-mutex design
//!    ([`dope_runtime::perf::bench_record_path`]) so every report
//!    carries a same-machine before/after;
//! 2. **snapshot** — `Monitor::snapshot` latency over a populated path
//!    set ([`dope_runtime::perf::bench_snapshot`]);
//! 3. **reconfigure** — pause/relaunch latency of a real suspend +
//!    relaunch cycle, read back from a flight recording of a live
//!    transcode run;
//! 4. **fig11** — wall time of an end-to-end figure-11 sweep, the
//!    macro-level canary.
//!
//! The report is strict-codec JSON (`dope_core::json`), diffable with
//! [`compare`] against a checked-in baseline
//! (`results/perf-baseline.json`); [`gate_failures`] additionally
//! enforces the in-run invariant that the sharded record path beats the
//! mutex reference.

use dope_apps::transcode;
use dope_core::json::{parse, Value};
use dope_core::Goal;
use dope_mechanisms::WqLinear;
use dope_trace::{Recorder, TraceEvent};
use std::time::{Duration, Instant};

/// Schema tag carried by every report.
pub const SCHEMA: &str = "dope-bench-perf/v1";

/// Comparison threshold used when the caller does not pass one: a
/// metric may grow by 75 % before the gate fails. Deliberately
/// generous — the gate exists to catch gross regressions (a lock back
/// on the hot path, an accidentally quadratic snapshot), not scheduler
/// jitter.
pub const DEFAULT_THRESHOLD: f64 = 0.75;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Runs every probe and assembles the `BENCH_perf.json` report.
///
/// `quick` shrinks iteration counts to CI-smoke size (about a second of
/// wall time); the full configuration pins each probe long enough for
/// stable numbers.
#[must_use]
pub fn run(quick: bool) -> Value {
    let record_iters: u64 = if quick { 200_000 } else { 2_000_000 };
    let threads: u32 = 8;
    let snapshot_paths: u32 = 8;
    let snapshot_records: u64 = if quick { 20_000 } else { 200_000 };
    let snapshot_samples: u32 = if quick { 20 } else { 100 };

    println!("perf: record path ({record_iters} iters, {threads} threads)");
    let record = dope_runtime::perf::bench_record_path(record_iters, threads);

    println!("perf: snapshot ({snapshot_paths} paths x {snapshot_records} records)");
    let snapshot =
        dope_runtime::perf::bench_snapshot(snapshot_paths, snapshot_records, snapshot_samples);

    println!("perf: reconfigure pause (live transcode run)");
    let reconfigure = bench_reconfigure(quick);

    let fig11_loads = if quick {
        vec![0.8]
    } else {
        crate::load_factors(true)
    };
    let fig11_requests = if quick {
        200
    } else {
        crate::request_count(true)
    };
    println!(
        "perf: fig11 sweep ({} load(s) x {fig11_requests} requests)",
        fig11_loads.len()
    );
    let t0 = Instant::now();
    let sweeps = crate::fig11::run(&fig11_loads, fig11_requests);
    let fig11_wall = t0.elapsed().as_secs_f64();
    let fig11_apps = sweeps.len() as u64;

    obj(vec![
        ("schema", Value::String(SCHEMA.to_string())),
        ("quick", Value::Bool(quick)),
        (
            "record_path",
            obj(vec![
                ("iters_per_thread", Value::Number(record.iters_per_thread)),
                ("threads", Value::Number(u64::from(record.threads))),
                (
                    "sharded_single_ns",
                    Value::from_f64(record.sharded_single_ns),
                ),
                (
                    "sharded_contended_ns",
                    Value::from_f64(record.sharded_contended_ns),
                ),
                ("mutex_single_ns", Value::from_f64(record.mutex_single_ns)),
                (
                    "mutex_contended_ns",
                    Value::from_f64(record.mutex_contended_ns),
                ),
            ]),
        ),
        (
            "snapshot",
            obj(vec![
                ("paths", Value::Number(u64::from(snapshot.paths))),
                ("records_per_path", Value::Number(snapshot.records_per_path)),
                ("snapshot_micros", Value::from_f64(snapshot.snapshot_micros)),
            ]),
        ),
        ("reconfigure", reconfigure),
        (
            "fig11",
            obj(vec![
                ("apps", Value::Number(fig11_apps)),
                ("loads", Value::Number(fig11_loads.len() as u64)),
                ("requests", Value::Number(fig11_requests as u64)),
                ("wall_secs", Value::from_f64(fig11_wall)),
            ]),
        ),
    ])
}

/// Runs a short live transcode under WQ-Linear with a flight recorder
/// attached and reads the reconfiguration pause/relaunch latencies back
/// out of the recording.
fn bench_reconfigure(quick: bool) -> Value {
    let videos: u64 = if quick { 24 } else { 96 };
    let (service, descriptor) = transcode::live_service();
    let recorder = Recorder::bounded(4096);
    let launched = dope_runtime::Dope::builder(Goal::MinResponseTime { threads: 4 })
        .mechanism(Box::new(WqLinear::new(1, 4, 8.0)))
        .control_period(Duration::from_millis(10))
        .queue_probe(service.queue_probe())
        .recorder(recorder.clone())
        .launch(descriptor);
    let dope = match launched {
        Ok(dope) => dope,
        Err(err) => {
            return obj(vec![(
                "error",
                Value::String(format!("launch failed: {err}")),
            )])
        }
    };
    let params = transcode::VideoParams {
        frames: 4,
        width: 32,
        height: 32,
    };
    for id in 0..videos {
        let _ = service.queue.enqueue(transcode::make_video(id, params));
    }
    service.queue.close();
    let _ = dope.wait();

    let mut pauses = Vec::new();
    let mut relaunches = Vec::new();
    for record in recorder.records() {
        if let TraceEvent::ReconfigureEpoch {
            pause_secs,
            relaunch_secs,
            ..
        } = record.event
        {
            pauses.push(pause_secs);
            relaunches.push(relaunch_secs);
        }
    }
    let mean = |xs: &[f64]| {
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    };
    obj(vec![
        ("videos", Value::Number(videos)),
        ("epochs", Value::Number(pauses.len() as u64)),
        ("mean_pause_ms", Value::from_f64(mean(&pauses) * 1e3)),
        ("mean_relaunch_ms", Value::from_f64(mean(&relaunches) * 1e3)),
    ])
}

fn metric(report: &Value, section: &str, key: &str) -> Option<f64> {
    report.get(section)?.get(key)?.as_f64()
}

/// In-run invariants a report must satisfy regardless of any baseline:
/// the sharded record path must beat the mutex reference measured in
/// the same process on the same machine. Returns violation messages
/// (empty = pass).
#[must_use]
pub fn gate_failures(report: &Value) -> Vec<String> {
    let mut failures = Vec::new();
    let pairs = [
        ("sharded_single_ns", "mutex_single_ns"),
        ("sharded_contended_ns", "mutex_contended_ns"),
    ];
    for (sharded_key, mutex_key) in pairs {
        match (
            metric(report, "record_path", sharded_key),
            metric(report, "record_path", mutex_key),
        ) {
            (Some(sharded), Some(mutex)) => {
                if sharded >= mutex {
                    failures.push(format!(
                        "record_path.{sharded_key} = {sharded:.1} ns does not beat \
                         the in-run mutex reference {mutex_key} = {mutex:.1} ns"
                    ));
                }
            }
            _ => failures.push(format!(
                "report is missing record_path.{sharded_key} / record_path.{mutex_key}"
            )),
        }
    }
    failures
}

/// The (section, key) pairs [`compare`] diffs; for each, larger is
/// worse.
pub const COMPARED_METRICS: &[(&str, &str)] = &[
    ("record_path", "sharded_single_ns"),
    ("record_path", "sharded_contended_ns"),
    ("snapshot", "snapshot_micros"),
    ("reconfigure", "mean_pause_ms"),
    ("fig11", "wall_secs"),
];

/// Configuration keys per section: a section is only comparable when
/// every one of these matches between the two reports (a 200-request
/// sweep is not slower than a 500-request one just because it ran
/// longer).
const SECTION_CONFIG: &[(&str, &[&str])] = &[
    ("record_path", &["iters_per_thread", "threads"]),
    ("snapshot", &["paths", "records_per_path"]),
    ("reconfigure", &["videos"]),
    ("fig11", &["loads", "requests", "apps"]),
];

fn config_matches(current: &Value, baseline: &Value, section: &str) -> bool {
    let keys = SECTION_CONFIG
        .iter()
        .find(|(s, _)| *s == section)
        .map_or(&[][..], |(_, keys)| keys);
    keys.iter().all(|key| {
        metric(current, section, key).map(f64::to_bits)
            == metric(baseline, section, key).map(f64::to_bits)
    })
}

/// Diffs `current` against `baseline`: any [`COMPARED_METRICS`] entry
/// that grew by more than `threshold` (fractional, e.g. 0.75 = +75 %)
/// is a regression. Metrics absent or zero on either side are skipped —
/// a missing probe is a schema problem, not a perf regression — as are
/// sections whose run configuration (iteration counts, request counts)
/// differs between the two reports. Returns regression messages (empty
/// = pass).
#[must_use]
pub fn compare(current: &Value, baseline: &Value, threshold: f64) -> Vec<String> {
    let mut regressions = Vec::new();
    for &(section, key) in COMPARED_METRICS {
        if !config_matches(current, baseline, section) {
            continue;
        }
        let (Some(cur), Some(base)) = (
            metric(current, section, key),
            metric(baseline, section, key),
        ) else {
            continue;
        };
        if base <= 0.0 || cur <= 0.0 {
            continue;
        }
        let growth = cur / base - 1.0;
        if growth > threshold {
            regressions.push(format!(
                "{section}.{key}: {cur:.1} vs baseline {base:.1} \
                 (+{:.0} %, threshold +{:.0} %)",
                growth * 100.0,
                threshold * 100.0
            ));
        }
    }
    regressions
}

/// Renders the report as a short human-readable summary.
#[must_use]
pub fn summary(report: &Value) -> String {
    let mut out = String::from("== perf gate ==\n");
    for &(section, key) in &[
        ("record_path", "sharded_single_ns"),
        ("record_path", "sharded_contended_ns"),
        ("record_path", "mutex_single_ns"),
        ("record_path", "mutex_contended_ns"),
        ("snapshot", "snapshot_micros"),
        ("reconfigure", "mean_pause_ms"),
        ("reconfigure", "mean_relaunch_ms"),
        ("fig11", "wall_secs"),
    ] {
        if let Some(v) = metric(report, section, key) {
            out.push_str(&format!("{section:>12}.{key:<22} {v:>12.2}\n"));
        }
    }
    out
}

/// Round-trips the report through the strict JSON codec, panicking on
/// any asymmetry — run before every write so a malformed report can
/// never become the checked-in baseline.
#[must_use]
pub fn to_validated_json(report: &Value) -> String {
    let text = report.to_json();
    let reparsed = parse(&text).expect("perf report must round-trip the strict codec");
    assert_eq!(&reparsed, report, "perf report JSON round-trip drifted");
    text + "\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report(sharded: f64, mutex: f64, snap: f64) -> Value {
        obj(vec![
            ("schema", Value::String(SCHEMA.to_string())),
            (
                "record_path",
                obj(vec![
                    ("sharded_single_ns", Value::from_f64(sharded)),
                    ("sharded_contended_ns", Value::from_f64(sharded * 1.1)),
                    ("mutex_single_ns", Value::from_f64(mutex)),
                    ("mutex_contended_ns", Value::from_f64(mutex * 4.0)),
                ]),
            ),
            (
                "snapshot",
                obj(vec![("snapshot_micros", Value::from_f64(snap))]),
            ),
        ])
    }

    #[test]
    fn gate_accepts_sharded_wins_and_rejects_losses() {
        assert!(gate_failures(&tiny_report(12.0, 150.0, 80.0)).is_empty());
        // sharded 700/770 ns vs mutex 150/600 ns: both comparisons lose.
        let failures = gate_failures(&tiny_report(700.0, 150.0, 80.0));
        assert_eq!(failures.len(), 2, "{failures:?}");
    }

    #[test]
    fn compare_flags_only_gross_growth() {
        let base = tiny_report(10.0, 150.0, 100.0);
        let same = tiny_report(11.0, 150.0, 110.0);
        assert!(compare(&same, &base, 0.5).is_empty());
        let slow = tiny_report(40.0, 150.0, 400.0);
        let regressions = compare(&slow, &base, 0.5);
        assert_eq!(regressions.len(), 3, "{regressions:?}");
        // Missing sections in the baseline are skipped, not errors.
        let sparse = obj(vec![("schema", Value::String(SCHEMA.to_string()))]);
        assert!(compare(&slow, &sparse, 0.5).is_empty());
    }

    #[test]
    fn compare_skips_sections_with_mismatched_config() {
        let snap = |records: u64, micros: f64| {
            obj(vec![(
                "snapshot",
                obj(vec![
                    ("paths", Value::Number(8)),
                    ("records_per_path", Value::Number(records)),
                    ("snapshot_micros", Value::from_f64(micros)),
                ]),
            )])
        };
        // 10x slower but over 10x the records: not comparable, skipped.
        assert!(compare(&snap(200_000, 150.0), &snap(20_000, 15.0), 0.5).is_empty());
        // Same config, 10x slower: flagged.
        assert_eq!(
            compare(&snap(20_000, 150.0), &snap(20_000, 15.0), 0.5).len(),
            1
        );
    }

    #[test]
    fn report_round_trips_the_strict_codec() {
        let report = tiny_report(10.0, 150.0, 100.0);
        let text = to_validated_json(&report);
        assert_eq!(parse(text.trim()).expect("parse"), report);
        assert!(summary(&report).contains("sharded_single_ns"));
    }
}
