//! Runs quick versions of every figure/table regeneration as part of
//! `cargo bench`, printing the paper-shaped tables.
fn main() {
    println!("# DoPE evaluation regeneration (quick mode)\n");
    let f2 = dope_bench::fig02::report(true);
    assert!(dope_bench::fig02::shape_holds(&f2), "figure 2 shape");
    println!();
    let f11 = dope_bench::fig11::report(true);
    for sweep in &f11 {
        assert!(
            dope_bench::fig11::shape_holds(sweep),
            "figure 11 shape: {}",
            sweep.name
        );
    }
    let f12 = dope_bench::fig12::report(true);
    assert!(dope_bench::fig12::shape_holds(&f12), "figure 12 shape");
    println!();
    let f13 = dope_bench::fig13::report(true);
    assert!(dope_bench::fig13::shape_holds(&f13), "figure 13 shape");
    println!();
    let f14 = dope_bench::fig14::report(true);
    assert!(dope_bench::fig14::shape_holds(&f14), "figure 14 shape");
    println!();
    let f15 = dope_bench::fig15::report(true);
    assert!(dope_bench::fig15::shape_holds(&f15), "figure 15 shape");
    println!();
    dope_bench::tables::report_table3();
    println!();
    dope_bench::tables::report_table4();
    println!();
    dope_bench::ablations::report(true);
}
