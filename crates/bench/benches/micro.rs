//! Criterion microbenchmarks: monitoring overhead, queue operations,
//! mechanism decision cost, and kernel throughput.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_monitoring(c: &mut Criterion) {
    use dope_core::{MonitorSnapshot, TaskStats};
    let mut snap = MonitorSnapshot::at(1.0);
    for i in 0..6u16 {
        snap.tasks.insert(
            dope_core::TaskPath::root_child(0).child(i),
            TaskStats {
                invocations: 100,
                mean_exec_secs: 0.01,
                throughput: 50.0,
                load: 2.0,
                utilization: 0.8,
                ..Default::default()
            },
        );
    }
    c.bench_function("snapshot_slowest_task", |b| {
        b.iter(|| std::hint::black_box(snap.slowest_task()))
    });
}

fn bench_histogram(c: &mut Criterion) {
    use dope_metrics::{Histogram, MetricsRegistry};
    let hist = Histogram::new();
    let mut i: u64 = 0;
    c.bench_function("histogram_record_nanos", |b| {
        b.iter(|| {
            i = i.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            hist.record_nanos(std::hint::black_box(i >> 34));
        })
    });
    c.bench_function("histogram_quantile_p99", |b| {
        b.iter(|| std::hint::black_box(hist.quantile_secs(0.99)))
    });
    let registry = MetricsRegistry::new();
    let gauge = registry.gauge("dope_bench_gauge", "microbench gauge");
    c.bench_function("registry_gauge_set", |b| {
        b.iter(|| gauge.set(std::hint::black_box(42.0)))
    });
}

fn bench_queue(c: &mut Criterion) {
    use dope_workload::WorkQueue;
    let q = WorkQueue::new();
    c.bench_function("workqueue_enq_deq", |b| {
        b.iter(|| {
            q.enqueue(1u64).unwrap();
            std::hint::black_box(q.try_dequeue())
        })
    });
}

fn bench_mechanism(c: &mut Criterion) {
    use dope_core::{Mechanism, Resources, StaticMechanism};
    let model = dope_apps::ferret::sim_model();
    let shape = model.shape().clone();
    let config = model.config_even(24);
    let mut tbf = dope_mechanisms::Tbf::new();
    let mut snap = dope_core::MonitorSnapshot::at(1.0);
    for (i, s) in model.stages(0).iter().enumerate() {
        snap.tasks.insert(
            dope_core::TaskPath::root_child(0).child(i as u16),
            dope_core::TaskStats {
                invocations: 100,
                mean_exec_secs: s.mean_service_secs,
                throughput: 10.0,
                load: 1.0,
                utilization: 0.9,
                ..Default::default()
            },
        );
    }
    let res = Resources::threads(24);
    c.bench_function("tbf_reconfigure", |b| {
        b.iter(|| std::hint::black_box(tbf.reconfigure(&snap, &config, &shape, &res)))
    });
    let mut stat = StaticMechanism::new(config.clone());
    c.bench_function("static_reconfigure", |b| {
        b.iter(|| std::hint::black_box(stat.reconfigure(&snap, &config, &shape, &res)))
    });
}

fn bench_kernels(c: &mut Criterion) {
    use dope_apps::kernels::{compress, frames, oilify, search};
    let frame = frames::Frame::synthetic(64, 64, 1);
    c.bench_function("encode_frame_64x64", |b| {
        b.iter(|| std::hint::black_box(frames::encode_frame(&frame, 8.0)))
    });
    let block = compress::synthetic_block(4096, 1);
    c.bench_function("compress_block_4k", |b| {
        b.iter(|| std::hint::black_box(compress::compress_block(&block)))
    });
    let img = oilify::Image::synthetic(64, 64, 1);
    c.bench_function("oilify_64x64_r3", |b| {
        b.iter(|| std::hint::black_box(oilify::oilify(&img, 3)))
    });
    let corpus = search::Corpus::synthetic(1000, 1);
    let query = search::QueryImage::synthetic(2);
    c.bench_function("ferret_query_1k_corpus", |b| {
        b.iter(|| std::hint::black_box(search::search(&corpus, &query, 10)))
    });
}

fn bench_sim(c: &mut Criterion) {
    use dope_core::{Resources, StaticMechanism};
    use dope_sim::system::{run_system, SystemParams};
    use dope_workload::ArrivalSchedule;
    let model = dope_apps::transcode::sim_model();
    let schedule = ArrivalSchedule::for_load_factor(0.8, model.max_throughput(24, 1), 200, 1);
    c.bench_function("sim_system_200_requests", |b| {
        b.iter(|| {
            let mut mech = StaticMechanism::new(model.config_for_width(24, 8));
            std::hint::black_box(run_system(
                &model,
                &schedule,
                &mut mech,
                Resources::threads(24),
                &SystemParams::default(),
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_monitoring,
    bench_histogram,
    bench_queue,
    bench_mechanism,
    bench_kernels,
    bench_sim
);
criterion_main!(benches);
