//! Bridges the simulator's observer hooks onto a [`Recorder`].
//!
//! `dope-sim` exposes its decision loop through the
//! [`SimObserver`] trait; [`RecordingObserver`]
//! implements that trait by translating each hook into the corresponding
//! [`TraceEvent`] and appending it to a [`Recorder`] — stamped with
//! **simulated** seconds, so replaying the trace reproduces the original
//! timeline exactly.
//!
//! # Example
//!
//! ```
//! use dope_core::{Mechanism, Resources, StaticMechanism};
//! use dope_sim::profile::AmdahlProfile;
//! use dope_sim::system::{run_system_observed, SystemParams, TwoLevelModel};
//! use dope_trace::{Recorder, RecordingObserver};
//! use dope_workload::ArrivalSchedule;
//!
//! let model = TwoLevelModel::doall("price", AmdahlProfile::new(4.0, 0.9, 0.0, 0.05));
//! let mut mech = StaticMechanism::new(model.config_for_width(8, 4));
//! let recorder = Recorder::bounded(4096);
//! let mut observer = RecordingObserver::new(recorder.clone());
//! let outcome = run_system_observed(
//!     &model,
//!     &ArrivalSchedule::uniform(1.0, 5),
//!     &mut mech,
//!     Resources::threads(8),
//!     &SystemParams::default(),
//!     &mut observer,
//! );
//! observer.finished(outcome.completed, 0);
//! assert_eq!(recorder.records()[0].event.kind(), "Launched");
//! assert_eq!(recorder.records().last().unwrap().event.kind(), "Finished");
//! ```

use dope_core::{realized_throughput, Config, DecisionTrace, MonitorSnapshot, ProgramShape};
use dope_sim::{ProposalOutcome, SimObserver};

use crate::admission::AdmissionSampler;
use crate::event::{TraceEvent, Verdict};
use crate::recorder::Recorder;

/// A [`SimObserver`] that records the decision loop into a [`Recorder`].
///
/// Decisions ([`decision_explained`](SimObserver::decision_explained))
/// are *held for one epoch*: the observer scores the mechanism's
/// throughput prediction against the next monitor snapshot's realized
/// bottleneck throughput, then emits a `DecisionTraced` event carrying
/// both sides and the signed relative error. The final decision of a run
/// has no next snapshot and is flushed unscored by
/// [`finished`](RecordingObserver::finished).
#[derive(Debug, Clone)]
pub struct RecordingObserver {
    recorder: Recorder,
    goal: String,
    last_time_secs: f64,
    pending_decision: Option<(f64, String, DecisionTrace)>,
    // The configuration last seen in force (launch or applied), used to
    // classify each applied config as a full or partial (delta)
    // reconfiguration with the same `Config::delta_paths` rule the live
    // executive uses — so sim and live traces stay comparable.
    last_config: Option<Config>,
    // Present when the run declares an admission policy: each snapshot
    // with offered traffic then yields one `AdmissionDecision` sample.
    admission: Option<AdmissionSampler>,
}

impl RecordingObserver {
    /// Wraps `recorder`; the `Launched` event will carry an empty goal.
    #[must_use]
    pub fn new(recorder: Recorder) -> Self {
        RecordingObserver {
            recorder,
            goal: String::new(),
            last_time_secs: 0.0,
            pending_decision: None,
            last_config: None,
            admission: None,
        }
    }

    /// Emits one pending decision, scored against `realized` (the
    /// bottleneck throughput of the snapshot that followed it), stamped
    /// at the decision's own time.
    fn emit_decision(
        &mut self,
        time_secs: f64,
        mechanism: String,
        trace: DecisionTrace,
        realized: Option<f64>,
    ) {
        let prediction_error = match (trace.predicted_throughput, realized) {
            (Some(predicted), Some(realized)) if realized > 0.0 => {
                Some((predicted - realized) / realized)
            }
            _ => None,
        };
        self.last_time_secs = self.last_time_secs.max(time_secs);
        self.recorder.record_at(
            time_secs,
            TraceEvent::DecisionTraced {
                mechanism,
                rationale: trace.rationale,
                observed: trace.observed,
                candidates: trace.candidates,
                chosen: trace.chosen,
                predicted_throughput: trace.predicted_throughput,
                realized_throughput: realized,
                prediction_error,
            },
        );
    }

    /// Sets the goal string stamped into the `Launched` event.
    #[must_use]
    pub fn with_goal(mut self, goal: impl Into<String>) -> Self {
        self.goal = goal.into();
        self
    }

    /// Declares the admission policy of the recorded run (its stable
    /// lowercase tag, e.g. `"shed"`). Each subsequent snapshot whose
    /// admission counters show offered traffic emits one
    /// `AdmissionDecision` sample stamped with this tag.
    #[must_use]
    pub fn with_admission_policy(mut self, policy: impl Into<String>) -> Self {
        self.admission = Some(AdmissionSampler::new(policy));
        self
    }

    /// The wrapped recorder handle.
    #[must_use]
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Records the terminal `Finished` event. The simulator has no
    /// explicit shutdown hook, so callers invoke this once the run
    /// returns.
    pub fn finished(&mut self, completed: u64, reconfigurations: u64) {
        // The run is over: the last decision has no follow-up snapshot
        // to score against, so it goes out unscored.
        if let Some((at, mechanism, trace)) = self.pending_decision.take() {
            self.emit_decision(at, mechanism, trace, None);
        }
        let dropped = self.recorder.dropped();
        self.recorder.record_at(
            self.last_time_secs,
            TraceEvent::Finished {
                completed,
                reconfigurations,
                dropped_events: dropped,
            },
        );
    }
}

impl SimObserver for RecordingObserver {
    fn launched(&mut self, mechanism: &str, threads: u32, shape: &ProgramShape, config: &Config) {
        self.recorder.record_at(
            0.0,
            TraceEvent::Launched {
                mechanism: mechanism.to_string(),
                goal: self.goal.clone(),
                threads,
                shape: shape.clone(),
                config: config.clone(),
            },
        );
        self.last_config = Some(config.clone());
    }

    fn snapshot_taken(&mut self, snapshot: &MonitorSnapshot) {
        self.last_time_secs = self.last_time_secs.max(snapshot.time_secs);
        // Score the previous epoch's decision against what this snapshot
        // actually realized, then emit it.
        if let Some((at, mechanism, trace)) = self.pending_decision.take() {
            let realized = realized_throughput(snapshot);
            self.emit_decision(at, mechanism, trace, realized);
        }
        if !self.recorder.is_enabled() {
            return;
        }
        for (path, stats) in &snapshot.tasks {
            self.recorder.record_at(
                snapshot.time_secs,
                TraceEvent::TaskStatsSample {
                    path: path.clone(),
                    stats: *stats,
                },
            );
        }
        self.recorder.record_at(
            snapshot.time_secs,
            TraceEvent::QueueSample {
                queue: snapshot.queue,
            },
        );
        if let Some(watts) = snapshot.power_watts {
            self.recorder.record_at(
                snapshot.time_secs,
                TraceEvent::FeatureRead {
                    feature: "SystemPower".to_string(),
                    value: watts,
                },
            );
        }
        if let Some(sampler) = &mut self.admission {
            if let Some(event) = sampler.sample(&snapshot.admission) {
                self.recorder.record_at(snapshot.time_secs, event);
            }
        }
        self.recorder.record_at(
            snapshot.time_secs,
            TraceEvent::SnapshotTaken {
                snapshot: snapshot.clone(),
            },
        );
    }

    fn proposal_evaluated(
        &mut self,
        time_secs: f64,
        mechanism: &str,
        proposal: &Config,
        outcome: ProposalOutcome,
    ) {
        self.last_time_secs = self.last_time_secs.max(time_secs);
        let verdict = match outcome {
            ProposalOutcome::Accepted => Verdict::Accepted,
            ProposalOutcome::Unchanged => Verdict::Unchanged,
            ProposalOutcome::Rejected(code) => Verdict::Rejected { code },
        };
        self.recorder.record_at(
            time_secs,
            TraceEvent::ProposalEvaluated {
                mechanism: mechanism.to_string(),
                proposal: proposal.clone(),
                verdict,
            },
        );
    }

    fn config_applied(&mut self, time_secs: f64, config: &Config) {
        self.last_time_secs = self.last_time_secs.max(time_secs);
        // Mirror the live executive's delta-eligibility rule: an
        // extent-only change confined to top-level leaves is a partial
        // reconfiguration; everything else (and the first application,
        // with no prior config to diff) is a full drain.
        let delta = self
            .last_config
            .as_ref()
            .and_then(|prev| prev.delta_paths(config));
        let (scope, paths_drained) = match delta {
            Some(changed) => ("partial".to_string(), changed.len() as u64),
            None => ("full".to_string(), config.paths().len() as u64),
        };
        self.recorder.record_at(
            time_secs,
            TraceEvent::ReconfigureEpoch {
                pause_secs: 0.0,
                relaunch_secs: 0.0,
                jobs: 0,
                config: config.clone(),
                scope,
                paths_drained,
            },
        );
        self.last_config = Some(config.clone());
    }

    fn decision_explained(&mut self, time_secs: f64, mechanism: &str, trace: &DecisionTrace) {
        self.last_time_secs = self.last_time_secs.max(time_secs);
        // A decision arriving before the previous one was scored (the
        // simulator consulted twice between snapshots) flushes the older
        // one unscored rather than losing it.
        if let Some((at, mech, pending)) = self.pending_decision.take() {
            self.emit_decision(at, mech, pending, None);
        }
        self.pending_decision = Some((time_secs, mechanism.to_string(), trace.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dope_core::{Config, TaskConfig};

    #[test]
    fn hooks_translate_to_events() {
        let recorder = Recorder::bounded(64);
        let mut obs = RecordingObserver::new(recorder.clone()).with_goal("MaxThroughput");
        let shape = ProgramShape::new(vec![]);
        let config = Config::new(vec![TaskConfig::leaf("t", 1)]);
        obs.launched("WQ-Linear", 8, &shape, &config);
        obs.snapshot_taken(&MonitorSnapshot::at(1.0));
        obs.proposal_evaluated(1.0, "WQ-Linear", &config, ProposalOutcome::Unchanged);
        obs.config_applied(2.0, &config);
        obs.finished(10, 1);

        let kinds: Vec<&str> = recorder.records().iter().map(|r| r.event.kind()).collect();
        assert_eq!(
            kinds,
            [
                "Launched",
                "QueueSample",
                "SnapshotTaken",
                "ProposalEvaluated",
                "ReconfigureEpoch",
                "Finished",
            ]
        );
        if let TraceEvent::Launched { goal, .. } = &recorder.records()[0].event {
            assert_eq!(goal, "MaxThroughput");
        } else {
            panic!("first event must be Launched");
        }
    }

    #[test]
    fn config_applied_classifies_partial_and_full_scopes() {
        let recorder = Recorder::bounded(16);
        let mut obs = RecordingObserver::new(recorder.clone());
        let shape = ProgramShape::new(vec![]);
        let initial = Config::new(vec![TaskConfig::leaf("a", 1), TaskConfig::leaf("b", 2)]);
        obs.launched("WQ-Linear", 8, &shape, &initial);

        // Extent nudge on one top-level leaf: partial, one path drained.
        let mut widened = initial.clone();
        widened.set_extent(&"1".parse().unwrap(), 4).unwrap();
        obs.config_applied(1.0, &widened);

        // Structural change: full, every path drained.
        let restructured = Config::new(vec![TaskConfig::leaf("a", 1)]);
        obs.config_applied(2.0, &restructured);

        let epochs: Vec<(String, u64)> = recorder
            .records()
            .iter()
            .filter_map(|r| match &r.event {
                TraceEvent::ReconfigureEpoch {
                    scope,
                    paths_drained,
                    ..
                } => Some((scope.clone(), *paths_drained)),
                _ => None,
            })
            .collect();
        assert_eq!(
            epochs,
            vec![("partial".to_string(), 1), ("full".to_string(), 1)]
        );
    }

    #[test]
    fn admission_samples_ride_along_with_snapshots() {
        use dope_core::AdmissionStats;
        let recorder = Recorder::bounded(64);
        let mut obs = RecordingObserver::new(recorder.clone()).with_admission_policy("shed");
        let shape = ProgramShape::new(vec![]);
        obs.launched("WQ-Linear", 8, &shape, &Config::default());

        // An idle gate records nothing.
        obs.snapshot_taken(&MonitorSnapshot::at(1.0));
        // A gate under pressure records one sample per snapshot.
        let mut snap = MonitorSnapshot::at(2.0);
        snap.admission = AdmissionStats {
            offered: 30,
            admitted: 25,
            shed_high_water: 5,
            shed_deadline: 0,
            mean_queue_delay_secs: 0.02,
        };
        obs.snapshot_taken(&snap);

        let records = recorder.records();
        let admitted: Vec<_> = records
            .iter()
            .filter(|r| r.event.kind() == "AdmissionDecision")
            .collect();
        assert_eq!(admitted.len(), 1);
        let TraceEvent::AdmissionDecision {
            policy,
            verdict,
            reason,
            offered,
            ..
        } = &admitted[0].event
        else {
            panic!("wrong kind");
        };
        assert_eq!(policy, "shed");
        assert_eq!(verdict, "shed");
        assert_eq!(reason, "high_water");
        assert_eq!(*offered, 30);
        // Without a declared policy nothing is emitted even under load.
        let recorder2 = Recorder::bounded(64);
        let mut plain = RecordingObserver::new(recorder2.clone());
        plain.snapshot_taken(&snap);
        assert!(recorder2
            .records()
            .iter()
            .all(|r| r.event.kind() != "AdmissionDecision"));
    }

    #[test]
    fn finished_is_stamped_at_the_latest_seen_time() {
        let recorder = Recorder::bounded(16);
        let mut obs = RecordingObserver::new(recorder.clone());
        obs.config_applied(7.5, &Config::default());
        obs.finished(1, 1);
        let last = recorder.records().last().cloned().unwrap();
        assert_eq!(last.time_secs, 7.5);
    }
}
