//! The `dope-trace` command-line tool: record, replay, and render traces.
//!
//! ```text
//! dope-trace record [OUT]            record a built-in adaptive scenario
//! dope-trace replay <TRACE>          replay a JSONL trace into dope-sim
//! dope-trace timeline <TRACE>        render a JSONL trace as ASCII
//! dope-trace stats <TRACE>           histogram summaries of a trace
//! dope-trace explain <TRACE> [--json]  decision audit of a trace
//! ```
//!
//! `TRACE` may be `-` to read JSONL from standard input; `record` writes
//! to `OUT` when given, standard output otherwise. Exit status: `0` on
//! success (for `replay`: the replayed accepted-config sequence matched
//! the recorded one), `1` on a failed replay or unreadable trace, `2` on
//! a usage error.

use std::io::Read as _;
use std::process::ExitCode;

use dope_core::Resources;
use dope_mechanisms::WqLinear;
use dope_sim::profile::AmdahlProfile;
use dope_sim::system::{run_system_observed, SystemParams, TwoLevelModel};
use dope_trace::{
    explain as explain_trace, parse_jsonl, render_timeline, replay_into_sim, summarize, Recorder,
    RecordingObserver, TraceRecord,
};
use dope_workload::ArrivalSchedule;

const USAGE: &str =
    "usage: dope-trace <record [OUT] | replay <TRACE> | timeline <TRACE> | stats <TRACE> | explain <TRACE> [--json]>
  record [OUT]       record a built-in adaptive scenario as JSONL (stdout when OUT omitted)
  replay <TRACE>     replay a JSONL trace into dope-sim; exit 0 iff the decision sequence matches
  timeline <TRACE>   render a JSONL trace as an ASCII timeline
  stats <TRACE>      histogram summaries (counts, mean, p50/p95/p99, max) of a trace
  explain <TRACE>    decision audit: rationale, candidate table, predicted-vs-realized error
                     per decision; --json re-emits the decisions as strict JSONL
  TRACE may be '-' for standard input";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("record") if args.len() <= 2 => record(args.get(1).map(String::as_str)),
        Some("replay") if args.len() == 2 => replay(&args[1]),
        Some("timeline") if args.len() == 2 => timeline(&args[1]),
        Some("stats") if args.len() == 2 => stats(&args[1]),
        Some("explain") if args.len() == 2 => explain(&args[1], false),
        Some("explain") if args.len() == 3 && args[2] == "--json" => explain(&args[1], true),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// The built-in scenario: an x264-like transactional server under a
/// work-queue mechanism, arrivals ramping enough to force adaptation.
fn record(out: Option<&str>) -> ExitCode {
    let model = TwoLevelModel::pipeline("transcode", AmdahlProfile::new(8.0, 0.95, 0.1, 0.05));
    let threads = 24;
    let mut mechanism = WqLinear::new(1, 12, 8.0);
    let recorder = Recorder::bounded(65_536);
    let mut observer = RecordingObserver::new(recorder.clone()).with_goal("MinResponseTime");
    let schedule = ArrivalSchedule::poisson(0.8, 200, 11);
    let outcome = run_system_observed(
        &model,
        &schedule,
        &mut mechanism,
        Resources::threads(threads),
        &SystemParams::default(),
        &mut observer,
    );
    observer.finished(outcome.completed, outcome.config_changes);
    let jsonl = recorder.to_jsonl();
    match out {
        None => {
            print!("{jsonl}");
            ExitCode::SUCCESS
        }
        Some(path) => match std::fs::write(path, &jsonl) {
            Ok(()) => {
                eprintln!(
                    "recorded {} events ({} reconfigurations) to {path}",
                    recorder.len(),
                    outcome.config_changes
                );
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("dope-trace: cannot write {path}: {err}");
                ExitCode::FAILURE
            }
        },
    }
}

fn replay(path: &str) -> ExitCode {
    let records = match load(path) {
        Ok(records) => records,
        Err(err) => {
            eprintln!("dope-trace: {err}");
            return ExitCode::FAILURE;
        }
    };
    match replay_into_sim(&records) {
        Ok(outcome) if outcome.matches() => {
            println!(
                "replay OK: {} accepted configuration(s) reproduced",
                outcome.recorded.len()
            );
            ExitCode::SUCCESS
        }
        Ok(outcome) => {
            eprintln!(
                "replay DIVERGED: recorded {} accepted configuration(s), replayed {}",
                outcome.recorded.len(),
                outcome.replayed.len()
            );
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("dope-trace: {err}");
            ExitCode::FAILURE
        }
    }
}

fn stats(path: &str) -> ExitCode {
    match load(path) {
        Ok(records) => {
            print!("{}", summarize(&records).render());
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("dope-trace: {err}");
            ExitCode::FAILURE
        }
    }
}

fn explain(path: &str, json: bool) -> ExitCode {
    match load(path) {
        Ok(records) => {
            let report = explain_trace(&records);
            if json {
                print!("{}", report.to_jsonl());
            } else {
                print!("{}", report.render());
            }
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("dope-trace: {err}");
            ExitCode::FAILURE
        }
    }
}

fn timeline(path: &str) -> ExitCode {
    match load(path) {
        Ok(records) => {
            print!("{}", render_timeline(&records));
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("dope-trace: {err}");
            ExitCode::FAILURE
        }
    }
}

fn load(path: &str) -> Result<Vec<TraceRecord>, String> {
    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|err| format!("cannot read stdin: {err}"))?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|err| format!("cannot read {path}: {err}"))?
    };
    parse_jsonl(&text).map_err(|err| format!("{path}: {err}"))
}
