//! Flight-recorder observability for the DoPE executive.
//!
//! The executive makes its parallelism decisions silently: snapshots go
//! in, configurations come out, and by the time an operator asks *why* a
//! run behaved the way it did, the evidence is gone. This crate is the
//! flight recorder that keeps the evidence:
//!
//! * [`Recorder`] — a cloneable handle onto a lock-light, **bounded**
//!   ring buffer of structured [`TraceEvent`]s; zero-cost when disabled,
//!   shared by every instrumented component when enabled;
//! * [`event`] — the versioned event model ([`SCHEMA_VERSION`]): launch,
//!   snapshot, per-task EWMA samples, proposal verdicts with `DV0xx`
//!   rejection codes, reconfiguration-epoch latencies, platform feature
//!   reads, queue probes, and the terminal summary;
//! * [`codec`] — a strict JSONL serialization of that model, the
//!   **public contract** documented in `docs/event-schema.md`;
//! * [`RecordingObserver`] — the bridge that records `dope-sim` runs via
//!   the simulator's [`SimObserver`](dope_sim::SimObserver) hooks;
//! * [`replay_into_sim`] — deterministic replay: rebuilds a simulated
//!   system from a trace and asserts it re-applies the identical
//!   accepted-configuration sequence;
//! * [`render_timeline`] — an ASCII timeline for humans;
//! * [`summarize`] — offline histogram summaries (latency percentiles
//!   for exec/pause/relaunch, queue and feature distributions) of a
//!   parsed trace, also available as the `dope-trace` CLI's `stats`
//!   subcommand (alongside `record` / `replay` / `timeline`);
//! * [`explain()`] — the decision audit: every `DecisionTraced` event
//!   rendered with its rationale code, candidate table, and
//!   predicted-vs-realized throughput error, also the CLI's `explain`
//!   subcommand (`--json` re-emits the decisions as strict JSONL).
//!
//! The prose book lives in `docs/`: `docs/architecture.md` (how the
//! recorder, instrumentation, and replay fit together),
//! `docs/event-schema.md` (the field-by-field wire contract), and
//! `docs/operator-guide.md` (capture and analysis workflows). Every
//! example in those pages runs as a doctest of the umbrella crate.
//!
//! # Example
//!
//! Record, serialize, parse back, and replay a short simulated run:
//!
//! ```
//! use dope_core::{Mechanism, Resources, StaticMechanism};
//! use dope_sim::profile::AmdahlProfile;
//! use dope_sim::system::{run_system_observed, SystemParams, TwoLevelModel};
//! use dope_trace::{parse_jsonl, replay_into_sim, Recorder, RecordingObserver};
//! use dope_workload::ArrivalSchedule;
//!
//! let model = TwoLevelModel::pipeline("transcode", AmdahlProfile::new(4.0, 0.9, 0.1, 0.05));
//! let mut mech = StaticMechanism::new(model.config_for_width(8, 4));
//! let recorder = Recorder::bounded(4096);
//! let mut observer = RecordingObserver::new(recorder.clone()).with_goal("MaxThroughput");
//! let outcome = run_system_observed(
//!     &model,
//!     &ArrivalSchedule::uniform(1.0, 5),
//!     &mut mech,
//!     Resources::threads(8),
//!     &SystemParams::default(),
//!     &mut observer,
//! );
//! observer.finished(outcome.completed, outcome.config_changes);
//!
//! let jsonl = recorder.to_jsonl();            // serialize the trace
//! let records = parse_jsonl(&jsonl).unwrap(); // parse it back
//! let replay = replay_into_sim(&records).unwrap();
//! assert!(replay.matches());                  // identical accepted configs
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admission;
pub mod codec;
pub mod event;
pub mod explain;
pub mod observer;
pub mod recorder;
pub mod replay;
pub mod stats;
pub mod timeline;

pub use admission::AdmissionSampler;
pub use codec::{parse_jsonl, parse_line, to_jsonl, to_jsonl_line};
pub use event::{TraceEvent, TraceRecord, Verdict, SCHEMA_VERSION};
pub use explain::{explain, ExplainReport};
pub use observer::RecordingObserver;
pub use recorder::Recorder;
pub use replay::{accepted_configs, replay_into_sim, ReplayMechanism, ReplayOutcome};
pub use stats::{summarize, TraceSummary};
pub use timeline::render_timeline;
