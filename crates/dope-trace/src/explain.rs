//! Decision audit: renders the *why* of a trace.
//!
//! A trace's `DecisionTraced` events carry the mechanism's own account
//! of every decision: what it observed, which candidates it weighed,
//! what it chose and why (a stable [`Rationale`](dope_core::Rationale)
//! code), what throughput it predicted, and — scored one epoch later —
//! what the system actually realized. [`explain`] extracts that audit
//! trail and [`ExplainReport`] renders it for operators (or re-emits it
//! as strict JSONL for tooling).
//!
//! # Example
//!
//! ```
//! use dope_core::{DecisionCandidate, Rationale};
//! use dope_trace::{explain, TraceEvent, TraceRecord};
//!
//! let records = vec![TraceRecord {
//!     seq: 3,
//!     time_secs: 12.5,
//!     event: TraceEvent::DecisionTraced {
//!         mechanism: "WQ-Linear".to_string(),
//!         rationale: Rationale::OccupancyLinear,
//!         observed: vec![("occupancy".to_string(), 42.0)],
//!         candidates: vec![DecisionCandidate::new("width=8", 0.84).predicting(52.0)],
//!         chosen: "width=8".to_string(),
//!         predicted_throughput: Some(52.0),
//!         realized_throughput: Some(48.0),
//!         prediction_error: Some((52.0 - 48.0) / 48.0),
//!     },
//! }];
//! let report = explain(&records);
//! let text = report.render();
//! assert!(text.contains("OccupancyLinear"));
//! assert!(text.contains("error +8.3%"));
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::codec::to_jsonl;
use crate::event::{TraceEvent, TraceRecord};

/// The decision audit extracted from a trace: every `DecisionTraced`
/// record, in trace order, plus aggregate prediction-accuracy figures.
#[derive(Debug, Clone, Default)]
pub struct ExplainReport {
    decisions: Vec<TraceRecord>,
}

/// Extracts the decision audit from `records`.
///
/// Only `DecisionTraced` events contribute; a trace recorded before
/// mechanisms explained themselves (or with explanation disabled)
/// yields an empty report, which [`ExplainReport::render`] states
/// explicitly rather than printing nothing.
#[must_use]
pub fn explain(records: &[TraceRecord]) -> ExplainReport {
    ExplainReport {
        decisions: records
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::DecisionTraced { .. }))
            .cloned()
            .collect(),
    }
}

impl ExplainReport {
    /// Number of decisions in the audit.
    #[must_use]
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// `true` when the trace carried no `DecisionTraced` events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }

    /// The audited records themselves, in trace order.
    #[must_use]
    pub fn decisions(&self) -> &[TraceRecord] {
        &self.decisions
    }

    /// Re-emits the audited decisions as strict JSONL — the same codec
    /// as the full trace, so the output parses back with
    /// [`parse_jsonl`](crate::parse_jsonl) (sequence numbers keep their
    /// original values; the gaps are the non-decision events).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        to_jsonl(&self.decisions)
    }

    /// Renders the audit as human-readable text: a header with scoring
    /// aggregates, one block per decision (rationale, observations,
    /// candidate table, predicted-vs-realized error), and a rationale
    /// frequency summary.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.decisions.is_empty() {
            out.push_str(
                "no decisions recorded: the trace carries no DecisionTraced events\n\
                 (recorded before mechanism explainability, or with a mechanism that\n\
                 does not explain itself)\n",
            );
            return out;
        }

        let mut rationales: BTreeMap<String, u64> = BTreeMap::new();
        let mut scored = 0usize;
        let mut abs_sum = 0.0f64;
        let mut worst: Option<(f64, f64)> = None; // (|error|, time)
        for record in &self.decisions {
            let TraceEvent::DecisionTraced {
                mechanism,
                rationale,
                prediction_error,
                ..
            } = &record.event
            else {
                continue;
            };
            *rationales
                .entry(format!("{mechanism}/{}", rationale.code()))
                .or_insert(0) += 1;
            if let Some(error) = prediction_error {
                scored += 1;
                abs_sum += error.abs();
                if worst.is_none_or(|(w, _)| error.abs() > w) {
                    worst = Some((error.abs(), record.time_secs));
                }
            }
        }

        let _ = writeln!(out, "decision audit: {} decision(s)", self.decisions.len());
        if scored > 0 {
            let mean = abs_sum / scored as f64;
            let _ = write!(
                out,
                "  scored: {scored}/{}  mean |error| {:.1}%",
                self.decisions.len(),
                mean * 100.0
            );
            if let Some((w, at)) = worst {
                let _ = write!(out, "  worst {:.1}% at {at:.3}s", w * 100.0);
            }
            out.push('\n');
        } else {
            let _ = writeln!(
                out,
                "  scored: 0/{} (no decision carried both a prediction and a follow-up snapshot)",
                self.decisions.len()
            );
        }
        out.push('\n');

        for record in &self.decisions {
            let TraceEvent::DecisionTraced {
                mechanism,
                rationale,
                observed,
                candidates,
                chosen,
                predicted_throughput,
                realized_throughput,
                prediction_error,
            } = &record.event
            else {
                continue;
            };
            let _ = writeln!(
                out,
                "[{:>9.3}s] {mechanism}  {}  chosen \"{chosen}\"",
                record.time_secs,
                rationale.code()
            );
            if !observed.is_empty() {
                let pairs: Vec<String> = observed
                    .iter()
                    .map(|(signal, value)| format!("{signal}={value:.2}"))
                    .collect();
                let _ = writeln!(out, "    observed   {}", pairs.join("  "));
            }
            for candidate in candidates {
                let marker = if candidate.action == *chosen {
                    "->"
                } else {
                    "  "
                };
                let _ = write!(
                    out,
                    "    {marker} {:<32} score {:>8.3}",
                    candidate.action, candidate.score
                );
                if let Some(p) = candidate.predicted_throughput {
                    let _ = write!(out, "  predicted {p:.2}/s");
                }
                out.push('\n');
            }
            let mut tail = String::new();
            if let Some(p) = predicted_throughput {
                let _ = write!(tail, "predicted {p:.2}/s");
            }
            if let Some(r) = realized_throughput {
                if !tail.is_empty() {
                    tail.push_str("  ");
                }
                let _ = write!(tail, "realized {r:.2}/s");
            }
            if let Some(e) = prediction_error {
                if !tail.is_empty() {
                    tail.push_str("  ");
                }
                let _ = write!(tail, "error {:+.1}%", e * 100.0);
            }
            if !tail.is_empty() {
                let _ = writeln!(out, "    {tail}");
            }
        }

        out.push('\n');
        out.push_str("rationales:\n");
        let width = rationales.keys().map(String::len).max().unwrap_or(0);
        for (key, count) in &rationales {
            let _ = writeln!(out, "  {key:<width$}  {count}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dope_core::{DecisionCandidate, Rationale};

    fn decision(
        seq: u64,
        time_secs: f64,
        rationale: Rationale,
        predicted: Option<f64>,
        realized: Option<f64>,
    ) -> TraceRecord {
        let prediction_error = match (predicted, realized) {
            (Some(p), Some(r)) if r > 0.0 => Some((p - r) / r),
            _ => None,
        };
        TraceRecord {
            seq,
            time_secs,
            event: TraceEvent::DecisionTraced {
                mechanism: "WQ-Linear".to_string(),
                rationale,
                observed: vec![("occupancy".to_string(), 42.0)],
                candidates: vec![
                    DecisionCandidate::new("width=8", 0.84).predicting(52.0),
                    DecisionCandidate::new("hold", 0.0),
                ],
                chosen: "width=8".to_string(),
                predicted_throughput: predicted,
                realized_throughput: realized,
                prediction_error,
            },
        }
    }

    #[test]
    fn empty_trace_says_so_explicitly() {
        let report = explain(&[]);
        assert!(report.is_empty());
        assert_eq!(report.len(), 0);
        assert!(report.render().contains("no decisions recorded"));
    }

    #[test]
    fn non_decision_events_are_ignored() {
        let records = vec![TraceRecord {
            seq: 0,
            time_secs: 0.0,
            event: TraceEvent::Finished {
                completed: 1,
                reconfigurations: 0,
                dropped_events: 0,
            },
        }];
        assert!(explain(&records).is_empty());
    }

    #[test]
    fn render_carries_rationale_candidates_and_error() {
        let records = vec![
            decision(0, 1.0, Rationale::OccupancyLinear, Some(52.0), Some(48.0)),
            decision(1, 2.0, Rationale::Hold, Some(50.0), None),
        ];
        let text = explain(&records).render();
        assert!(text.contains("decision audit: 2 decision(s)"), "{text}");
        assert!(text.contains("scored: 1/2"), "{text}");
        assert!(text.contains("WQ-Linear/OccupancyLinear"), "{text}");
        assert!(text.contains("WQ-Linear/Hold"), "{text}");
        // The chosen candidate is marked, the other is not.
        assert!(text.contains("-> width=8"), "{text}");
        assert!(text.contains("   hold"), "{text}");
        assert!(text.contains("error +8.3%"), "{text}");
        assert!(text.contains("observed   occupancy=42.00"), "{text}");
    }

    #[test]
    fn jsonl_reemission_parses_back_through_the_strict_codec() {
        let records = vec![
            TraceRecord {
                seq: 0,
                time_secs: 0.0,
                event: TraceEvent::Finished {
                    completed: 0,
                    reconfigurations: 0,
                    dropped_events: 0,
                },
            },
            decision(7, 1.5, Rationale::ThresholdCrossed, Some(10.0), Some(12.0)),
        ];
        let report = explain(&records);
        let jsonl = report.to_jsonl();
        let parsed = crate::parse_jsonl(&jsonl).expect("strict round-trip");
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0], report.decisions()[0]);
    }
}
