//! Turns cumulative admission counters into `AdmissionDecision` events.
//!
//! Both trace producers — the sim-side [`RecordingObserver`] and the
//! live executive in `dope-runtime` — see admission pressure the same
//! way: a cumulative [`AdmissionStats`] inside each monitor snapshot.
//! [`AdmissionSampler`] holds the policy tag and the previous sample, so
//! each call to [`sample`](AdmissionSampler::sample) can classify the
//! *window* since the last control period ("did anything get shed, and
//! why") while the emitted counters stay cumulative, matching the
//! schema contract in `docs/event-schema.md`.
//!
//! [`RecordingObserver`]: crate::RecordingObserver
//!
//! # Example
//!
//! ```
//! use dope_core::AdmissionStats;
//! use dope_trace::{AdmissionSampler, TraceEvent};
//!
//! let mut sampler = AdmissionSampler::new("shed");
//! let stats = AdmissionStats {
//!     offered: 10,
//!     admitted: 8,
//!     shed_high_water: 2,
//!     shed_deadline: 0,
//!     mean_queue_delay_secs: 0.01,
//! };
//! let Some(TraceEvent::AdmissionDecision { verdict, reason, .. }) =
//!     sampler.sample(&stats)
//! else {
//!     panic!("offered traffic must produce a sample");
//! };
//! assert_eq!(verdict, "shed");
//! assert_eq!(reason, "high_water");
//! ```

use dope_core::AdmissionStats;

use crate::event::TraceEvent;

/// Stateful window classifier for admission-gate samples.
#[derive(Debug, Clone)]
pub struct AdmissionSampler {
    policy: String,
    last: AdmissionStats,
}

impl AdmissionSampler {
    /// Builds a sampler for a gate running `policy` (its stable
    /// lowercase tag: `"open"` / `"block"` / `"shed"` / `"deadline"`).
    #[must_use]
    pub fn new(policy: impl Into<String>) -> Self {
        AdmissionSampler {
            policy: policy.into(),
            last: AdmissionStats::default(),
        }
    }

    /// The policy tag this sampler stamps into every event.
    #[must_use]
    pub fn policy(&self) -> &str {
        &self.policy
    }

    /// Classifies the window since the previous sample and returns the
    /// `AdmissionDecision` to record, or `None` when no traffic has been
    /// offered yet (an idle gate is not worth a trace line).
    pub fn sample(&mut self, stats: &AdmissionStats) -> Option<TraceEvent> {
        if stats.offered == 0 {
            return None;
        }
        let hw = stats
            .shed_high_water
            .saturating_sub(self.last.shed_high_water);
        let dl = stats.shed_deadline.saturating_sub(self.last.shed_deadline);
        let verdict = if hw + dl > 0 { "shed" } else { "admitted" };
        // Dominant drop reason in the window; high-water wins ties
        // because it is the earlier (pre-queue) drop point.
        let reason = if hw >= dl && hw > 0 {
            "high_water"
        } else if dl > 0 {
            "deadline"
        } else {
            "none"
        };
        self.last = *stats;
        Some(TraceEvent::AdmissionDecision {
            policy: self.policy.clone(),
            verdict: verdict.to_string(),
            reason: reason.to_string(),
            queue_delay_secs: stats.mean_queue_delay_secs,
            offered: stats.offered,
            admitted: stats.admitted,
            shed: stats.shed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(offered: u64, admitted: u64, hw: u64, dl: u64) -> AdmissionStats {
        AdmissionStats {
            offered,
            admitted,
            shed_high_water: hw,
            shed_deadline: dl,
            mean_queue_delay_secs: 0.005,
        }
    }

    #[test]
    fn idle_gate_produces_no_sample() {
        let mut sampler = AdmissionSampler::new("block");
        assert!(sampler.sample(&AdmissionStats::default()).is_none());
    }

    #[test]
    fn verdict_and_reason_describe_the_window_not_the_totals() {
        let mut sampler = AdmissionSampler::new("shed");
        // First window: 2 high-water drops.
        let Some(TraceEvent::AdmissionDecision {
            verdict,
            reason,
            shed,
            ..
        }) = sampler.sample(&stats(10, 8, 2, 0))
        else {
            panic!("expected a sample");
        };
        assert_eq!(
            (verdict.as_str(), reason.as_str(), shed),
            ("shed", "high_water", 2)
        );

        // Second window: no *new* drops — verdict flips back to
        // admitted even though cumulative shed is still 2.
        let Some(TraceEvent::AdmissionDecision {
            verdict,
            reason,
            shed,
            ..
        }) = sampler.sample(&stats(20, 18, 2, 0))
        else {
            panic!("expected a sample");
        };
        assert_eq!(
            (verdict.as_str(), reason.as_str(), shed),
            ("admitted", "none", 2)
        );
    }

    #[test]
    fn deadline_drops_dominate_when_they_outnumber_high_water() {
        let mut sampler = AdmissionSampler::new("deadline");
        let Some(TraceEvent::AdmissionDecision { reason, .. }) =
            sampler.sample(&stats(10, 9, 0, 3))
        else {
            panic!("expected a sample");
        };
        assert_eq!(reason, "deadline");
    }
}
