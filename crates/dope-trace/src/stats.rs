//! Offline histogram summaries of recorded traces.
//!
//! [`summarize`] folds a parsed JSONL trace into a [`TraceSummary`]:
//! per-kind event counts plus bounded log-linear histograms
//! ([`dope_metrics::LocalHistogram`]) over every latency-like field the
//! recorder captures — per-task execution times, reconfiguration
//! pause/relaunch costs, queue occupancy and arrival rate, and platform
//! feature reads. [`TraceSummary::render`] prints them as an ASCII
//! table; this is what the `dope-trace stats` subcommand shows.
//!
//! Quantiles are within [`dope_metrics::QUANTILE_RELATIVE_ERROR`]
//! (≈ 3.1 %) of the exact sample quantiles; counts, means, and maxima
//! are exact up to the histogram's nanosecond (1e-9) value resolution.
//! Dimensionless series (occupancy, feature values) reuse the same
//! 1e-9-resolution storage — `LocalHistogram` is unit-agnostic.
//!
//! Traces recorded **before** `TaskStats` grew its percentile fields
//! still summarize: the per-sample `p*_exec_secs` histograms simply
//! stay empty (the codec parses absent fields as `0.0`, and
//! [`summarize`] skips non-positive percentile samples).
//!
//! # Example
//!
//! ```
//! use dope_trace::{summarize, TraceEvent, TraceRecord};
//!
//! let records = vec![TraceRecord {
//!     seq: 0,
//!     time_secs: 1.0,
//!     event: TraceEvent::ReconfigureEpoch {
//!         pause_secs: 0.004,
//!         relaunch_secs: 0.001,
//!         jobs: 8,
//!         config: dope_core::Config::default(),
//!         scope: "full".to_string(),
//!         paths_drained: 3,
//!     },
//! }];
//! let summary = summarize(&records);
//! assert_eq!(summary.events.get("ReconfigureEpoch"), Some(&1));
//! let text = summary.render();
//! assert!(text.contains("reconfigure.pause_secs"), "{text}");
//! ```

use crate::event::{TraceEvent, TraceRecord};
use dope_metrics::LocalHistogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Histogram summaries of one parsed trace. Produced by [`summarize`].
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// Events seen, by `kind` discriminator.
    pub events: BTreeMap<&'static str, u64>,
    /// Per-task-path distribution of sampled `mean_exec_secs`.
    pub task_exec_secs: BTreeMap<String, LocalHistogram>,
    /// Per-task-path distribution of sampled `p99_exec_secs` (empty for
    /// traces predating the percentile fields).
    pub task_p99_exec_secs: BTreeMap<String, LocalHistogram>,
    /// Reconfiguration pause (drain) latency.
    pub pause_secs: LocalHistogram,
    /// Reconfiguration relaunch latency.
    pub relaunch_secs: LocalHistogram,
    /// Queue occupancy over all `QueueSample` events (dimensionless).
    pub queue_occupancy: LocalHistogram,
    /// Queue arrival rate over all `QueueSample` events (requests/sec).
    pub queue_arrival_rate: LocalHistogram,
    /// Per-feature distribution of `FeatureRead` values (feature units).
    pub feature_values: BTreeMap<String, LocalHistogram>,
    /// Failed replicas per task path (empty for traces predating the
    /// `TaskFailed` event kind).
    pub task_failures: BTreeMap<String, u64>,
    /// Decisions per `mechanism/rationale` pair (empty for traces
    /// predating the `DecisionTraced` event kind).
    pub decision_rationales: BTreeMap<String, u64>,
    /// Absolute relative prediction error over scored decisions
    /// (dimensionless; `0.1` means the mechanism's throughput prediction
    /// was 10 % off the realized bottleneck).
    pub prediction_error_abs: LocalHistogram,
    /// Reconfiguration epochs with `scope == "partial"` (delta
    /// reconfigurations; zero for traces predating the field).
    pub partial_reconfigs: u64,
    /// `AdmissionDecision` samples per `policy/verdict` pair (empty for
    /// traces predating the admission gate).
    pub admission_verdicts: BTreeMap<String, u64>,
    /// Sampled mean queue delay (offer to dispatch) across
    /// `AdmissionDecision` events, in seconds.
    pub admission_queue_delay_secs: LocalHistogram,
    /// Final cumulative `(offered, admitted, shed)` counters from the
    /// last `AdmissionDecision` sample (`None` when the trace has none).
    pub admission_totals: Option<(u64, u64, u64)>,
    /// Requests completed, from the final `Finished` event (if any).
    pub completed: Option<u64>,
    /// Applied reconfigurations, from the final `Finished` event.
    pub reconfigurations: Option<u64>,
    /// Events dropped by the bounded recorder, from `Finished`.
    pub dropped_events: Option<u64>,
}

/// Folds `records` into histogram summaries.
#[must_use]
pub fn summarize(records: &[TraceRecord]) -> TraceSummary {
    let mut out = TraceSummary::default();
    for record in records {
        *out.events.entry(record.event.kind()).or_insert(0) += 1;
        match &record.event {
            TraceEvent::TaskStatsSample { path, stats } => {
                let key = path.to_string();
                if stats.mean_exec_secs > 0.0 {
                    out.task_exec_secs
                        .entry(key.clone())
                        .or_default()
                        .record_secs(stats.mean_exec_secs);
                }
                // Pre-percentile traces parse these fields as 0.0
                // ("not measured"); skip so old recordings stay clean.
                if stats.p99_exec_secs > 0.0 {
                    out.task_p99_exec_secs
                        .entry(key)
                        .or_default()
                        .record_secs(stats.p99_exec_secs);
                }
            }
            TraceEvent::ReconfigureEpoch {
                pause_secs,
                relaunch_secs,
                scope,
                ..
            } => {
                out.pause_secs.record_secs(*pause_secs);
                out.relaunch_secs.record_secs(*relaunch_secs);
                if scope == "partial" {
                    out.partial_reconfigs += 1;
                }
            }
            TraceEvent::QueueSample { queue } => {
                out.queue_occupancy.record_secs(queue.occupancy);
                out.queue_arrival_rate.record_secs(queue.arrival_rate);
            }
            TraceEvent::FeatureRead { feature, value } => {
                out.feature_values
                    .entry(feature.clone())
                    .or_default()
                    .record_secs(*value);
            }
            TraceEvent::TaskFailed { path, .. } => {
                *out.task_failures.entry(path.to_string()).or_insert(0) += 1;
            }
            TraceEvent::DecisionTraced {
                mechanism,
                rationale,
                prediction_error,
                ..
            } => {
                *out.decision_rationales
                    .entry(format!("{mechanism}/{}", rationale.code()))
                    .or_insert(0) += 1;
                if let Some(error) = prediction_error {
                    out.prediction_error_abs.record_secs(error.abs());
                }
            }
            TraceEvent::AdmissionDecision {
                policy,
                verdict,
                queue_delay_secs,
                offered,
                admitted,
                shed,
                ..
            } => {
                *out.admission_verdicts
                    .entry(format!("{policy}/{verdict}"))
                    .or_insert(0) += 1;
                if *queue_delay_secs > 0.0 {
                    out.admission_queue_delay_secs
                        .record_secs(*queue_delay_secs);
                }
                // Counters are cumulative; the last sample wins.
                out.admission_totals = Some((*offered, *admitted, *shed));
            }
            TraceEvent::Finished {
                completed,
                reconfigurations,
                dropped_events,
            } => {
                out.completed = Some(*completed);
                out.reconfigurations = Some(*reconfigurations);
                out.dropped_events = Some(*dropped_events);
            }
            TraceEvent::Launched { .. }
            | TraceEvent::SnapshotTaken { .. }
            | TraceEvent::ProposalEvaluated { .. } => {}
        }
    }
    out
}

impl TraceSummary {
    /// Renders the summary as an ASCII table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "events:");
        for (kind, n) in &self.events {
            let _ = writeln!(out, "  {kind:<18} {n}");
        }
        let mut rows: Vec<(String, &LocalHistogram)> = Vec::new();
        for (path, hist) in &self.task_exec_secs {
            rows.push((format!("task[{path}].mean_exec_secs"), hist));
        }
        for (path, hist) in &self.task_p99_exec_secs {
            rows.push((format!("task[{path}].p99_exec_secs"), hist));
        }
        rows.push(("reconfigure.pause_secs".to_string(), &self.pause_secs));
        rows.push(("reconfigure.relaunch_secs".to_string(), &self.relaunch_secs));
        rows.push(("queue.occupancy".to_string(), &self.queue_occupancy));
        rows.push(("queue.arrival_rate".to_string(), &self.queue_arrival_rate));
        for (feature, hist) in &self.feature_values {
            rows.push((format!("feature[{feature}]"), hist));
        }
        if self.prediction_error_abs.count() > 0 {
            rows.push((
                "decision.abs_prediction_error".to_string(),
                &self.prediction_error_abs,
            ));
        }
        if self.admission_queue_delay_secs.count() > 0 {
            rows.push((
                "admission.queue_delay_secs".to_string(),
                &self.admission_queue_delay_secs,
            ));
        }
        let width = rows.iter().map(|(name, _)| name.len()).max().unwrap_or(0);
        let _ = writeln!(
            out,
            "\n{:<width$}  {:>8}  {:>12}  {:>12}  {:>12}  {:>12}  {:>12}",
            "series", "count", "mean", "p50", "p95", "p99", "max"
        );
        for (name, hist) in rows {
            let _ = writeln!(
                out,
                "{name:<width$}  {:>8}  {:>12}  {:>12}  {:>12}  {:>12}  {:>12}",
                hist.count(),
                fmt_value(hist.mean_secs()),
                fmt_value(hist.quantile_secs(0.50)),
                fmt_value(hist.quantile_secs(0.95)),
                fmt_value(hist.quantile_secs(0.99)),
                fmt_value(hist.max_secs()),
            );
        }
        if !self.decision_rationales.is_empty() {
            let _ = writeln!(out, "\ndecisions:");
            for (key, n) in &self.decision_rationales {
                let _ = writeln!(out, "  {key:<40} {n}");
            }
        }
        if !self.admission_verdicts.is_empty() {
            let _ = writeln!(out, "\nadmission:");
            for (key, n) in &self.admission_verdicts {
                let _ = writeln!(out, "  {key:<40} {n}");
            }
            if let Some((offered, admitted, shed)) = self.admission_totals {
                let _ = writeln!(
                    out,
                    "  totals: {offered} offered, {admitted} admitted, {shed} shed"
                );
            }
        }
        if !self.task_failures.is_empty() {
            let _ = writeln!(out, "\nfailures:");
            for (path, n) in &self.task_failures {
                let _ = writeln!(out, "  task[{path}]  {n} failed replica(s)");
            }
        }
        if let (Some(completed), Some(reconfigs)) = (self.completed, self.reconfigurations) {
            let dropped = self.dropped_events.unwrap_or(0);
            let partial = if self.partial_reconfigs > 0 {
                format!(" ({} partial)", self.partial_reconfigs)
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "\nfinished: {completed} completed, {reconfigs} reconfiguration(s){partial}, \
                 {dropped} dropped event(s)"
            );
        }
        out
    }
}

fn fmt_value(value: Option<f64>) -> String {
    match value {
        None => "-".to_string(),
        Some(0.0) => "0".to_string(),
        Some(v) if (1e-3..1e6).contains(&v.abs()) => format!("{v:.6}"),
        Some(v) => format!("{v:.3e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dope_core::{QueueStats, TaskPath, TaskStats};

    fn record(seq: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            seq,
            time_secs: seq as f64 * 0.1,
            event,
        }
    }

    fn sample(path: u16, mean: f64, p99: f64) -> TraceEvent {
        TraceEvent::TaskStatsSample {
            path: TaskPath::root_child(path),
            stats: TaskStats {
                invocations: 10,
                mean_exec_secs: mean,
                p99_exec_secs: p99,
                ..TaskStats::default()
            },
        }
    }

    #[test]
    fn summarize_groups_task_samples_by_path() {
        let records = vec![
            record(0, sample(0, 0.010, 0.025)),
            record(1, sample(0, 0.020, 0.050)),
            record(2, sample(1, 0.002, 0.0)),
        ];
        let summary = summarize(&records);
        assert_eq!(summary.events.get("TaskStatsSample"), Some(&3));
        assert_eq!(summary.task_exec_secs["0"].count(), 2);
        assert_eq!(summary.task_exec_secs["1"].count(), 1);
        // p99 of 0.0 means "not measured" (pre-percentile trace).
        assert_eq!(summary.task_p99_exec_secs["0"].count(), 2);
        assert!(!summary.task_p99_exec_secs.contains_key("1"));
    }

    #[test]
    fn summarize_collects_reconfigure_and_queue_histograms() {
        let records = vec![
            record(
                0,
                TraceEvent::ReconfigureEpoch {
                    pause_secs: 0.004,
                    relaunch_secs: 0.001,
                    jobs: 8,
                    config: dope_core::Config::default(),
                    scope: "full".to_string(),
                    paths_drained: 3,
                },
            ),
            record(
                3,
                TraceEvent::ReconfigureEpoch {
                    pause_secs: 0.0004,
                    relaunch_secs: 0.0001,
                    jobs: 9,
                    config: dope_core::Config::default(),
                    scope: "partial".to_string(),
                    paths_drained: 1,
                },
            ),
            record(
                1,
                TraceEvent::QueueSample {
                    queue: QueueStats {
                        occupancy: 12.0,
                        arrival_rate: 85.0,
                        enqueued: 100,
                        completed: 88,
                    },
                },
            ),
            record(
                2,
                TraceEvent::Finished {
                    completed: 88,
                    reconfigurations: 1,
                    dropped_events: 0,
                },
            ),
        ];
        let summary = summarize(&records);
        assert_eq!(summary.pause_secs.count(), 2);
        assert_eq!(summary.relaunch_secs.count(), 2);
        assert_eq!(summary.partial_reconfigs, 1);
        assert_eq!(summary.queue_occupancy.count(), 1);
        let occ = summary.queue_occupancy.quantile_secs(0.5).unwrap();
        assert!((occ - 12.0).abs() / 12.0 < 0.04, "occupancy {occ}");
        assert_eq!(summary.completed, Some(88));
        assert_eq!(summary.reconfigurations, Some(1));
        // The finish line calls out the partial share; full-only traces
        // (see render_lists_every_series_and_the_finish_line) omit it.
        let text = summary.render();
        assert!(text.contains("1 reconfiguration(s) (1 partial)"), "{text}");
    }

    #[test]
    fn render_lists_every_series_and_the_finish_line() {
        let records = vec![
            record(0, sample(0, 0.010, 0.030)),
            record(
                1,
                TraceEvent::FeatureRead {
                    feature: "SystemPower".to_string(),
                    value: 612.5,
                },
            ),
            record(
                2,
                TraceEvent::Finished {
                    completed: 5,
                    reconfigurations: 0,
                    dropped_events: 2,
                },
            ),
        ];
        let text = summarize(&records).render();
        for needle in [
            "task[0].mean_exec_secs",
            "task[0].p99_exec_secs",
            "reconfigure.pause_secs",
            "queue.arrival_rate",
            "feature[SystemPower]",
            "finished: 5 completed, 0 reconfiguration(s), 2 dropped event(s)",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn task_failures_are_counted_per_path_and_rendered() {
        let records = vec![
            record(
                0,
                TraceEvent::TaskFailed {
                    path: TaskPath::root_child(1),
                    reason: "boom".to_string(),
                    policy: "restart".to_string(),
                },
            ),
            record(
                1,
                TraceEvent::TaskFailed {
                    path: TaskPath::root_child(1),
                    reason: "boom again".to_string(),
                    policy: "restart".to_string(),
                },
            ),
        ];
        let summary = summarize(&records);
        assert_eq!(summary.events.get("TaskFailed"), Some(&2));
        assert_eq!(summary.task_failures["1"], 2);
        let text = summary.render();
        assert!(text.contains("failures:"), "{text}");
        assert!(text.contains("task[1]  2 failed replica(s)"), "{text}");
        // Traces without failures never print the section.
        assert!(!summarize(&[]).render().contains("failures:"));
    }

    #[test]
    fn admission_samples_are_grouped_and_totalled() {
        let records = vec![
            record(
                0,
                TraceEvent::AdmissionDecision {
                    policy: "shed".to_string(),
                    verdict: "admitted".to_string(),
                    reason: "none".to_string(),
                    queue_delay_secs: 0.010,
                    offered: 20,
                    admitted: 20,
                    shed: 0,
                },
            ),
            record(
                1,
                TraceEvent::AdmissionDecision {
                    policy: "shed".to_string(),
                    verdict: "shed".to_string(),
                    reason: "high_water".to_string(),
                    queue_delay_secs: 0.045,
                    offered: 64,
                    admitted: 50,
                    shed: 14,
                },
            ),
        ];
        let summary = summarize(&records);
        assert_eq!(summary.events.get("AdmissionDecision"), Some(&2));
        assert_eq!(summary.admission_verdicts["shed/admitted"], 1);
        assert_eq!(summary.admission_verdicts["shed/shed"], 1);
        assert_eq!(summary.admission_queue_delay_secs.count(), 2);
        // Counters are cumulative since launch; the final sample wins.
        assert_eq!(summary.admission_totals, Some((64, 50, 14)));
        let text = summary.render();
        assert!(text.contains("admission:"), "{text}");
        assert!(text.contains("shed/shed"), "{text}");
        assert!(text.contains("admission.queue_delay_secs"), "{text}");
        assert!(
            text.contains("totals: 64 offered, 50 admitted, 14 shed"),
            "{text}"
        );
        // Traces without admission samples never print the section.
        assert!(!summarize(&[]).render().contains("admission:"));
    }

    #[test]
    fn empty_trace_summarizes_to_empty_tables() {
        let summary = summarize(&[]);
        assert!(summary.events.is_empty());
        assert_eq!(summary.completed, None);
        let text = summary.render();
        assert!(text.contains("series"), "{text}");
    }
}
