//! The structured events the flight recorder captures.
//!
//! Each [`TraceRecord`] is one line of a JSONL trace: a monotonically
//! increasing sequence number, a timestamp in seconds since launch, and
//! one [`TraceEvent`]. The set of event kinds — and the exact field
//! names they serialize to — is a **versioned public contract**
//! documented in `docs/event-schema.md` (schema version
//! [`SCHEMA_VERSION`]).
//!
//! # Example
//!
//! ```
//! use dope_trace::{TraceEvent, TraceRecord};
//!
//! let record = TraceRecord {
//!     seq: 0,
//!     time_secs: 0.125,
//!     event: TraceEvent::FeatureRead {
//!         feature: "SystemPower".to_string(),
//!         value: 612.5,
//!     },
//! };
//! assert_eq!(record.event.kind(), "FeatureRead");
//! ```

use dope_core::{
    Config, DecisionCandidate, DiagCode, MonitorSnapshot, ProgramShape, QueueStats, Rationale,
    TaskPath, TaskStats,
};

/// Version of the event schema emitted by this build.
///
/// Every JSONL line carries this number in its `"v"` field; readers must
/// reject lines with a version they do not understand.
pub const SCHEMA_VERSION: u64 = 1;

/// One recorded line of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Monotonic sequence number assigned by the recorder. Gaps indicate
    /// events dropped by the bounded ring buffer.
    pub seq: u64,
    /// Seconds since the recorder (and hence the run) started. Simulated
    /// sources stamp simulated seconds; live sources stamp wall-clock
    /// seconds.
    pub time_secs: f64,
    /// The event itself.
    pub event: TraceEvent,
}

/// How the executive judged one mechanism proposal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The proposal validated and differs from the current configuration;
    /// a reconfiguration epoch follows.
    Accepted,
    /// The proposal validated but equals the current configuration.
    Unchanged,
    /// The proposal failed validation; `code` is the `DV0xx` diagnostic
    /// of the first error.
    Rejected {
        /// The diagnostic code explaining the rejection.
        code: DiagCode,
    },
    /// A previously accepted proposal was discarded before it could be
    /// applied — a task failure raced the drain and the recovery path
    /// (restart or degrade) took precedence. Emitted so the audit trail
    /// never shows an accepted-but-vanished decision. Additive in
    /// schema v1.
    Superseded,
}

/// A structured executive event.
///
/// Variants mirror the decision loop: launch, monitor, propose, judge,
/// reconfigure, finish — plus the platform- and queue-level samples that
/// explain *why* a mechanism decided what it did.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// The executive launched the application.
    Launched {
        /// `Mechanism::name()` of the driving mechanism.
        mechanism: String,
        /// The administrator's goal, rendered with `Display`.
        goal: String,
        /// The thread budget.
        threads: u32,
        /// The structural shape derived from the descriptor.
        shape: ProgramShape,
        /// The initial configuration.
        config: Config,
    },
    /// A [`MonitorSnapshot`] was frozen for the mechanism.
    SnapshotTaken {
        /// The frozen snapshot, verbatim.
        snapshot: MonitorSnapshot,
    },
    /// One task's EWMA statistics, sampled at a control period.
    TaskStatsSample {
        /// Configured-tree path of the task.
        path: TaskPath,
        /// The task's aggregated statistics.
        stats: TaskStats,
    },
    /// A mechanism proposal was evaluated.
    ProposalEvaluated {
        /// `Mechanism::name()` of the proposer.
        mechanism: String,
        /// The proposed configuration.
        proposal: Config,
        /// Accept / unchanged / reject-with-DV-code.
        verdict: Verdict,
    },
    /// A reconfiguration epoch completed: the old epoch (or, for a
    /// partial reconfiguration, only its changed paths) drained
    /// (`pause_secs`) and the new one launched (`relaunch_secs`).
    ReconfigureEpoch {
        /// Seconds from the suspend decision until the drained set
        /// reached a consistent state.
        pause_secs: f64,
        /// Seconds to instantiate and submit the new epoch (for partial
        /// reconfigurations, the relaunched paths).
        relaunch_secs: f64,
        /// Worker jobs live after the reconfiguration.
        jobs: u64,
        /// The configuration now in force.
        config: Config,
        /// `"full"` (the paper protocol: every replica drained) or
        /// `"partial"` (delta reconfiguration: only changed paths
        /// drained). Additive in schema v1; absent decodes as `"full"`,
        /// which every pre-delta trace was.
        scope: String,
        /// Replica-carrying paths drained at this boundary. Additive in
        /// schema v1; absent decodes as 0 ("not measured").
        paths_drained: u64,
    },
    /// A platform feature callback was read (paper Figure 9).
    FeatureRead {
        /// Feature name, e.g. `"SystemPower"`.
        feature: String,
        /// The value the callback returned.
        value: f64,
    },
    /// A work-queue probe sample.
    QueueSample {
        /// The probed statistics.
        queue: QueueStats,
    },
    /// A task replica failed: its body panicked (or its worker vanished
    /// without reporting) and the supervision layer contained the
    /// damage. Additive in schema v1 — readers of older traces never
    /// see it, and `reason`/`policy` explain what happened and how the
    /// executive responded.
    TaskFailed {
        /// Configured-tree path of the failed task.
        path: TaskPath,
        /// The downcast panic payload, or a description of the loss.
        reason: String,
        /// The failure policy in force, as its stable lowercase tag
        /// (`"abort"` / `"restart"` / `"degrade"`).
        policy: String,
    },
    /// A mechanism explained one decision (a `DecisionTrace` from
    /// `Mechanism::explain()`), flattened to stable fields. Additive in
    /// schema v1. The decision is usually emitted one epoch *after* it
    /// was taken, once the executive has scored the mechanism's
    /// throughput prediction against the realized monitor snapshot;
    /// unscored decisions (the final one of a run, or decisions whose
    /// proposal was rejected) omit the realized fields.
    DecisionTraced {
        /// `Mechanism::name()` of the deciding mechanism.
        mechanism: String,
        /// Stable rationale code, e.g. `"QueueAboveHighWater"`.
        rationale: Rationale,
        /// The `(signal, value)` pairs the mechanism read.
        observed: Vec<(String, f64)>,
        /// The candidate actions it weighed, with scores and optional
        /// per-candidate throughput predictions.
        candidates: Vec<DecisionCandidate>,
        /// The action it chose (`"hold"` when it kept the status quo).
        chosen: String,
        /// Its throughput prediction for the chosen action, items/s.
        predicted_throughput: Option<f64>,
        /// The bottleneck throughput the monitor realized one epoch
        /// later, items/s. Absent on unscored decisions.
        realized_throughput: Option<f64>,
        /// Signed relative error `(predicted - realized) / realized`.
        /// Positive means the mechanism over-promised. Absent unless
        /// both prediction and realization are present.
        prediction_error: Option<f64>,
    },
    /// A sampled summary of the admission gate, emitted once per control
    /// period while an admission policy is installed and traffic has been
    /// offered. Additive in schema v1 — readers of older traces never
    /// see it. Counters are cumulative since launch; `verdict` and
    /// `reason` describe the window since the *previous* sample
    /// (`"shed"` when any offer was dropped in the window, with the
    /// dominant drop reason).
    AdmissionDecision {
        /// The policy's stable lowercase tag
        /// (`"open"` / `"block"` / `"shed"` / `"deadline"`).
        policy: String,
        /// `"admitted"` when every offer in the window was admitted,
        /// `"shed"` when at least one was dropped.
        verdict: String,
        /// Dominant drop reason in the window
        /// (`"high_water"` / `"deadline"`), or `"none"`.
        reason: String,
        /// Mean queue delay (offer to dispatch) of served requests so
        /// far, in seconds.
        queue_delay_secs: f64,
        /// Requests offered to the gate since launch.
        offered: u64,
        /// Offers admitted since launch.
        admitted: u64,
        /// Offers dropped since launch, all reasons combined.
        shed: u64,
    },
    /// The run ended.
    Finished {
        /// Requests completed over the whole run.
        completed: u64,
        /// Applied reconfigurations.
        reconfigurations: u64,
        /// Events the bounded ring buffer had to drop.
        dropped_events: u64,
    },
}

impl TraceEvent {
    /// The stable `"kind"` discriminator this event serializes under.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Launched { .. } => "Launched",
            TraceEvent::SnapshotTaken { .. } => "SnapshotTaken",
            TraceEvent::TaskStatsSample { .. } => "TaskStatsSample",
            TraceEvent::ProposalEvaluated { .. } => "ProposalEvaluated",
            TraceEvent::ReconfigureEpoch { .. } => "ReconfigureEpoch",
            TraceEvent::FeatureRead { .. } => "FeatureRead",
            TraceEvent::QueueSample { .. } => "QueueSample",
            TraceEvent::TaskFailed { .. } => "TaskFailed",
            TraceEvent::DecisionTraced { .. } => "DecisionTraced",
            TraceEvent::AdmissionDecision { .. } => "AdmissionDecision",
            TraceEvent::Finished { .. } => "Finished",
        }
    }

    /// All `"kind"` discriminators of schema version [`SCHEMA_VERSION`],
    /// in documentation order.
    pub const KINDS: [&'static str; 11] = [
        "Launched",
        "SnapshotTaken",
        "TaskStatsSample",
        "ProposalEvaluated",
        "ReconfigureEpoch",
        "FeatureRead",
        "QueueSample",
        "TaskFailed",
        "DecisionTraced",
        "AdmissionDecision",
        "Finished",
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_matches_catalogue() {
        let event = TraceEvent::Finished {
            completed: 1,
            reconfigurations: 0,
            dropped_events: 0,
        };
        assert!(TraceEvent::KINDS.contains(&event.kind()));
    }

    #[test]
    fn verdict_equality() {
        assert_eq!(Verdict::Accepted, Verdict::Accepted);
        assert_ne!(
            Verdict::Rejected {
                code: DiagCode::BudgetExceeded
            },
            Verdict::Unchanged
        );
    }
}
