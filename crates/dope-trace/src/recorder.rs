//! The flight recorder proper: a lock-light, bounded ring buffer.
//!
//! A [`Recorder`] is a cheap, cloneable handle. A *disabled* recorder
//! ([`Recorder::disabled`]) carries no allocation and every call on it is
//! a no-op guarded by a single `Option` check — instrumented code pays
//! nothing when tracing is off. An *enabled* recorder
//! ([`Recorder::bounded`]) shares one ring buffer among all clones: the
//! executive thread, the monitor, worker pools, and platform callbacks
//! can all hold handles and append concurrently.
//!
//! When the ring is full the **oldest** events are evicted and a drop
//! counter advances; sequence numbers are never reused, so gaps in `seq`
//! tell a reader exactly how much was lost.
//!
//! # Example
//!
//! ```
//! use dope_trace::{Recorder, TraceEvent};
//!
//! let recorder = Recorder::bounded(2);
//! for watts in [100.0, 200.0, 300.0] {
//!     recorder.record(TraceEvent::FeatureRead {
//!         feature: "SystemPower".to_string(),
//!         value: watts,
//!     });
//! }
//! let records = recorder.records();
//! assert_eq!(records.len(), 2); // capacity 2: the first event was evicted
//! assert_eq!(records[0].seq, 1); // the gap at seq 0 marks the drop
//! assert_eq!(recorder.dropped(), 1);
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::codec::to_jsonl;
use crate::event::{TraceEvent, TraceRecord};

/// Shared state behind an enabled recorder.
struct Inner {
    /// Wall-clock origin; `record` stamps seconds since this instant.
    start: Instant,
    /// Next sequence number to assign.
    seq: AtomicU64,
    /// Events evicted because the ring was full.
    dropped: AtomicU64,
    /// Maximum records retained.
    capacity: usize,
    /// The ring itself.
    ring: Mutex<VecDeque<TraceRecord>>,
}

/// A cloneable handle onto a (possibly absent) ring buffer of
/// [`TraceRecord`]s.
///
/// See the [module documentation](self) for the contract.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Recorder(disabled)"),
            Some(inner) => f
                .debug_struct("Recorder")
                .field("capacity", &inner.capacity)
                .field("len", &inner.ring.lock().len())
                .field("dropped", &inner.dropped.load(Ordering::Relaxed))
                .finish(),
        }
    }
}

impl Recorder {
    /// A recorder that discards everything. All methods are no-ops; this
    /// is the zero-cost default instrumented code should hold.
    #[must_use]
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// A recorder retaining at most `capacity` records (minimum 1).
    ///
    /// Clones share the same buffer, start instant, and counters.
    #[must_use]
    pub fn bounded(capacity: usize) -> Self {
        Recorder {
            inner: Some(Arc::new(Inner {
                // dope-lint: allow(DL005): the recorder's single sanctioned clock anchor — every record path derives its time_secs from this instant
                start: Instant::now(),
                seq: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                capacity: capacity.max(1),
                ring: Mutex::new(VecDeque::new()),
            })),
        }
    }

    /// `true` if this handle actually records.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Seconds elapsed since the recorder was created (0 when disabled).
    #[must_use]
    pub fn elapsed_secs(&self) -> f64 {
        self.inner
            .as_ref()
            .map_or(0.0, |inner| inner.start.elapsed().as_secs_f64())
    }

    /// Records `event` stamped with the current wall-clock offset.
    pub fn record(&self, event: TraceEvent) {
        if let Some(inner) = &self.inner {
            let time_secs = inner.start.elapsed().as_secs_f64();
            Self::push(inner, time_secs, event);
        }
    }

    /// Records `event` stamped with an explicit timestamp (used by
    /// simulated sources, which stamp simulated seconds).
    pub fn record_at(&self, time_secs: f64, event: TraceEvent) {
        if let Some(inner) = &self.inner {
            Self::push(inner, time_secs, event);
        }
    }

    /// Records the event produced by `make`, but only when enabled.
    ///
    /// Use this when *building* the event is itself costly (cloning a
    /// snapshot, formatting a goal): the closure never runs on a
    /// disabled recorder.
    pub fn record_with(&self, make: impl FnOnce() -> TraceEvent) {
        if let Some(inner) = &self.inner {
            let time_secs = inner.start.elapsed().as_secs_f64();
            Self::push(inner, time_secs, make());
        }
    }

    fn push(inner: &Inner, time_secs: f64, event: TraceEvent) {
        let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        let mut ring = inner.ring.lock();
        if ring.len() >= inner.capacity {
            ring.pop_front();
            inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(TraceRecord {
            seq,
            time_secs,
            event,
        });
    }

    /// A snapshot of the retained records, oldest first.
    #[must_use]
    pub fn records(&self) -> Vec<TraceRecord> {
        self.inner.as_ref().map_or_else(Vec::new, |inner| {
            inner.ring.lock().iter().cloned().collect()
        })
    }

    /// Removes and returns the retained records, oldest first.
    #[must_use]
    pub fn drain(&self) -> Vec<TraceRecord> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |inner| inner.ring.lock().drain(..).collect())
    }

    /// How many events the ring evicted so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.dropped.load(Ordering::Relaxed))
    }

    /// How many records are currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.ring.lock().len())
    }

    /// `true` when nothing is retained (always `true` when disabled).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes the retained records as schema-versioned JSONL.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        to_jsonl(&self.records())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let recorder = Recorder::disabled();
        recorder.record(TraceEvent::FeatureRead {
            feature: "SystemPower".to_string(),
            value: 1.0,
        });
        assert!(!recorder.is_enabled());
        assert!(recorder.is_empty());
        assert_eq!(recorder.dropped(), 0);
        assert_eq!(recorder.to_jsonl(), "");
    }

    #[test]
    fn record_with_never_runs_when_disabled() {
        let recorder = Recorder::disabled();
        recorder.record_with(|| panic!("must not be called"));
    }

    #[test]
    fn clones_share_the_ring() {
        let a = Recorder::bounded(8);
        let b = a.clone();
        a.record(TraceEvent::FeatureRead {
            feature: "SystemPower".to_string(),
            value: 1.0,
        });
        b.record(TraceEvent::FeatureRead {
            feature: "SystemPower".to_string(),
            value: 2.0,
        });
        let records = a.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].seq, 0);
        assert_eq!(records[1].seq, 1);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let recorder = Recorder::bounded(3);
        for i in 0..5 {
            recorder.record_at(
                f64::from(i),
                TraceEvent::FeatureRead {
                    feature: "SystemPower".to_string(),
                    value: f64::from(i),
                },
            );
        }
        let records = recorder.records();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].seq, 2);
        assert_eq!(records[2].seq, 4);
        assert_eq!(recorder.dropped(), 2);
    }

    #[test]
    fn drain_empties_the_ring() {
        let recorder = Recorder::bounded(4);
        recorder.record_at(
            0.0,
            TraceEvent::Finished {
                completed: 1,
                reconfigurations: 0,
                dropped_events: 0,
            },
        );
        assert_eq!(recorder.drain().len(), 1);
        assert!(recorder.is_empty());
    }

    #[test]
    fn explicit_timestamps_are_kept_verbatim() {
        let recorder = Recorder::bounded(4);
        recorder.record_at(
            12.5,
            TraceEvent::Finished {
                completed: 1,
                reconfigurations: 0,
                dropped_events: 0,
            },
        );
        assert_eq!(recorder.records()[0].time_secs, 12.5);
    }
}
