//! ASCII rendering of a trace as a human-readable timeline.
//!
//! One record becomes one line: a right-aligned timestamp, an upper-case
//! event tag, and the fields an operator scans for. Sequence gaps (events
//! the bounded ring evicted) render as an explicit `~~ n dropped ~~`
//! marker so a reader never mistakes a truncated trace for a quiet one.
//!
//! # Example
//!
//! ```
//! use dope_trace::{render_timeline, TraceEvent, TraceRecord};
//!
//! let records = vec![TraceRecord {
//!     seq: 0,
//!     time_secs: 0.25,
//!     event: TraceEvent::FeatureRead {
//!         feature: "SystemPower".to_string(),
//!         value: 612.5,
//!     },
//! }];
//! let timeline = render_timeline(&records);
//! assert!(timeline.contains("FEATURE"));
//! assert!(timeline.contains("SystemPower=612.5"));
//! ```

use std::fmt::Write as _;

use crate::event::{TraceEvent, TraceRecord, Verdict};

/// Renders `records` as an ASCII timeline, one line per record.
#[must_use]
pub fn render_timeline(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    let mut expected_seq: Option<u64> = None;
    for record in records {
        if let Some(expected) = expected_seq {
            if record.seq > expected {
                let _ = writeln!(out, "          ~~ {} dropped ~~", record.seq - expected);
            }
        }
        expected_seq = Some(record.seq + 1);
        let _ = writeln!(
            out,
            "{:>9.3}s  {}",
            record.time_secs,
            describe(&record.event)
        );
    }
    out
}

/// One-line description of an event, tag first.
fn describe(event: &TraceEvent) -> String {
    match event {
        TraceEvent::Launched {
            mechanism,
            goal,
            threads,
            shape,
            config,
        } => format!(
            "LAUNCH   {mechanism} goal=\"{goal}\" threads={threads} tasks={} config={config}",
            shape.leaf_paths().len()
        ),
        TraceEvent::SnapshotTaken { snapshot } => {
            let power = snapshot
                .power_watts
                .map_or_else(|| "-".to_string(), |w| format!("{w:.1}W"));
            format!(
                "SNAPSHOT tasks={} queue={:.1} power={power} dispatches={}",
                snapshot.tasks.len(),
                snapshot.queue.occupancy,
                snapshot.dispatches_since_reconfig
            )
        }
        TraceEvent::TaskStatsSample { path, stats } => format!(
            "STATS    {path} invocations={} exec={:.4}s thr={:.2}/s load={:.2} util={:.2}",
            stats.invocations, stats.mean_exec_secs, stats.throughput, stats.load, stats.utilization
        ),
        TraceEvent::ProposalEvaluated {
            mechanism,
            proposal,
            verdict,
        } => {
            let judged = match verdict {
                Verdict::Accepted => "ACCEPTED".to_string(),
                Verdict::Unchanged => "unchanged".to_string(),
                Verdict::Rejected { code } => format!("REJECTED {}", code.as_str()),
                Verdict::Superseded => "SUPERSEDED".to_string(),
            };
            format!("PROPOSE  {mechanism} -> {judged} proposal={proposal}")
        }
        TraceEvent::ReconfigureEpoch {
            pause_secs,
            relaunch_secs,
            jobs,
            config,
            scope,
            paths_drained,
        } => format!(
            "EPOCH    {scope} pause={:.1}ms relaunch={:.1}ms drained={paths_drained} \
             jobs={jobs} config={config}",
            pause_secs * 1e3,
            relaunch_secs * 1e3
        ),
        TraceEvent::FeatureRead { feature, value } => format!("FEATURE  {feature}={value}"),
        TraceEvent::QueueSample { queue } => format!(
            "QUEUE    occupancy={:.1} rate={:.2}/s enqueued={} completed={}",
            queue.occupancy, queue.arrival_rate, queue.enqueued, queue.completed
        ),
        TraceEvent::TaskFailed {
            path,
            reason,
            policy,
        } => format!("FAILED   {path} policy={policy} reason=\"{reason}\""),
        TraceEvent::DecisionTraced {
            mechanism,
            rationale,
            candidates,
            chosen,
            predicted_throughput,
            realized_throughput,
            prediction_error,
            ..
        } => {
            let mut line = format!(
                "DECIDE   {mechanism} rationale={} chosen=\"{chosen}\" candidates={}",
                rationale.code(),
                candidates.len()
            );
            if let Some(p) = predicted_throughput {
                let _ = write!(line, " predicted={p:.2}/s");
            }
            if let Some(r) = realized_throughput {
                let _ = write!(line, " realized={r:.2}/s");
            }
            if let Some(e) = prediction_error {
                let _ = write!(line, " error={:+.1}%", e * 100.0);
            }
            line
        }
        TraceEvent::AdmissionDecision {
            policy,
            verdict,
            reason,
            queue_delay_secs,
            offered,
            admitted,
            shed,
        } => {
            let mut line = format!(
                "ADMIT    {policy} verdict={verdict} offered={offered} admitted={admitted} \
                 shed={shed} delay={:.1}ms",
                queue_delay_secs * 1e3
            );
            if reason != "none" {
                let _ = write!(line, " reason={reason}");
            }
            line
        }
        TraceEvent::Finished {
            completed,
            reconfigurations,
            dropped_events,
        } => format!(
            "FINISH   completed={completed} reconfigurations={reconfigurations} dropped={dropped_events}"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dope_core::DiagCode;
    use dope_core::{Config, TaskConfig};

    fn record(seq: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            seq,
            time_secs: seq as f64,
            event,
        }
    }

    #[test]
    fn every_kind_renders_its_tag() {
        let config = Config::new(vec![TaskConfig::leaf("t", 1)]);
        let lines = render_timeline(&[
            record(
                0,
                TraceEvent::ProposalEvaluated {
                    mechanism: "WQ-Linear".to_string(),
                    proposal: config.clone(),
                    verdict: Verdict::Rejected {
                        code: DiagCode::BudgetExceeded,
                    },
                },
            ),
            record(
                1,
                TraceEvent::ProposalEvaluated {
                    mechanism: "WQ-Linear".to_string(),
                    proposal: config.clone(),
                    verdict: Verdict::Superseded,
                },
            ),
            record(
                2,
                TraceEvent::ReconfigureEpoch {
                    pause_secs: 0.0012,
                    relaunch_secs: 0.0008,
                    jobs: 8,
                    config: config.clone(),
                    scope: "full".to_string(),
                    paths_drained: 3,
                },
            ),
            record(
                3,
                TraceEvent::ReconfigureEpoch {
                    pause_secs: 0.0002,
                    relaunch_secs: 0.0001,
                    jobs: 9,
                    config,
                    scope: "partial".to_string(),
                    paths_drained: 1,
                },
            ),
        ]);
        assert!(lines.contains("PROPOSE"), "{lines}");
        assert!(lines.contains("REJECTED DV001"), "{lines}");
        assert!(lines.contains("SUPERSEDED"), "{lines}");
        assert!(lines.contains("EPOCH"), "{lines}");
        assert!(lines.contains("full pause=1.2ms"), "{lines}");
        assert!(lines.contains("drained=3"), "{lines}");
        assert!(lines.contains("partial pause=0.2ms"), "{lines}");
        assert!(lines.contains("drained=1"), "{lines}");
    }

    #[test]
    fn task_failures_render_path_policy_and_reason() {
        let lines = render_timeline(&[record(
            0,
            TraceEvent::TaskFailed {
                path: "0.1".parse().unwrap(),
                reason: "index out of bounds".to_string(),
                policy: "degrade".to_string(),
            },
        )]);
        assert!(lines.contains("FAILED"), "{lines}");
        assert!(lines.contains("0.1"), "{lines}");
        assert!(lines.contains("policy=degrade"), "{lines}");
        assert!(lines.contains("index out of bounds"), "{lines}");
    }

    #[test]
    fn admission_decisions_render_counters_and_reason() {
        let lines = render_timeline(&[
            record(
                0,
                TraceEvent::AdmissionDecision {
                    policy: "shed".to_string(),
                    verdict: "shed".to_string(),
                    reason: "high_water".to_string(),
                    queue_delay_secs: 0.0425,
                    offered: 64,
                    admitted: 50,
                    shed: 14,
                },
            ),
            record(
                1,
                TraceEvent::AdmissionDecision {
                    policy: "block".to_string(),
                    verdict: "admitted".to_string(),
                    reason: "none".to_string(),
                    queue_delay_secs: 0.002,
                    offered: 10,
                    admitted: 10,
                    shed: 0,
                },
            ),
        ]);
        assert!(lines.contains("ADMIT"), "{lines}");
        assert!(lines.contains("shed verdict=shed"), "{lines}");
        assert!(lines.contains("offered=64"), "{lines}");
        assert!(lines.contains("reason=high_water"), "{lines}");
        assert!(lines.contains("delay=42.5ms"), "{lines}");
        // A fully-admitted window omits the reason field entirely.
        assert!(lines.contains("block verdict=admitted"), "{lines}");
        assert!(!lines.contains("reason=none"), "{lines}");
    }

    #[test]
    fn sequence_gaps_render_a_drop_marker() {
        let lines = render_timeline(&[
            record(
                0,
                TraceEvent::FeatureRead {
                    feature: "SystemPower".to_string(),
                    value: 1.0,
                },
            ),
            record(
                5,
                TraceEvent::FeatureRead {
                    feature: "SystemPower".to_string(),
                    value: 2.0,
                },
            ),
        ]);
        assert!(lines.contains("~~ 4 dropped ~~"), "{lines}");
    }

    #[test]
    fn empty_trace_renders_empty() {
        assert_eq!(render_timeline(&[]), "");
    }
}
