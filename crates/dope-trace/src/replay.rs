//! Deterministic replay of a recorded trace into `dope-sim`.
//!
//! A trace fixes three things: the program **shape** (from the `Launched`
//! event), the **initial configuration** (ditto), and the ordered
//! sequence of **accepted configurations** (the `ReconfigureEpoch`
//! events). [`replay_into_sim`] rebuilds a simulated system around that
//! shape, drives it with a [`ReplayMechanism`] that re-proposes exactly
//! the recorded configurations in order, and returns a [`ReplayOutcome`]
//! comparing the recorded accepted-config sequence against the one the
//! simulator actually applied. A faithful trace replays to an identical
//! sequence — [`ReplayOutcome::matches`] is the regression check the
//! test-suite (and `dope-trace replay`) asserts.
//!
//! # Example
//!
//! ```
//! use dope_core::{Mechanism, Resources, StaticMechanism};
//! use dope_sim::profile::AmdahlProfile;
//! use dope_sim::system::{run_system_observed, SystemParams, TwoLevelModel};
//! use dope_trace::{replay_into_sim, Recorder, RecordingObserver};
//! use dope_workload::ArrivalSchedule;
//!
//! // Record a short run...
//! let model = TwoLevelModel::pipeline("transcode", AmdahlProfile::new(4.0, 0.9, 0.1, 0.05));
//! let mut mech = StaticMechanism::new(model.config_for_width(8, 4));
//! let recorder = Recorder::bounded(4096);
//! let mut observer = RecordingObserver::new(recorder.clone());
//! run_system_observed(
//!     &model,
//!     &ArrivalSchedule::uniform(1.0, 5),
//!     &mut mech,
//!     Resources::threads(8),
//!     &SystemParams::default(),
//!     &mut observer,
//! );
//!
//! // ...then replay it: the accepted-config sequences must agree.
//! let outcome = replay_into_sim(&recorder.records()).unwrap();
//! assert!(outcome.matches());
//! ```

use dope_core::nest;
use dope_core::{Config, Mechanism, MonitorSnapshot, ProgramShape, Resources};
use dope_sim::profile::AmdahlProfile;
use dope_sim::system::{run_system_observed, SystemParams, TwoLevelModel};
use dope_sim::{ProposalOutcome, SimObserver};
use dope_workload::ArrivalSchedule;

use crate::event::{TraceEvent, TraceRecord};

/// A [`Mechanism`] that re-proposes the configurations of a recorded
/// trace, in order.
///
/// [`initial`](Mechanism::initial) returns the trace's launch
/// configuration; each subsequent [`reconfigure`](Mechanism::reconfigure)
/// call pops the next recorded `ReconfigureEpoch` configuration until the
/// queue is exhausted, then proposes nothing.
#[derive(Debug, Clone)]
pub struct ReplayMechanism {
    initial: Option<Config>,
    queued: std::collections::VecDeque<Config>,
}

impl ReplayMechanism {
    /// Builds a replayer from the records of one trace.
    ///
    /// Returns `None` if the trace has no `Launched` event (there is
    /// nothing to anchor the replay to).
    #[must_use]
    pub fn from_records(records: &[TraceRecord]) -> Option<Self> {
        let mut initial = None;
        let mut queued = std::collections::VecDeque::new();
        for record in records {
            // Exhaustive on purpose (DL001): replay re-drives the
            // configuration decisions, so every *other* event kind is a
            // conscious "carries no configuration" decision here, and a
            // future kind must be classified, not silently dropped.
            match &record.event {
                TraceEvent::Launched { config, .. } => initial = Some(config.clone()),
                TraceEvent::ReconfigureEpoch { config, .. } => queued.push_back(config.clone()),
                TraceEvent::SnapshotTaken { .. }
                | TraceEvent::TaskStatsSample { .. }
                | TraceEvent::ProposalEvaluated { .. }
                | TraceEvent::FeatureRead { .. }
                | TraceEvent::QueueSample { .. }
                | TraceEvent::TaskFailed { .. }
                | TraceEvent::DecisionTraced { .. }
                | TraceEvent::AdmissionDecision { .. }
                | TraceEvent::Finished { .. } => {}
            }
        }
        initial.map(|initial| ReplayMechanism {
            initial: Some(initial),
            queued,
        })
    }

    /// Configurations not yet re-proposed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.queued.len()
    }
}

impl Mechanism for ReplayMechanism {
    fn name(&self) -> &'static str {
        "Replay"
    }

    fn reconfigure(
        &mut self,
        _snap: &MonitorSnapshot,
        _current: &Config,
        _shape: &ProgramShape,
        _res: &Resources,
    ) -> Option<Config> {
        self.queued.pop_front()
    }

    fn initial(&mut self, _shape: &ProgramShape, _res: &Resources) -> Option<Config> {
        self.initial.clone()
    }
}

/// The accepted-configuration sequence of a trace: the launch
/// configuration followed by every `ReconfigureEpoch` configuration, in
/// record order.
#[must_use]
pub fn accepted_configs(records: &[TraceRecord]) -> Vec<Config> {
    let mut configs = Vec::new();
    for record in records {
        match &record.event {
            TraceEvent::Launched { config, .. } | TraceEvent::ReconfigureEpoch { config, .. } => {
                configs.push(config.clone());
            }
            _ => {}
        }
    }
    configs
}

/// Result of replaying a trace through the simulator.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// The configuration the trace launched with.
    pub launched: Config,
    /// Accepted-config sequence read from the trace (launch included).
    pub recorded: Vec<Config>,
    /// Accepted-config sequence the simulator applied on replay (launch
    /// included).
    pub replayed: Vec<Config>,
}

impl ReplayOutcome {
    /// `true` when the replayed sequence is identical to the recorded
    /// one — the determinism contract of the flight recorder.
    #[must_use]
    pub fn matches(&self) -> bool {
        self.recorded == self.replayed
    }
}

/// Collects the applied-config sequence of a replay run.
#[derive(Debug, Default)]
struct Collector {
    applied: Vec<Config>,
}

impl SimObserver for Collector {
    fn launched(
        &mut self,
        _mechanism: &str,
        _threads: u32,
        _shape: &ProgramShape,
        config: &Config,
    ) {
        self.applied.push(config.clone());
    }

    fn proposal_evaluated(
        &mut self,
        _time_secs: f64,
        _mechanism: &str,
        _proposal: &Config,
        _outcome: ProposalOutcome,
    ) {
    }

    fn config_applied(&mut self, _time_secs: f64, config: &Config) {
        self.applied.push(config.clone());
    }
}

/// Replays a recorded trace into a fresh simulated system.
///
/// # Errors
///
/// Returns a description of the problem when the trace has no `Launched`
/// event or its shape contains no two-level nest the simulator can model.
pub fn replay_into_sim(records: &[TraceRecord]) -> Result<ReplayOutcome, String> {
    let (shape, threads, launched) = records
        .iter()
        .find_map(|record| match &record.event {
            TraceEvent::Launched {
                shape,
                threads,
                config,
                ..
            } => Some((shape.clone(), *threads, config.clone())),
            _ => None,
        })
        .ok_or_else(|| "trace has no Launched event".to_string())?;
    if nest::find_two_level(&shape).is_none() {
        return Err("trace shape has no two-level nest the simulator can model".to_string());
    }

    let recorded = accepted_configs(records);
    let mut mechanism = ReplayMechanism::from_records(records)
        .ok_or_else(|| "trace has no Launched event".to_string())?;

    // A mild profile: replay checks *decisions*, not service times.
    let model = TwoLevelModel::custom("replay", shape, AmdahlProfile::new(1.0, 0.9, 0.05, 0.02));
    // The mechanism is consulted once per arrival; two spare arrivals
    // guarantee every queued configuration gets a consult even if the
    // first arrival's consult happens before the launch config settles.
    let schedule = ArrivalSchedule::uniform(0.5, recorded.len() + 2);
    let params = SystemParams {
        contexts: threads.max(1),
        ..SystemParams::default()
    };
    let mut collector = Collector::default();
    let _ = run_system_observed(
        &model,
        &schedule,
        &mut mechanism,
        Resources::threads(threads.max(1)),
        &params,
        &mut collector,
    );

    Ok(ReplayOutcome {
        launched,
        recorded,
        replayed: collector.applied,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use crate::RecordingObserver;
    use dope_core::StaticMechanism;

    fn record_pipeline_run(widths: &[u32]) -> Vec<TraceRecord> {
        let model = TwoLevelModel::pipeline("transcode", AmdahlProfile::new(2.0, 0.9, 0.05, 0.02));
        let recorder = Recorder::bounded(4096);
        let mut observer = RecordingObserver::new(recorder.clone());
        // A scripted mechanism: propose each width once, in order.
        struct Script {
            configs: std::collections::VecDeque<Config>,
        }
        impl Mechanism for Script {
            fn name(&self) -> &'static str {
                "Script"
            }
            fn reconfigure(
                &mut self,
                _snap: &MonitorSnapshot,
                _current: &Config,
                _shape: &ProgramShape,
                _res: &Resources,
            ) -> Option<Config> {
                self.configs.pop_front()
            }
        }
        let mut mech = Script {
            configs: widths
                .iter()
                .map(|w| model.config_for_width(8, *w))
                .collect(),
        };
        let _ = run_system_observed(
            &model,
            &ArrivalSchedule::uniform(0.5, widths.len() + 3),
            &mut mech,
            Resources::threads(8),
            &SystemParams {
                contexts: 8,
                ..SystemParams::default()
            },
            &mut observer,
        );
        recorder.records()
    }

    #[test]
    fn replay_reproduces_the_accepted_sequence() {
        let records = record_pipeline_run(&[4, 6, 1]);
        let outcome = replay_into_sim(&records).expect("replay");
        assert!(outcome.recorded.len() >= 2, "run must reconfigure");
        assert!(outcome.matches(), "replayed sequence diverged");
    }

    #[test]
    fn replay_of_static_run_matches_trivially() {
        let records = record_pipeline_run(&[]);
        let outcome = replay_into_sim(&records).expect("replay");
        assert_eq!(outcome.recorded.len(), 1);
        assert!(outcome.matches());
        assert_eq!(outcome.launched, outcome.recorded[0]);
    }

    #[test]
    fn replay_without_launch_is_an_error() {
        let err = replay_into_sim(&[]).unwrap_err();
        assert!(err.contains("Launched"), "{err}");
    }

    #[test]
    fn replay_mechanism_pops_in_order() {
        // Widths 4 and 6 map to distinct parallel configurations (width 2
        // would clamp to the sequential alternative and record nothing).
        let records = record_pipeline_run(&[4, 6]);
        let mut mech = ReplayMechanism::from_records(&records).expect("mechanism");
        assert_eq!(mech.remaining(), 2);
        let shape = ProgramShape::new(vec![]);
        let res = Resources::threads(8);
        let snap = MonitorSnapshot::at(0.0);
        let current = Config::default();
        let first = mech.reconfigure(&snap, &current, &shape, &res).unwrap();
        let second = mech.reconfigure(&snap, &current, &shape, &res).unwrap();
        assert_ne!(first, second);
        assert!(mech.reconfigure(&snap, &current, &shape, &res).is_none());
        let _ = StaticMechanism::new(first);
    }
}
