//! The strict JSONL codec for traces.
//!
//! Every [`TraceRecord`] serializes to one line of JSON with the shape
//! `{"v": 1, "seq": N, "t": SECS, "kind": "...", ...}` — see
//! `docs/event-schema.md` for the field-by-field contract. Encoding and
//! parsing are built on [`dope_core::json`], the same hand-rolled strict
//! codec the `dope-verify` CLI uses (the vendored `serde` is a no-op
//! shim), so traces parse with byte-offset errors and round-trip
//! losslessly.
//!
//! # Example
//!
//! ```
//! use dope_trace::codec::{parse_line, to_jsonl_line};
//! use dope_trace::{TraceEvent, TraceRecord};
//!
//! let record = TraceRecord {
//!     seq: 7,
//!     time_secs: 1.5,
//!     event: TraceEvent::FeatureRead {
//!         feature: "SystemPower".to_string(),
//!         value: 612.5,
//!     },
//! };
//! let line = to_jsonl_line(&record);
//! assert_eq!(
//!     line,
//!     r#"{"v": 1, "seq": 7, "t": 1.5, "kind": "FeatureRead", "feature": "SystemPower", "value": 612.5}"#
//! );
//! assert_eq!(parse_line(&line).unwrap(), record);
//! ```

use crate::event::{TraceEvent, TraceRecord, Verdict, SCHEMA_VERSION};
use dope_core::json::{
    config_from_value, config_to_value, parse, shape_from_value, shape_to_value, JsonError, Value,
};
use dope_core::{
    AdmissionStats, DecisionCandidate, DiagCode, MonitorSnapshot, QueueStats, Rationale, TaskPath,
    TaskStats,
};

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn queue_to_value(queue: &QueueStats) -> Value {
    Value::Object(vec![
        ("occupancy".to_string(), Value::from_f64(queue.occupancy)),
        (
            "arrival_rate".to_string(),
            Value::from_f64(queue.arrival_rate),
        ),
        ("enqueued".to_string(), Value::Number(queue.enqueued)),
        ("completed".to_string(), Value::Number(queue.completed)),
    ])
}

fn task_stats_fields(stats: &TaskStats) -> Vec<(String, Value)> {
    vec![
        ("invocations".to_string(), Value::Number(stats.invocations)),
        (
            "mean_exec_secs".to_string(),
            Value::from_f64(stats.mean_exec_secs),
        ),
        ("throughput".to_string(), Value::from_f64(stats.throughput)),
        ("load".to_string(), Value::from_f64(stats.load)),
        (
            "utilization".to_string(),
            Value::from_f64(stats.utilization),
        ),
        // Additive since the metrics plane landed; readers of older
        // traces default these to 0.0 ("not measured"), so the schema
        // version stays 1.
        (
            "p50_exec_secs".to_string(),
            Value::from_f64(stats.p50_exec_secs),
        ),
        (
            "p95_exec_secs".to_string(),
            Value::from_f64(stats.p95_exec_secs),
        ),
        (
            "p99_exec_secs".to_string(),
            Value::from_f64(stats.p99_exec_secs),
        ),
    ]
}

fn admission_to_value(admission: &AdmissionStats) -> Value {
    Value::Object(vec![
        ("offered".to_string(), Value::Number(admission.offered)),
        ("admitted".to_string(), Value::Number(admission.admitted)),
        (
            "shed_high_water".to_string(),
            Value::Number(admission.shed_high_water),
        ),
        (
            "shed_deadline".to_string(),
            Value::Number(admission.shed_deadline),
        ),
        (
            "mean_queue_delay_secs".to_string(),
            Value::from_f64(admission.mean_queue_delay_secs),
        ),
    ])
}

fn snapshot_to_value(snap: &MonitorSnapshot) -> Value {
    let tasks = snap
        .tasks
        .iter()
        .map(|(path, stats)| {
            let mut fields = vec![("path".to_string(), Value::String(path.to_string()))];
            fields.extend(task_stats_fields(stats));
            Value::Object(fields)
        })
        .collect();
    Value::Object(vec![
        ("time_secs".to_string(), Value::from_f64(snap.time_secs)),
        ("tasks".to_string(), Value::Array(tasks)),
        ("queue".to_string(), queue_to_value(&snap.queue)),
        (
            "power_watts".to_string(),
            snap.power_watts.map_or(Value::Null, Value::from_f64),
        ),
        (
            "dispatches_since_reconfig".to_string(),
            Value::Number(snap.dispatches_since_reconfig),
        ),
        // Additive since the admission gate landed; readers of older
        // traces default the whole object to all-zero ("no gate").
        ("admission".to_string(), admission_to_value(&snap.admission)),
    ])
}

/// Encodes a record as a JSON [`Value`] (one object per line).
#[must_use]
pub fn record_to_value(record: &TraceRecord) -> Value {
    let mut fields = vec![
        ("v".to_string(), Value::Number(SCHEMA_VERSION)),
        ("seq".to_string(), Value::Number(record.seq)),
        ("t".to_string(), Value::from_f64(record.time_secs)),
        (
            "kind".to_string(),
            Value::String(record.event.kind().to_string()),
        ),
    ];
    match &record.event {
        TraceEvent::Launched {
            mechanism,
            goal,
            threads,
            shape,
            config,
        } => {
            fields.push(("mechanism".to_string(), Value::String(mechanism.clone())));
            fields.push(("goal".to_string(), Value::String(goal.clone())));
            fields.push(("threads".to_string(), Value::Number(u64::from(*threads))));
            fields.push(("shape".to_string(), shape_to_value(shape)));
            fields.push(("config".to_string(), config_to_value(config)));
        }
        TraceEvent::SnapshotTaken { snapshot } => {
            fields.push(("snapshot".to_string(), snapshot_to_value(snapshot)));
        }
        TraceEvent::TaskStatsSample { path, stats } => {
            fields.push(("path".to_string(), Value::String(path.to_string())));
            fields.push(("stats".to_string(), Value::Object(task_stats_fields(stats))));
        }
        TraceEvent::ProposalEvaluated {
            mechanism,
            proposal,
            verdict,
        } => {
            fields.push(("mechanism".to_string(), Value::String(mechanism.clone())));
            fields.push(("proposal".to_string(), config_to_value(proposal)));
            let (verdict_str, code) = match verdict {
                Verdict::Accepted => ("accepted", None),
                Verdict::Unchanged => ("unchanged", None),
                Verdict::Rejected { code } => ("rejected", Some(*code)),
                Verdict::Superseded => ("superseded", None),
            };
            fields.push((
                "verdict".to_string(),
                Value::String(verdict_str.to_string()),
            ));
            if let Some(code) = code {
                fields.push(("code".to_string(), Value::String(code.as_str().to_string())));
            }
        }
        TraceEvent::ReconfigureEpoch {
            pause_secs,
            relaunch_secs,
            jobs,
            config,
            scope,
            paths_drained,
        } => {
            fields.push(("pause_secs".to_string(), Value::from_f64(*pause_secs)));
            fields.push(("relaunch_secs".to_string(), Value::from_f64(*relaunch_secs)));
            fields.push(("jobs".to_string(), Value::Number(*jobs)));
            fields.push(("config".to_string(), config_to_value(config)));
            fields.push(("scope".to_string(), Value::String(scope.clone())));
            fields.push(("paths_drained".to_string(), Value::Number(*paths_drained)));
        }
        TraceEvent::FeatureRead { feature, value } => {
            fields.push(("feature".to_string(), Value::String(feature.clone())));
            fields.push(("value".to_string(), Value::from_f64(*value)));
        }
        TraceEvent::QueueSample { queue } => {
            fields.push(("queue".to_string(), queue_to_value(queue)));
        }
        TraceEvent::TaskFailed {
            path,
            reason,
            policy,
        } => {
            fields.push(("path".to_string(), Value::String(path.to_string())));
            fields.push(("reason".to_string(), Value::String(reason.clone())));
            fields.push(("policy".to_string(), Value::String(policy.clone())));
        }
        TraceEvent::DecisionTraced {
            mechanism,
            rationale,
            observed,
            candidates,
            chosen,
            predicted_throughput,
            realized_throughput,
            prediction_error,
        } => {
            fields.push(("mechanism".to_string(), Value::String(mechanism.clone())));
            fields.push((
                "rationale".to_string(),
                Value::String(rationale.code().to_string()),
            ));
            fields.push((
                "observed".to_string(),
                Value::Array(
                    observed
                        .iter()
                        .map(|(signal, value)| {
                            Value::Object(vec![
                                ("signal".to_string(), Value::String(signal.clone())),
                                ("value".to_string(), Value::from_f64(*value)),
                            ])
                        })
                        .collect(),
                ),
            ));
            fields.push((
                "candidates".to_string(),
                Value::Array(
                    candidates
                        .iter()
                        .map(|c| {
                            Value::Object(vec![
                                ("action".to_string(), Value::String(c.action.clone())),
                                ("score".to_string(), Value::from_f64(c.score)),
                                (
                                    "predicted_throughput".to_string(),
                                    c.predicted_throughput.map_or(Value::Null, Value::from_f64),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ));
            fields.push(("chosen".to_string(), Value::String(chosen.clone())));
            fields.push((
                "predicted_throughput".to_string(),
                predicted_throughput.map_or(Value::Null, Value::from_f64),
            ));
            fields.push((
                "realized_throughput".to_string(),
                realized_throughput.map_or(Value::Null, Value::from_f64),
            ));
            fields.push((
                "prediction_error".to_string(),
                prediction_error.map_or(Value::Null, Value::from_f64),
            ));
        }
        TraceEvent::AdmissionDecision {
            policy,
            verdict,
            reason,
            queue_delay_secs,
            offered,
            admitted,
            shed,
        } => {
            fields.push(("policy".to_string(), Value::String(policy.clone())));
            fields.push(("verdict".to_string(), Value::String(verdict.clone())));
            fields.push(("reason".to_string(), Value::String(reason.clone())));
            fields.push((
                "queue_delay_secs".to_string(),
                Value::from_f64(*queue_delay_secs),
            ));
            fields.push(("offered".to_string(), Value::Number(*offered)));
            fields.push(("admitted".to_string(), Value::Number(*admitted)));
            fields.push(("shed".to_string(), Value::Number(*shed)));
        }
        TraceEvent::Finished {
            completed,
            reconfigurations,
            dropped_events,
        } => {
            fields.push(("completed".to_string(), Value::Number(*completed)));
            fields.push((
                "reconfigurations".to_string(),
                Value::Number(*reconfigurations),
            ));
            fields.push(("dropped_events".to_string(), Value::Number(*dropped_events)));
        }
    }
    Value::Object(fields)
}

/// Renders a record as one JSONL line (no trailing newline).
#[must_use]
pub fn to_jsonl_line(record: &TraceRecord) -> String {
    record_to_value(record).to_json()
}

/// Renders a whole trace as JSONL, one record per line, newline-terminated.
#[must_use]
pub fn to_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for record in records {
        out.push_str(&to_jsonl_line(record));
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

fn req<'a>(value: &'a Value, key: &str) -> Result<&'a Value, JsonError> {
    value
        .get(key)
        .ok_or_else(|| JsonError::decode(format!("trace record is missing `{key}`")))
}

fn req_u64(value: &Value, key: &str) -> Result<u64, JsonError> {
    req(value, key)?
        .as_u64()
        .ok_or_else(|| JsonError::decode(format!("`{key}` must be a non-negative integer")))
}

fn req_f64(value: &Value, key: &str) -> Result<f64, JsonError> {
    req(value, key)?
        .as_f64()
        .ok_or_else(|| JsonError::decode(format!("`{key}` must be a number")))
}

fn req_str<'a>(value: &'a Value, key: &str) -> Result<&'a str, JsonError> {
    req(value, key)?
        .as_str()
        .ok_or_else(|| JsonError::decode(format!("`{key}` must be a string")))
}

fn req_path(value: &Value, key: &str) -> Result<TaskPath, JsonError> {
    req_str(value, key)?
        .parse()
        .map_err(|_| JsonError::decode(format!("`{key}` is not a valid task path")))
}

fn queue_from_value(value: &Value) -> Result<QueueStats, JsonError> {
    Ok(QueueStats {
        occupancy: req_f64(value, "occupancy")?,
        arrival_rate: req_f64(value, "arrival_rate")?,
        enqueued: req_u64(value, "enqueued")?,
        completed: req_u64(value, "completed")?,
    })
}

/// Reads an *optional* numeric field: absent (old traces) or `null`
/// decodes as `default`; present-but-mistyped is still an error.
fn opt_f64(value: &Value, key: &str, default: f64) -> Result<f64, JsonError> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| JsonError::decode(format!("`{key}` must be a number or null"))),
    }
}

/// Reads an optional numeric field where absence is meaningful: absent or
/// `null` decodes as `None` ("not measured"); mistyped is an error.
fn opt_f64_or_none(value: &Value, key: &str) -> Result<Option<f64>, JsonError> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| JsonError::decode(format!("`{key}` must be a number or null"))),
    }
}

/// Reads an *optional* string field: absent or `null` (old traces)
/// decodes as `default`; present-but-mistyped is still an error.
fn opt_str(value: &Value, key: &str, default: &str) -> Result<String, JsonError> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(default.to_string()),
        Some(v) => v
            .as_str()
            .map(ToString::to_string)
            .ok_or_else(|| JsonError::decode(format!("`{key}` must be a string or null"))),
    }
}

/// Reads an *optional* non-negative integer field: absent or `null`
/// (old traces) decodes as `default`; present-but-mistyped is still an
/// error.
fn opt_u64(value: &Value, key: &str, default: u64) -> Result<u64, JsonError> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(v) => v.as_u64().ok_or_else(|| {
            JsonError::decode(format!("`{key}` must be a non-negative integer or null"))
        }),
    }
}

fn task_stats_from_value(value: &Value) -> Result<TaskStats, JsonError> {
    Ok(TaskStats {
        invocations: req_u64(value, "invocations")?,
        mean_exec_secs: req_f64(value, "mean_exec_secs")?,
        throughput: req_f64(value, "throughput")?,
        load: req_f64(value, "load")?,
        utilization: req_f64(value, "utilization")?,
        // Additive v1 fields: traces written before the metrics plane
        // landed simply omit them, which decodes as "not measured".
        p50_exec_secs: opt_f64(value, "p50_exec_secs", 0.0)?,
        p95_exec_secs: opt_f64(value, "p95_exec_secs", 0.0)?,
        p99_exec_secs: opt_f64(value, "p99_exec_secs", 0.0)?,
    })
}

fn snapshot_from_value(value: &Value) -> Result<MonitorSnapshot, JsonError> {
    let mut snap = MonitorSnapshot::at(req_f64(value, "time_secs")?);
    let tasks = req(value, "tasks")?
        .as_array()
        .ok_or_else(|| JsonError::decode("snapshot `tasks` must be an array"))?;
    for task in tasks {
        snap.tasks
            .insert(req_path(task, "path")?, task_stats_from_value(task)?);
    }
    snap.queue = queue_from_value(req(value, "queue")?)?;
    snap.power_watts = match value.get("power_watts") {
        None | Some(Value::Null) => None,
        Some(v) => Some(
            v.as_f64()
                .ok_or_else(|| JsonError::decode("`power_watts` must be a number or null"))?,
        ),
    };
    snap.dispatches_since_reconfig = req_u64(value, "dispatches_since_reconfig")?;
    // Additive v1 object: absent or null (pre-admission traces) decodes
    // as all-zero; present-but-mistyped is still an error.
    snap.admission = match value.get("admission") {
        None | Some(Value::Null) => AdmissionStats::default(),
        Some(adm) => AdmissionStats {
            offered: req_u64(adm, "offered")?,
            admitted: req_u64(adm, "admitted")?,
            shed_high_water: req_u64(adm, "shed_high_water")?,
            shed_deadline: req_u64(adm, "shed_deadline")?,
            mean_queue_delay_secs: req_f64(adm, "mean_queue_delay_secs")?,
        },
    };
    Ok(snap)
}

fn verdict_from_value(value: &Value) -> Result<Verdict, JsonError> {
    match req_str(value, "verdict")? {
        "accepted" => Ok(Verdict::Accepted),
        "unchanged" => Ok(Verdict::Unchanged),
        "rejected" => {
            let code: DiagCode = req_str(value, "code")?
                .parse()
                .map_err(|_| JsonError::decode("`code` is not a catalogued DV code"))?;
            Ok(Verdict::Rejected { code })
        }
        "superseded" => Ok(Verdict::Superseded),
        other => Err(JsonError::decode(format!(
            "`verdict` must be \"accepted\", \"unchanged\", \"rejected\" or \"superseded\", \
             got {other:?}"
        ))),
    }
}

/// Decodes a record from a parsed JSON [`Value`].
///
/// # Errors
///
/// Returns a [`JsonError`] on unknown schema versions, unknown `kind`s,
/// or missing / mistyped fields.
pub fn record_from_value(value: &Value) -> Result<TraceRecord, JsonError> {
    let version = req_u64(value, "v")?;
    if version != SCHEMA_VERSION {
        return Err(JsonError::decode(format!(
            "unsupported trace schema version {version} (this build reads version {SCHEMA_VERSION})"
        )));
    }
    let seq = req_u64(value, "seq")?;
    let time_secs = req_f64(value, "t")?;
    let event = match req_str(value, "kind")? {
        "Launched" => TraceEvent::Launched {
            mechanism: req_str(value, "mechanism")?.to_string(),
            goal: req_str(value, "goal")?.to_string(),
            threads: u32::try_from(req_u64(value, "threads")?)
                .map_err(|_| JsonError::decode("`threads` does not fit in u32"))?,
            shape: shape_from_value(req(value, "shape")?)?,
            config: config_from_value(req(value, "config")?)?,
        },
        "SnapshotTaken" => TraceEvent::SnapshotTaken {
            snapshot: snapshot_from_value(req(value, "snapshot")?)?,
        },
        "TaskStatsSample" => TraceEvent::TaskStatsSample {
            path: req_path(value, "path")?,
            stats: task_stats_from_value(req(value, "stats")?)?,
        },
        "ProposalEvaluated" => TraceEvent::ProposalEvaluated {
            mechanism: req_str(value, "mechanism")?.to_string(),
            proposal: config_from_value(req(value, "proposal")?)?,
            verdict: verdict_from_value(value)?,
        },
        "ReconfigureEpoch" => TraceEvent::ReconfigureEpoch {
            pause_secs: req_f64(value, "pause_secs")?,
            relaunch_secs: req_f64(value, "relaunch_secs")?,
            jobs: req_u64(value, "jobs")?,
            config: config_from_value(req(value, "config")?)?,
            // Additive since delta reconfiguration landed: every
            // pre-delta epoch was a full drain, so absence decodes as
            // "full"; 0 drained paths means "not measured".
            scope: opt_str(value, "scope", "full")?,
            paths_drained: opt_u64(value, "paths_drained", 0)?,
        },
        "FeatureRead" => TraceEvent::FeatureRead {
            feature: req_str(value, "feature")?.to_string(),
            value: req_f64(value, "value")?,
        },
        "QueueSample" => TraceEvent::QueueSample {
            queue: queue_from_value(req(value, "queue")?)?,
        },
        "TaskFailed" => TraceEvent::TaskFailed {
            path: req_path(value, "path")?,
            reason: req_str(value, "reason")?.to_string(),
            policy: req_str(value, "policy")?.to_string(),
        },
        "DecisionTraced" => {
            let rationale_code = req_str(value, "rationale")?;
            let rationale = Rationale::from_code(rationale_code).ok_or_else(|| {
                JsonError::decode(format!(
                    "`rationale` {rationale_code:?} is not a catalogued rationale code"
                ))
            })?;
            let observed = req(value, "observed")?
                .as_array()
                .ok_or_else(|| JsonError::decode("`observed` must be an array"))?
                .iter()
                .map(|o| Ok((req_str(o, "signal")?.to_string(), req_f64(o, "value")?)))
                .collect::<Result<Vec<_>, JsonError>>()?;
            let candidates = req(value, "candidates")?
                .as_array()
                .ok_or_else(|| JsonError::decode("`candidates` must be an array"))?
                .iter()
                .map(|c| {
                    Ok(DecisionCandidate {
                        action: req_str(c, "action")?.to_string(),
                        score: req_f64(c, "score")?,
                        predicted_throughput: opt_f64_or_none(c, "predicted_throughput")?,
                    })
                })
                .collect::<Result<Vec<_>, JsonError>>()?;
            TraceEvent::DecisionTraced {
                mechanism: req_str(value, "mechanism")?.to_string(),
                rationale,
                observed,
                candidates,
                chosen: req_str(value, "chosen")?.to_string(),
                predicted_throughput: opt_f64_or_none(value, "predicted_throughput")?,
                realized_throughput: opt_f64_or_none(value, "realized_throughput")?,
                prediction_error: opt_f64_or_none(value, "prediction_error")?,
            }
        }
        "AdmissionDecision" => TraceEvent::AdmissionDecision {
            policy: req_str(value, "policy")?.to_string(),
            verdict: req_str(value, "verdict")?.to_string(),
            reason: req_str(value, "reason")?.to_string(),
            queue_delay_secs: req_f64(value, "queue_delay_secs")?,
            offered: req_u64(value, "offered")?,
            admitted: req_u64(value, "admitted")?,
            shed: req_u64(value, "shed")?,
        },
        "Finished" => TraceEvent::Finished {
            completed: req_u64(value, "completed")?,
            reconfigurations: req_u64(value, "reconfigurations")?,
            dropped_events: req_u64(value, "dropped_events")?,
        },
        other => {
            return Err(JsonError::decode(format!(
                "unknown trace event kind {other:?}"
            )))
        }
    };
    Ok(TraceRecord {
        seq,
        time_secs,
        event,
    })
}

/// Parses one JSONL line.
///
/// # Errors
///
/// Returns a [`JsonError`] on malformed JSON or schema violations.
pub fn parse_line(line: &str) -> Result<TraceRecord, JsonError> {
    record_from_value(&parse(line)?)
}

/// Parses a whole JSONL trace; blank lines are skipped.
///
/// # Errors
///
/// Returns the first [`JsonError`], annotated with the 1-based line
/// number.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceRecord>, JsonError> {
    let mut records = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        records.push(
            parse_line(line)
                .map_err(|err| JsonError::decode(format!("line {}: {err}", lineno + 1)))?,
        );
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dope_core::{Config, ProgramShape, ShapeNode, TaskConfig, TaskKind};

    fn sample_config() -> Config {
        Config::new(vec![TaskConfig::nest(
            "transcode",
            2,
            0,
            vec![
                TaskConfig::leaf("read", 1),
                TaskConfig::leaf("work", 2),
                TaskConfig::leaf("write", 1),
            ],
        )])
    }

    fn sample_shape() -> ProgramShape {
        ProgramShape::new(vec![ShapeNode::nest(
            "transcode",
            TaskKind::Par,
            vec![
                ShapeNode::leaf("read", TaskKind::Seq),
                ShapeNode::leaf("work", TaskKind::Par).with_max_extent(8),
                ShapeNode::leaf("write", TaskKind::Seq),
            ],
        )])
    }

    fn sample_snapshot() -> MonitorSnapshot {
        let mut snap = MonitorSnapshot::at(1.25);
        snap.tasks.insert(
            "0.1".parse().unwrap(),
            TaskStats {
                invocations: 42,
                mean_exec_secs: 0.0125,
                throughput: 33.5,
                load: 4.0,
                utilization: 0.875,
                p50_exec_secs: 0.011,
                p95_exec_secs: 0.02,
                p99_exec_secs: 0.045,
            },
        );
        snap.queue = QueueStats {
            occupancy: 3.0,
            arrival_rate: 2.5,
            enqueued: 50,
            completed: 47,
        };
        snap.power_watts = Some(612.5);
        snap.dispatches_since_reconfig = 9;
        snap.admission = AdmissionStats {
            offered: 64,
            admitted: 50,
            shed_high_water: 12,
            shed_deadline: 2,
            mean_queue_delay_secs: 0.035,
        };
        snap
    }

    fn all_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Launched {
                mechanism: "WQ-Linear".to_string(),
                goal: "MinResponseTime(4 threads)".to_string(),
                threads: 4,
                shape: sample_shape(),
                config: sample_config(),
            },
            TraceEvent::SnapshotTaken {
                snapshot: sample_snapshot(),
            },
            TraceEvent::TaskStatsSample {
                path: "0.1".parse().unwrap(),
                stats: TaskStats {
                    invocations: 7,
                    mean_exec_secs: 0.5,
                    throughput: 14.0,
                    load: 0.0,
                    utilization: 1.0,
                    p50_exec_secs: 0.4,
                    p95_exec_secs: 0.9,
                    p99_exec_secs: 1.2,
                },
            },
            TraceEvent::ProposalEvaluated {
                mechanism: "WQ-Linear".to_string(),
                proposal: sample_config(),
                verdict: Verdict::Accepted,
            },
            TraceEvent::ProposalEvaluated {
                mechanism: "TBF".to_string(),
                proposal: sample_config(),
                verdict: Verdict::Rejected {
                    code: DiagCode::BudgetExceeded,
                },
            },
            TraceEvent::ProposalEvaluated {
                mechanism: "WQT-H".to_string(),
                proposal: sample_config(),
                verdict: Verdict::Superseded,
            },
            TraceEvent::ReconfigureEpoch {
                pause_secs: 0.00125,
                relaunch_secs: 0.0005,
                jobs: 6,
                config: sample_config(),
                scope: "full".to_string(),
                paths_drained: 5,
            },
            TraceEvent::ReconfigureEpoch {
                pause_secs: 0.0002,
                relaunch_secs: 0.0001,
                jobs: 7,
                config: sample_config(),
                scope: "partial".to_string(),
                paths_drained: 1,
            },
            TraceEvent::FeatureRead {
                feature: "SystemPower".to_string(),
                value: 612.5,
            },
            TraceEvent::QueueSample {
                queue: QueueStats {
                    occupancy: 12.0,
                    arrival_rate: 3.25,
                    enqueued: 60,
                    completed: 48,
                },
            },
            TraceEvent::TaskFailed {
                path: "0.1".parse().unwrap(),
                reason: "index out of bounds: the len is 4 but the index is 7".to_string(),
                policy: "restart".to_string(),
            },
            TraceEvent::DecisionTraced {
                mechanism: "WQ-Linear".to_string(),
                rationale: Rationale::OccupancyLinear,
                observed: vec![
                    ("queue_occupancy".to_string(), 3.0),
                    ("current_width".to_string(), 4.0),
                ],
                candidates: vec![
                    DecisionCandidate {
                        action: "width=4".to_string(),
                        score: -2.0,
                        predicted_throughput: Some(33.5),
                    },
                    DecisionCandidate {
                        action: "width=6".to_string(),
                        score: 0.0,
                        predicted_throughput: Some(50.25),
                    },
                ],
                chosen: "width=6".to_string(),
                predicted_throughput: Some(50.25),
                realized_throughput: Some(48.0),
                prediction_error: Some((50.25 - 48.0) / 48.0),
            },
            TraceEvent::DecisionTraced {
                mechanism: "TBF".to_string(),
                rationale: Rationale::Hold,
                observed: vec![],
                candidates: vec![],
                chosen: "hold".to_string(),
                predicted_throughput: None,
                realized_throughput: None,
                prediction_error: None,
            },
            TraceEvent::AdmissionDecision {
                policy: "shed".to_string(),
                verdict: "shed".to_string(),
                reason: "high_water".to_string(),
                queue_delay_secs: 0.035,
                offered: 64,
                admitted: 50,
                shed: 14,
            },
            TraceEvent::AdmissionDecision {
                policy: "block".to_string(),
                verdict: "admitted".to_string(),
                reason: "none".to_string(),
                queue_delay_secs: 0.002,
                offered: 10,
                admitted: 10,
                shed: 0,
            },
            TraceEvent::Finished {
                completed: 48,
                reconfigurations: 2,
                dropped_events: 0,
            },
        ]
    }

    #[test]
    fn every_event_kind_round_trips() {
        for (seq, event) in all_events().into_iter().enumerate() {
            let record = TraceRecord {
                seq: seq as u64,
                time_secs: seq as f64 * 0.25,
                event,
            };
            let line = to_jsonl_line(&record);
            let back = parse_line(&line).unwrap();
            assert_eq!(back, record, "{line}");
        }
    }

    #[test]
    fn jsonl_round_trips_with_blank_lines() {
        let records: Vec<TraceRecord> = all_events()
            .into_iter()
            .enumerate()
            .map(|(seq, event)| TraceRecord {
                seq: seq as u64,
                time_secs: 0.5,
                event,
            })
            .collect();
        let mut text = to_jsonl(&records);
        text.push('\n'); // extra blank line
        assert_eq!(parse_jsonl(&text).unwrap(), records);
    }

    #[test]
    fn old_traces_without_percentile_fields_still_parse() {
        // A pre-metrics v1 line: `stats` carries only the original five
        // fields. The additive `p*_exec_secs` must default to 0.0.
        let line = r#"{"v": 1, "seq": 3, "t": 0.5, "kind": "TaskStatsSample", "path": "0.1", "stats": {"invocations": 9, "mean_exec_secs": 0.02, "throughput": 45.0, "load": 1.0, "utilization": 0.9}}"#;
        let record = parse_line(line).unwrap();
        let TraceEvent::TaskStatsSample { stats, .. } = record.event else {
            panic!("wrong kind");
        };
        assert_eq!(stats.invocations, 9);
        assert_eq!(stats.p50_exec_secs, 0.0);
        assert_eq!(stats.p95_exec_secs, 0.0);
        assert_eq!(stats.p99_exec_secs, 0.0);

        // Explicit null is also accepted (producers that know the field
        // but did not measure).
        let line = r#"{"v": 1, "seq": 4, "t": 0.5, "kind": "TaskStatsSample", "path": "0.1", "stats": {"invocations": 1, "mean_exec_secs": 0.02, "throughput": 45.0, "load": 1.0, "utilization": 0.9, "p99_exec_secs": null}}"#;
        let record = parse_line(line).unwrap();
        let TraceEvent::TaskStatsSample { stats, .. } = record.event else {
            panic!("wrong kind");
        };
        assert_eq!(stats.p99_exec_secs, 0.0);

        // Present-but-mistyped still errors: additive, not lax.
        let line = r#"{"v": 1, "seq": 5, "t": 0.5, "kind": "TaskStatsSample", "path": "0.1", "stats": {"invocations": 1, "mean_exec_secs": 0.02, "throughput": 45.0, "load": 1.0, "utilization": 0.9, "p99_exec_secs": "fast"}}"#;
        assert!(parse_line(line).is_err());
    }

    #[test]
    fn old_traces_without_reconfigure_scope_still_parse() {
        // A pre-delta v1 line: no `scope` / `paths_drained`. They must
        // decode to "full" / 0 — every old epoch was a full drain.
        let line = r#"{"v": 1, "seq": 5, "t": 0.5, "kind": "ReconfigureEpoch", "pause_secs": 0.004, "relaunch_secs": 0.001, "jobs": 4, "config": {"tasks": [{"name": "t", "extent": 1}]}}"#;
        let record = parse_line(line).unwrap();
        let TraceEvent::ReconfigureEpoch {
            scope,
            paths_drained,
            ..
        } = record.event
        else {
            panic!("wrong kind");
        };
        assert_eq!(scope, "full");
        assert_eq!(paths_drained, 0);

        // Explicit null is also accepted.
        let line = r#"{"v": 1, "seq": 6, "t": 0.5, "kind": "ReconfigureEpoch", "pause_secs": 0.004, "relaunch_secs": 0.001, "jobs": 4, "config": {"tasks": [{"name": "t", "extent": 1}]}, "scope": null, "paths_drained": null}"#;
        let record = parse_line(line).unwrap();
        let TraceEvent::ReconfigureEpoch { scope, .. } = record.event else {
            panic!("wrong kind");
        };
        assert_eq!(scope, "full");

        // Present-but-mistyped still errors: additive, not lax.
        let line = r#"{"v": 1, "seq": 7, "t": 0.5, "kind": "ReconfigureEpoch", "pause_secs": 0.004, "relaunch_secs": 0.001, "jobs": 4, "config": {"tasks": [{"name": "t", "extent": 1}]}, "scope": 3}"#;
        assert!(parse_line(line).is_err());
        let line = r#"{"v": 1, "seq": 8, "t": 0.5, "kind": "ReconfigureEpoch", "pause_secs": 0.004, "relaunch_secs": 0.001, "jobs": 4, "config": {"tasks": [{"name": "t", "extent": 1}]}, "paths_drained": "one"}"#;
        assert!(parse_line(line).is_err());
    }

    #[test]
    fn old_snapshots_without_admission_still_parse() {
        // A pre-admission v1 snapshot: no `admission` object. It must
        // decode as all-zero — exactly what "no gate installed" means.
        let line = r#"{"v": 1, "seq": 1, "t": 0.5, "kind": "SnapshotTaken", "snapshot": {"time_secs": 0.5, "tasks": [], "queue": {"occupancy": 0.0, "arrival_rate": 0.0, "enqueued": 0, "completed": 0}, "power_watts": null, "dispatches_since_reconfig": 0}}"#;
        let record = parse_line(line).unwrap();
        let TraceEvent::SnapshotTaken { snapshot } = record.event else {
            panic!("wrong kind");
        };
        assert_eq!(snapshot.admission, AdmissionStats::default());

        // Explicit null is also accepted.
        let line = r#"{"v": 1, "seq": 2, "t": 0.5, "kind": "SnapshotTaken", "snapshot": {"time_secs": 0.5, "tasks": [], "queue": {"occupancy": 0.0, "arrival_rate": 0.0, "enqueued": 0, "completed": 0}, "power_watts": null, "dispatches_since_reconfig": 0, "admission": null}}"#;
        let record = parse_line(line).unwrap();
        let TraceEvent::SnapshotTaken { snapshot } = record.event else {
            panic!("wrong kind");
        };
        assert_eq!(snapshot.admission, AdmissionStats::default());

        // Present-but-mistyped still errors: additive, not lax.
        let line = r#"{"v": 1, "seq": 3, "t": 0.5, "kind": "SnapshotTaken", "snapshot": {"time_secs": 0.5, "tasks": [], "queue": {"occupancy": 0.0, "arrival_rate": 0.0, "enqueued": 0, "completed": 0}, "power_watts": null, "dispatches_since_reconfig": 0, "admission": "open"}}"#;
        assert!(parse_line(line).is_err());
    }

    #[test]
    fn superseded_verdict_round_trips_and_unknowns_reject() {
        let line = r#"{"v": 1, "seq": 2, "t": 0.5, "kind": "ProposalEvaluated", "mechanism": "WQT-H", "proposal": {"tasks": [{"name": "t", "extent": 1}]}, "verdict": "superseded"}"#;
        let record = parse_line(line).unwrap();
        assert_eq!(to_jsonl_line(&record), line);
        let bad = line.replace("superseded", "retracted");
        assert!(parse_line(&bad).is_err());
    }

    #[test]
    fn rejects_wrong_schema_version() {
        let err = parse_line(r#"{"v": 99, "seq": 0, "t": 0, "kind": "Finished"}"#).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn rejects_unknown_kind() {
        let err = parse_line(r#"{"v": 1, "seq": 0, "t": 0, "kind": "Mystery"}"#).unwrap_err();
        assert!(err.to_string().contains("Mystery"), "{err}");
    }

    #[test]
    fn parse_jsonl_reports_line_numbers() {
        let good = to_jsonl_line(&TraceRecord {
            seq: 0,
            time_secs: 0.0,
            event: TraceEvent::Finished {
                completed: 0,
                reconfigurations: 0,
                dropped_events: 0,
            },
        });
        let text = format!("{good}\nnot json\n");
        let err = parse_jsonl(&text).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn shape_kind_survives_round_trip() {
        let record = TraceRecord {
            seq: 0,
            time_secs: 0.0,
            event: TraceEvent::Launched {
                mechanism: "Static".to_string(),
                goal: "g".to_string(),
                threads: 24,
                shape: sample_shape(),
                config: sample_config(),
            },
        };
        let back = parse_line(&to_jsonl_line(&record)).unwrap();
        if let TraceEvent::Launched { shape, .. } = &back.event {
            let work = shape.node(&"0.1".parse().unwrap()).expect("node 0.1");
            assert_eq!(work.kind, TaskKind::Par);
            assert_eq!(work.max_extent, Some(8));
        } else {
            panic!("kind changed");
        }
    }
}
