//! Property-based round-trip tests of the JSONL event codec.
//!
//! Arbitrary events (and whole event sequences) must survive the trip
//! through `to_jsonl` / `parse_jsonl` byte-identically at the value
//! level. The generators stick to finite floats: the codec canonicalizes
//! non-finite values to `null` by design (see `dope_core::json`), so
//! NaN/infinity round-trips are covered by the codec's own unit tests.

use dope_core::{
    AdmissionStats, Config, DecisionCandidate, DiagCode, MonitorSnapshot, NestConfig, ProgramShape,
    QueueStats, Rationale, ShapeNode, TaskConfig, TaskKind, TaskPath, TaskStats,
};
use dope_trace::{
    parse_jsonl, parse_line, to_jsonl, to_jsonl_line, TraceEvent, TraceRecord, Verdict,
};
use proptest::prelude::*;

/// Fixed name pools: the proptest shim has no string strategy, so names
/// are indexed out of small tables (including escape-worthy characters).
const NAMES: [&str; 4] = ["work", "rank \"stage\"", "emit\nnl", "päth"];
const MECHANISMS: [&str; 3] = ["WQ-Linear", "TBF", "Static"];

fn name(idx: usize) -> String {
    NAMES[idx % NAMES.len()].to_string()
}

fn mechanism(idx: usize) -> String {
    MECHANISMS[idx % MECHANISMS.len()].to_string()
}

/// An arbitrary (not necessarily valid) configuration: validity is a
/// `validate` concern, not a codec concern.
fn config(extents: &[u32], alt: usize, nested: bool) -> Config {
    let tasks = extents
        .iter()
        .enumerate()
        .map(|(i, &extent)| {
            let inner = if nested && i == 0 {
                Some(NestConfig {
                    alternative: alt,
                    tasks: vec![TaskConfig::leaf(name(i + 1), extent)],
                })
            } else {
                None
            };
            TaskConfig {
                name: name(i),
                extent,
                nested: inner,
            }
        })
        .collect();
    Config::new(tasks)
}

/// A small two-level shape exercising caps and alternatives.
fn shape(cap: Option<u32>) -> ProgramShape {
    let mut par = ShapeNode::leaf("work", TaskKind::Par);
    par.max_extent = cap;
    ProgramShape::new(vec![ShapeNode {
        name: "outer".into(),
        kind: TaskKind::Par,
        max_extent: None,
        alternatives: vec![
            vec![ShapeNode::leaf("read", TaskKind::Seq), par],
            vec![ShapeNode::leaf("whole", TaskKind::Seq)],
        ],
    }])
}

fn task_path(parts: &[u32]) -> TaskPath {
    let text = parts
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(".");
    text.parse().expect("dotted indices parse")
}

fn queue_stats(occupancy: f64, arrival_rate: f64, enqueued: u64, completed: u64) -> QueueStats {
    QueueStats {
        occupancy,
        arrival_rate,
        enqueued,
        completed,
    }
}

fn task_stats(invocations: u64, mean: f64, throughput: f64, load: f64, util: f64) -> TaskStats {
    TaskStats {
        invocations,
        mean_exec_secs: mean,
        throughput,
        load,
        utilization: util,
        // Derived non-zero percentiles so round-trips cover the
        // additive v1 fields alongside the original five.
        p50_exec_secs: mean,
        p95_exec_secs: mean * 1.5,
        p99_exec_secs: mean * 2.0,
    }
}

/// Builds one arbitrary event of the `kind`-th schema variant from a
/// bag of generated primitives.
#[allow(clippy::too_many_arguments)]
fn build_event(
    kind: usize,
    idx: usize,
    extents: &[u32],
    alt: usize,
    nested: bool,
    cap: Option<u32>,
    path_parts: &[u32],
    power: Option<f64>,
    f_small: f64,
    f_big: f64,
    n_small: u64,
    n_big: u64,
    verdict_sel: usize,
    code_idx: usize,
    threads: u32,
) -> TraceEvent {
    match kind % TraceEvent::KINDS.len() {
        0 => TraceEvent::Launched {
            mechanism: mechanism(idx),
            goal: format!("MinResponseTime(threads={threads})"),
            threads,
            shape: shape(cap),
            config: config(extents, alt, nested),
        },
        1 => {
            let mut snapshot = MonitorSnapshot {
                time_secs: f_big,
                tasks: Default::default(),
                queue: queue_stats(f_small, f_big, n_small, n_big),
                power_watts: power,
                dispatches_since_reconfig: n_small,
                admission: AdmissionStats {
                    offered: n_big,
                    admitted: n_small,
                    shed_high_water: n_small % 5,
                    shed_deadline: n_small % 3,
                    mean_queue_delay_secs: f_small,
                },
            };
            for (i, &part) in path_parts.iter().enumerate() {
                snapshot.tasks.insert(
                    task_path(&[part, i as u32]),
                    task_stats(n_big, f_small, f_big, f_small, f_small % 1.0),
                );
            }
            TraceEvent::SnapshotTaken { snapshot }
        }
        2 => TraceEvent::TaskStatsSample {
            path: task_path(path_parts),
            stats: task_stats(n_small, f_big, f_small, f_big, f_small % 1.0),
        },
        3 => TraceEvent::ProposalEvaluated {
            mechanism: mechanism(idx),
            proposal: config(extents, alt, nested),
            verdict: match verdict_sel % 4 {
                0 => Verdict::Accepted,
                1 => Verdict::Unchanged,
                2 => Verdict::Superseded,
                _ => Verdict::Rejected {
                    code: DiagCode::ALL[code_idx % DiagCode::ALL.len()],
                },
            },
        },
        4 => TraceEvent::ReconfigureEpoch {
            pause_secs: f_small,
            relaunch_secs: f_big,
            jobs: n_small,
            config: config(extents, alt, nested),
            scope: if verdict_sel.is_multiple_of(2) {
                "full"
            } else {
                "partial"
            }
            .to_string(),
            paths_drained: n_small % 9,
        },
        5 => TraceEvent::FeatureRead {
            feature: name(idx),
            value: f_big,
        },
        6 => TraceEvent::QueueSample {
            queue: queue_stats(f_big, f_small, n_big, n_small),
        },
        7 => TraceEvent::TaskFailed {
            path: task_path(path_parts),
            // Escape-worthy payloads: panic messages quote user code.
            reason: format!("panicked: {}", name(idx)),
            policy: ["abort", "restart", "degrade"][verdict_sel % 3].to_string(),
        },
        8 => TraceEvent::DecisionTraced {
            mechanism: mechanism(idx),
            rationale: Rationale::ALL[code_idx % Rationale::ALL.len()],
            observed: (0..(n_small % 4) as usize)
                .map(|i| (format!("{}_{i}", name(i)), f_big * (i as f64 + 1.0)))
                .collect(),
            candidates: (0..=verdict_sel)
                .map(|i| DecisionCandidate {
                    action: format!("{}: width={i}", name(i)),
                    score: f_small * i as f64 - 1.0,
                    predicted_throughput: (i % 2 == 0).then_some(f_big),
                })
                .collect(),
            chosen: name(idx),
            predicted_throughput: power.map(|p| p + f_big),
            realized_throughput: power,
            prediction_error: power.map(|p| (f_big - p) / p.max(1.0)),
        },
        9 => TraceEvent::AdmissionDecision {
            policy: ["open", "block", "shed", "deadline"][verdict_sel % 4].to_string(),
            verdict: if n_small.is_multiple_of(2) {
                "admitted"
            } else {
                "shed"
            }
            .to_string(),
            reason: ["none", "high_water", "deadline"][code_idx % 3].to_string(),
            queue_delay_secs: f_small,
            offered: n_big,
            admitted: n_small,
            shed: n_big.saturating_sub(n_small),
        },
        _ => TraceEvent::Finished {
            completed: n_big,
            reconfigurations: n_small,
            dropped_events: n_small % 7,
        },
    }
}

proptest! {
    /// Any single record of any event kind round-trips through one
    /// JSONL line without loss.
    #[test]
    fn any_record_roundtrips_through_a_jsonl_line(
        kind in 0usize..11,
        idx in 0usize..16,
        seq in any::<u64>(),
        t in 0.0f64..1.0e9,
        extents in prop::collection::vec(1u32..40, 1..4),
        alt in 0usize..3,
        nested in any::<bool>(),
        cap in prop::option::of(1u32..16),
        path_parts in prop::collection::vec(0u32..9, 0..4),
        power in prop::option::of(0.0f64..900.0),
        f_small in 0.0f64..1.0,
        f_big in 0.0f64..1.0e6,
        n_small in 0u64..1_000,
        n_big in any::<u64>(),
        verdict_sel in 0usize..4,
        code_idx in 0usize..16,
        threads in 1u32..256,
    ) {
        let record = TraceRecord {
            seq,
            time_secs: t,
            event: build_event(
                kind, idx, &extents, alt, nested, cap, &path_parts, power,
                f_small, f_big, n_small, n_big, verdict_sel, code_idx, threads,
            ),
        };
        let line = to_jsonl_line(&record);
        prop_assert!(!line.contains('\n'), "one record must stay one line");
        let parsed = parse_line(&line).map_err(|e| {
            TestCaseError::fail(format!("parse failed: {e} for line {line}"))
        })?;
        prop_assert_eq!(parsed, record);
    }

    /// Whole sequences of records round-trip through a multi-line JSONL
    /// document, preserving order, count, and every field.
    #[test]
    fn any_sequence_roundtrips_through_jsonl(
        kinds in prop::collection::vec(0usize..11, 0..12),
        extents in prop::collection::vec(1u32..12, 1..3),
        alt in 0usize..2,
        power in prop::option::of(1.0f64..400.0),
        f_small in 0.0f64..1.0,
        f_big in 0.0f64..1.0e4,
        n_small in 0u64..100,
        n_big in 0u64..1_000_000,
        code_idx in 0usize..16,
        threads in 1u32..64,
    ) {
        let records: Vec<TraceRecord> = kinds
            .iter()
            .enumerate()
            .map(|(i, &kind)| TraceRecord {
                seq: i as u64 * 2, // even gaps: drops must not break parsing
                time_secs: i as f64 * 0.5 + f_small,
                event: build_event(
                    kind, i, &extents, alt, i % 2 == 0, Some(8), &[0, i as u32 % 4],
                    power, f_small, f_big, n_small, n_big, i, code_idx, threads,
                ),
            })
            .collect();
        let jsonl = to_jsonl(&records);
        let parsed = parse_jsonl(&jsonl).map_err(|e| {
            TestCaseError::fail(format!("parse failed: {e}"))
        })?;
        prop_assert_eq!(parsed, records);
    }
}
