//! A fixed-size worker pool.
//!
//! DoPE "maintains a Thread Pool with as many threads as constrained by
//! the performance goals" (paper §5). Workers pull long-running jobs (task
//! executor loops) from a shared queue; between epochs they sit idle on
//! the channel.
//!
//! Workers are **supervised**: each job runs under
//! [`std::panic::catch_unwind`], so a panicking job can
//! never tear down its worker thread — the pool keeps its full capacity
//! for the rest of the run, and [`WorkerPool::panics_caught`] counts
//! every contained panic. Jobs that must *report* their panic (the
//! executive's task loops) catch the unwind themselves first; the pool's
//! net is the last line of defence.
//!
//! Worker threads are long-lived: a pool spawns its threads once and
//! they survive until `shutdown`, running many jobs each. The monitor's
//! sharded recorders (`docs/performance.md`) lean on this — shards are
//! keyed by `ThreadId`, so stable worker threads keep the per-path
//! shard count bounded by the pool size instead of growing with the
//! job count.

use crossbeam::channel::{unbounded, Receiver, Sender};
use dope_core::Error;
use dope_metrics::{names, Counter, MetricsRegistry};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A pool of OS threads executing submitted jobs.
///
/// # Example
///
/// ```
/// use dope_runtime::WorkerPool;
/// use std::sync::atomic::{AtomicU32, Ordering};
/// use std::sync::Arc;
///
/// let pool = WorkerPool::new(4);
/// let hits = Arc::new(AtomicU32::new(0));
/// for _ in 0..8 {
///     let hits = Arc::clone(&hits);
///     pool.submit(move || {
///         hits.fetch_add(1, Ordering::SeqCst);
///     });
/// }
/// pool.shutdown();
/// assert_eq!(hits.load(Ordering::SeqCst), 8);
/// ```
#[derive(Debug)]
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    submitted: Arc<AtomicU64>,
    /// Jobs a worker actually started executing.
    dispatched: Arc<Counter>,
    /// Times a worker finished a job and went back to waiting on the
    /// channel (between-epoch idleness, the paper's "threads sit idle").
    parks: Arc<Counter>,
    /// Job panics the supervision wrapper caught. Each one left its
    /// worker thread alive.
    panics_caught: Arc<Counter>,
}

impl WorkerPool {
    /// A pool with `threads` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn new(threads: u32) -> Self {
        assert!(threads >= 1, "pool needs at least one thread");
        // dope-lint: allow(DL005): depth is bounded by the jobs the executive submits per epoch; submission is throttled by the epoch rendezvous, not by this queue
        let (tx, rx): (Sender<Job>, Receiver<Job>) = unbounded();
        let dispatched = Arc::new(Counter::new());
        let parks = Arc::new(Counter::new());
        let panics_caught = Arc::new(Counter::new());
        let handles = (0..threads)
            .map(|i| {
                let rx = rx.clone();
                let dispatched = Arc::clone(&dispatched);
                let parks = Arc::clone(&parks);
                let panics_caught = Arc::clone(&panics_caught);
                std::thread::Builder::new()
                    .name(format!("dope-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            dispatched.inc();
                            // Supervision: a panicking job must not kill
                            // this thread, or the pool silently loses
                            // capacity for the rest of the run. Jobs are
                            // FnOnce and dropped either way, so unwind
                            // safety reduces to "the panic is contained".
                            if catch_unwind(AssertUnwindSafe(job)).is_err() {
                                panics_caught.inc();
                            }
                            parks.inc();
                        }
                    })
                    // dope-lint: allow(DL005): spawn failure during pool construction is unrecoverable and is the constructor's documented panic contract
                    .expect("spawning a worker thread")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            handles,
            submitted: Arc::new(AtomicU64::new(0)),
            dispatched,
            parks,
            panics_caught,
        }
    }

    /// Exposes the pool's counters and size on `registry`:
    /// `dope_pool_jobs_dispatched_total`, `dope_pool_worker_parks_total`,
    /// and the `dope_pool_threads` gauge.
    pub fn register_metrics(&self, registry: &MetricsRegistry) {
        registry.register_counter(
            names::POOL_JOBS_DISPATCHED_TOTAL,
            "Jobs dispatched to pool workers",
            &[],
            Arc::clone(&self.dispatched),
        );
        registry.register_counter(
            names::POOL_WORKER_PARKS_TOTAL,
            "Times a pool worker finished a job and went back to waiting",
            &[],
            Arc::clone(&self.parks),
        );
        registry.register_counter(
            names::POOL_PANICS_CAUGHT_TOTAL,
            "Job panics contained by the pool's supervision layer",
            &[],
            Arc::clone(&self.panics_caught),
        );
        registry
            .gauge(names::POOL_THREADS, "Worker-pool thread count")
            .set(self.threads() as f64);
    }

    /// Jobs workers actually started executing so far.
    #[must_use]
    pub fn dispatched(&self) -> u64 {
        self.dispatched.get()
    }

    /// Times a worker finished a job (panicked or not) and went back to
    /// waiting on the channel. Equal to [`dispatched`](Self::dispatched)
    /// whenever no job is currently running — panics do not break the
    /// balance, proving no worker thread died.
    #[must_use]
    pub fn parks(&self) -> u64 {
        self.parks.get()
    }

    /// Job panics the supervision wrapper caught so far. Each one left
    /// its worker thread alive and parked.
    #[must_use]
    pub fn panics_caught(&self) -> u64 {
        self.panics_caught.get()
    }

    /// Number of worker threads.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Total jobs submitted over the pool's lifetime — across epochs,
    /// this counts every worker job the executive ever launched (the
    /// flight recorder's per-epoch `jobs` field sums to it).
    #[must_use]
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Submits a job, failing gracefully if the pool can no longer
    /// accept work (it was shut down, or every worker thread is gone).
    /// Jobs beyond the thread count queue until a worker frees up.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Usage`] if the pool has been shut down or the
    /// job channel is disconnected. The job is dropped unexecuted.
    pub fn try_submit<F>(&self, job: F) -> dope_core::Result<()>
    where
        F: FnOnce() + Send + 'static,
    {
        let Some(tx) = self.tx.as_ref() else {
            return Err(Error::Usage(
                "job submitted to a shut-down worker pool".to_string(),
            ));
        };
        tx.send(Box::new(job)).map_err(|_| {
            Error::Usage("worker pool has no live workers to accept the job".to_string())
        })?;
        self.submitted.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Submits a job, panicking if the pool cannot accept it. This is
    /// the convenience wrapper over [`try_submit`](Self::try_submit)
    /// for contexts (examples, tests) where a dead pool is a bug.
    ///
    /// # Panics
    ///
    /// Panics if the pool has been shut down or its workers are gone;
    /// use [`try_submit`](Self::try_submit) to handle that case.
    pub fn submit<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        if let Err(err) = self.try_submit(job) {
            panic!("{err}");
        }
    }

    /// Shuts the pool down, waiting for queued jobs to finish.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.tx.take();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn runs_all_jobs() {
        let pool = WorkerPool::new(3);
        let hits = Arc::new(AtomicU32::new(0));
        for _ in 0..20 {
            let hits = Arc::clone(&hits);
            pool.submit(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.shutdown();
        assert_eq!(hits.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn excess_jobs_queue_until_workers_free() {
        let pool = WorkerPool::new(1);
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        for i in 0..5 {
            let order = Arc::clone(&order);
            pool.submit(move || {
                std::thread::sleep(Duration::from_millis(1));
                order.lock().push(i);
            });
        }
        pool.shutdown();
        assert_eq!(&*order.lock(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn threads_reports_size() {
        let pool = WorkerPool::new(7);
        assert_eq!(pool.threads(), 7);
    }

    #[test]
    fn submitted_counts_jobs_across_lifetime() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.submitted(), 0);
        for _ in 0..6 {
            pool.submit(|| {});
        }
        assert_eq!(pool.submitted(), 6);
        pool.shutdown();
    }

    #[test]
    fn registered_counters_track_dispatch_and_parks() {
        let pool = WorkerPool::new(2);
        let registry = MetricsRegistry::new();
        pool.register_metrics(&registry);
        for _ in 0..5 {
            pool.submit(|| {});
        }
        pool.shutdown();
        let text = registry.render();
        assert!(text.contains("dope_pool_jobs_dispatched_total 5"), "{text}");
        assert!(text.contains("dope_pool_worker_parks_total 5"), "{text}");
        assert!(text.contains("dope_pool_threads 2"), "{text}");
    }

    #[test]
    fn panicking_job_does_not_kill_its_worker() {
        let pool = WorkerPool::new(1);
        // The single worker takes the panicking job first; if the unwind
        // tore the thread down, the follow-up jobs would never run.
        pool.submit(|| panic!("injected job panic"));
        let hits = Arc::new(AtomicU32::new(0));
        for _ in 0..4 {
            let hits = Arc::clone(&hits);
            pool.submit(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.shutdown();
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn dispatch_and_park_counters_balance_across_a_panic() {
        let pool = WorkerPool::new(2);
        pool.submit(|| panic!("boom"));
        for _ in 0..6 {
            pool.submit(|| {});
        }
        // Drain: all submitted jobs must dispatch and park, panic or not.
        while pool.parks() < 7 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(pool.dispatched(), 7);
        assert_eq!(pool.parks(), 7);
        assert_eq!(pool.panics_caught(), 1);
        pool.shutdown();
    }

    #[test]
    fn try_submit_reports_a_shut_down_pool() {
        let mut pool = WorkerPool::new(1);
        assert!(pool.try_submit(|| {}).is_ok());
        pool.shutdown_inner();
        let err = pool.try_submit(|| {}).unwrap_err();
        assert!(err.to_string().contains("shut-down"), "{err}");
        // submitted only counts accepted jobs.
        assert_eq!(pool.submitted(), 1);
    }

    #[test]
    #[should_panic(expected = "shut-down worker pool")]
    fn submit_panics_on_a_shut_down_pool() {
        let mut pool = WorkerPool::new(1);
        pool.shutdown_inner();
        pool.submit(|| {});
    }

    #[test]
    fn panics_caught_counter_is_registered() {
        let pool = WorkerPool::new(1);
        let registry = MetricsRegistry::new();
        pool.register_metrics(&registry);
        pool.submit(|| panic!("counted"));
        pool.shutdown();
        let text = registry.render();
        assert!(text.contains("dope_pool_panics_caught_total 1"), "{text}");
    }

    #[test]
    #[should_panic(expected = "pool needs at least one thread")]
    fn zero_threads_panics() {
        let _ = WorkerPool::new(0);
    }

    #[test]
    fn drop_joins_workers() {
        let hits = Arc::new(AtomicU32::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..4 {
                let hits = Arc::clone(&hits);
                pool.submit(move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }
}
