//! A fixed-size worker pool.
//!
//! DoPE "maintains a Thread Pool with as many threads as constrained by
//! the performance goals" (paper §5). Workers pull long-running jobs (task
//! executor loops) from a shared queue; between epochs they sit idle on
//! the channel.

use crossbeam::channel::{unbounded, Receiver, Sender};
use dope_metrics::{names, Counter, MetricsRegistry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A pool of OS threads executing submitted jobs.
///
/// # Example
///
/// ```
/// use dope_runtime::WorkerPool;
/// use std::sync::atomic::{AtomicU32, Ordering};
/// use std::sync::Arc;
///
/// let pool = WorkerPool::new(4);
/// let hits = Arc::new(AtomicU32::new(0));
/// for _ in 0..8 {
///     let hits = Arc::clone(&hits);
///     pool.submit(move || {
///         hits.fetch_add(1, Ordering::SeqCst);
///     });
/// }
/// pool.shutdown();
/// assert_eq!(hits.load(Ordering::SeqCst), 8);
/// ```
#[derive(Debug)]
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    submitted: Arc<AtomicU64>,
    /// Jobs a worker actually started executing.
    dispatched: Arc<Counter>,
    /// Times a worker finished a job and went back to waiting on the
    /// channel (between-epoch idleness, the paper's "threads sit idle").
    parks: Arc<Counter>,
}

impl WorkerPool {
    /// A pool with `threads` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn new(threads: u32) -> Self {
        assert!(threads >= 1, "pool needs at least one thread");
        let (tx, rx): (Sender<Job>, Receiver<Job>) = unbounded();
        let dispatched = Arc::new(Counter::new());
        let parks = Arc::new(Counter::new());
        let handles = (0..threads)
            .map(|i| {
                let rx = rx.clone();
                let dispatched = Arc::clone(&dispatched);
                let parks = Arc::clone(&parks);
                std::thread::Builder::new()
                    .name(format!("dope-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            dispatched.inc();
                            job();
                            parks.inc();
                        }
                    })
                    .expect("spawning a worker thread")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            handles,
            submitted: Arc::new(AtomicU64::new(0)),
            dispatched,
            parks,
        }
    }

    /// Exposes the pool's counters and size on `registry`:
    /// `dope_pool_jobs_dispatched_total`, `dope_pool_worker_parks_total`,
    /// and the `dope_pool_threads` gauge.
    pub fn register_metrics(&self, registry: &MetricsRegistry) {
        registry.register_counter(
            names::POOL_JOBS_DISPATCHED_TOTAL,
            "Jobs dispatched to pool workers",
            &[],
            Arc::clone(&self.dispatched),
        );
        registry.register_counter(
            names::POOL_WORKER_PARKS_TOTAL,
            "Times a pool worker finished a job and went back to waiting",
            &[],
            Arc::clone(&self.parks),
        );
        registry
            .gauge(names::POOL_THREADS, "Worker-pool thread count")
            .set(self.threads() as f64);
    }

    /// Jobs workers actually started executing so far.
    #[must_use]
    pub fn dispatched(&self) -> u64 {
        self.dispatched.get()
    }

    /// Number of worker threads.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Total jobs submitted over the pool's lifetime — across epochs,
    /// this counts every worker job the executive ever launched (the
    /// flight recorder's per-epoch `jobs` field sums to it).
    #[must_use]
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Submits a job. Jobs beyond the thread count queue until a worker
    /// frees up.
    ///
    /// # Panics
    ///
    /// Panics if the pool has been shut down.
    pub fn submit<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.tx
            .as_ref()
            .expect("pool is live")
            .send(Box::new(job))
            .expect("workers alive");
    }

    /// Shuts the pool down, waiting for queued jobs to finish.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.tx.take();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn runs_all_jobs() {
        let pool = WorkerPool::new(3);
        let hits = Arc::new(AtomicU32::new(0));
        for _ in 0..20 {
            let hits = Arc::clone(&hits);
            pool.submit(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.shutdown();
        assert_eq!(hits.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn excess_jobs_queue_until_workers_free() {
        let pool = WorkerPool::new(1);
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        for i in 0..5 {
            let order = Arc::clone(&order);
            pool.submit(move || {
                std::thread::sleep(Duration::from_millis(1));
                order.lock().push(i);
            });
        }
        pool.shutdown();
        assert_eq!(&*order.lock(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn threads_reports_size() {
        let pool = WorkerPool::new(7);
        assert_eq!(pool.threads(), 7);
    }

    #[test]
    fn submitted_counts_jobs_across_lifetime() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.submitted(), 0);
        for _ in 0..6 {
            pool.submit(|| {});
        }
        assert_eq!(pool.submitted(), 6);
        pool.shutdown();
    }

    #[test]
    fn registered_counters_track_dispatch_and_parks() {
        let pool = WorkerPool::new(2);
        let registry = MetricsRegistry::new();
        pool.register_metrics(&registry);
        for _ in 0..5 {
            pool.submit(|| {});
        }
        pool.shutdown();
        let text = registry.render();
        assert!(text.contains("dope_pool_jobs_dispatched_total 5"), "{text}");
        assert!(text.contains("dope_pool_worker_parks_total 5"), "{text}");
        assert!(text.contains("dope_pool_threads 2"), "{text}");
    }

    #[test]
    #[should_panic(expected = "pool needs at least one thread")]
    fn zero_threads_panics() {
        let _ = WorkerPool::new(0);
    }

    #[test]
    fn drop_joins_workers() {
        let hits = Arc::new(AtomicU32::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..4 {
                let hits = Arc::clone(&hits);
                pool.submit(move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }
}
